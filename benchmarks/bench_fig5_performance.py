"""Figure 5 — HPVM-HDC performance on CPU and GPU vs hand-written baselines.

Regenerates the relative-speedup bars of Figure 5: every application is run
both through the HPVM-HDC reproduction (compiled from the single HDC++
source) and through its per-target baseline, and the harness prints the
per-application relative speedups plus the geometric mean that the paper
summarizes (1.17x on the GPU against CUDA baselines).
"""

from __future__ import annotations

import pytest

from repro.apps import HDClassification, HDClustering, HDHashtable, HyperOMS, RelHD
from repro.datasets import (
    CoraConfig,
    GenomicsConfig,
    IsoletConfig,
    SpectraConfig,
    make_cora_like,
    make_genomics_dataset,
    make_isolet_like,
    make_spectral_library,
)
from repro.evaluation import fig5_performance


@pytest.fixture(scope="module")
def isolet(scale):
    return make_isolet_like(scale.isolet())


@pytest.fixture(scope="module")
def spectra(scale):
    return make_spectral_library(
        SpectraConfig(n_library=scale.spectra_library, n_queries=scale.spectra_queries)
    )


@pytest.fixture(scope="module")
def cora(scale):
    return make_cora_like(CoraConfig(n_nodes=scale.cora_nodes))


@pytest.fixture(scope="module")
def genomics(scale):
    return make_genomics_dataset(
        GenomicsConfig(genome_length=scale.genome_length, n_reads=scale.genome_reads)
    )


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_hd_classification(benchmark, scale, isolet, target):
    app = HDClassification(dimension=scale.classification_dim, epochs=scale.classification_epochs)
    result = benchmark.pedantic(lambda: app.run(isolet, target=target), rounds=1, iterations=1)
    benchmark.extra_info["accuracy"] = result.quality
    benchmark.extra_info["target"] = target


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_hd_clustering(benchmark, scale, isolet, target):
    app = HDClustering(
        dimension=scale.classification_dim,
        n_clusters=isolet.n_classes,
        iterations=scale.clustering_iterations,
    )
    result = benchmark.pedantic(lambda: app.run(isolet, target=target), rounds=1, iterations=1)
    benchmark.extra_info["purity"] = result.quality
    benchmark.extra_info["target"] = target


def test_hyperoms_gpu(benchmark, scale, spectra):
    app = HyperOMS(dimension=scale.oms_dim)
    result = benchmark.pedantic(lambda: app.run(spectra, target="gpu"), rounds=1, iterations=1)
    benchmark.extra_info["recall"] = result.quality


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_relhd(benchmark, scale, cora, target):
    app = RelHD(dimension=scale.relhd_dim)
    result = benchmark.pedantic(lambda: app.run(cora, target=target), rounds=1, iterations=1)
    benchmark.extra_info["accuracy"] = result.quality


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_hd_hashtable(benchmark, scale, genomics, target):
    app = HDHashtable(dimension=scale.hashtable_dim)
    result = benchmark.pedantic(lambda: app.run(genomics, target=target), rounds=1, iterations=1)
    benchmark.extra_info["bucket_accuracy"] = result.quality


def test_fig5_report(benchmark, scale, capsys):
    """Run the full Figure 5 comparison (HPVM-HDC vs baselines) and print it."""
    result = benchmark.pedantic(lambda: fig5_performance(scale), rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 5: relative speedup over baseline codes ===")
        print(result.format())
        print(
            f"Paper reference: geomean GPU speedup 1.17x over CUDA baselines, "
            f"CPU comparisons against interpreted Python.\n"
            f"Measured here: CPU geomean {result.cpu_geomean:.2f}x, GPU geomean {result.gpu_geomean:.2f}x"
        )
