"""Ablation benchmarks for the two approximation transforms (Section 4.2).

These go beyond the paper's figures and quantify the individual mechanisms:

* packed-bit Hamming distance vs the full-precision kernel (the payoff of
  automatic binarization on a general-purpose host);
* perforation stride sweep on the similarity search (the knob behind
  configurations VII/VIII/X);
* the data-movement reduction reported by the binarization pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import hdcpp as H
from repro.ir.builder import clone_program
from repro.kernels import binary as binkern, reference as ref
from repro.transforms import AutomaticBinarization


@pytest.fixture(scope="module")
def bipolar_data():
    rng = np.random.default_rng(0)
    classes = (rng.integers(0, 2, size=(26, 8192)) * 2 - 1).astype(np.int8)
    labels = rng.integers(0, 26, size=200)
    # Queries are noisy copies of their class hypervector (15% flipped bits),
    # the regime in which perforated similarity search must stay correct.
    queries = classes[labels].copy()
    flips = rng.random(queries.shape) < 0.15
    queries[flips] = -queries[flips]
    return queries, classes


def test_hamming_full_precision_kernel(benchmark, bipolar_data):
    queries, classes = bipolar_data
    q32, c32 = queries.astype(np.float32), classes.astype(np.float32)
    benchmark(lambda: ref.hamming_distance(q32, c32))


def test_hamming_packed_bit_kernel(benchmark, bipolar_data):
    queries, classes = bipolar_data
    packed_queries = binkern.pack_bipolar(queries)
    packed_classes = binkern.pack_bipolar(classes)
    benchmark(lambda: binkern.hamming_distance_packed(packed_queries, packed_classes))


@pytest.mark.parametrize("stride", [1, 2, 4, 8])
def test_perforated_hamming_stride_sweep(benchmark, bipolar_data, stride):
    queries, classes = bipolar_data
    out = benchmark(lambda: binkern.hamming_distance_bipolar(queries, classes, 0, None, stride))
    exact = binkern.hamming_distance_bipolar(queries, classes)
    # Perforation must preserve the ranking for the vast majority of queries.
    agreement = (out.argmin(axis=1) == exact.argmin(axis=1)).mean()
    benchmark.extra_info["ranking_agreement"] = float(agreement)
    assert agreement > 0.7


def test_binarization_pass_cost_and_reduction(benchmark, capsys):
    """The compile-time cost of Algorithm 1 and the storage it saves."""

    def build():
        prog = H.Program("ablation")

        @prog.entry(H.hv(617), H.hm(26, 10240), H.hm(10240, 617))
        def main(query, classes, rp):
            encoded = H.sign(H.matmul(query, rp))
            return H.arg_min(H.hamming_distance(encoded, H.sign(classes)))

        return prog

    base = build()

    def run_pass():
        prog = clone_program(base)
        return AutomaticBinarization().run(prog)

    report = benchmark(run_pass)
    with capsys.disabled():
        print(f"\nAutomatic binarization: {report}")
    assert report.data_movement_reduction == pytest.approx(32.0)
