"""Ablation benchmark for the ReRAM accelerator's progressive Hamming unit.

The ReRAM device computes Hamming distances chunk by chunk and terminates
early once the ranking can no longer change (Section 2.2).  This benchmark
measures how much of the hypervector the unit actually visits and the
device-only latency saved relative to disabling early termination (by using
a chunk as large as the hypervector).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerators import AcceleratorConfig, ReRAMAccelerator, ReRAMParameters


def _run_inferences(device: ReRAMAccelerator, queries, base, classes) -> float:
    config = AcceleratorConfig(dimension=classes.shape[1], features=base.shape[1], classes=classes.shape[0])
    device.initialize_device(config)
    device.allocate_base_mem(base)
    device.allocate_class_mem(classes)
    for query in queries:
        device.allocate_feature_mem(query)
        device.execute_inference()
    return device.counters.device_seconds


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1)
    features, dim, classes_n, n = 64, 4096, 16, 60
    base = (rng.integers(0, 2, (dim, features)) * 2 - 1).astype(np.float32)
    prototypes = rng.normal(size=(classes_n, features))
    labels = rng.integers(0, classes_n, n)
    queries = (prototypes[labels] + 0.3 * rng.normal(size=(n, features))).astype(np.float32)
    # Train class hypervectors through the device's own one-shot training.
    trainer = ReRAMAccelerator()
    trainer.initialize_device(AcceleratorConfig(dimension=dim, features=features, classes=classes_n))
    trainer.allocate_base_mem(base)
    trainer.allocate_class_mem(np.zeros((classes_n, dim), dtype=np.float32))
    for query, label in zip(queries, labels):
        trainer.allocate_feature_mem(query)
        trainer.execute_retrain(int(label))
    classes = trainer.read_class_mem()
    return queries, base, classes


def test_progressive_hamming_enabled(benchmark, workload, capsys):
    queries, base, classes = workload
    device = ReRAMAccelerator(ReRAMParameters(hamming_chunk=512))
    seconds = benchmark.pedantic(
        lambda: _run_inferences(device, queries, base, classes), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(
            f"\nprogressive Hamming: visited fraction {device.mean_progressive_fraction:.2f}, "
            f"device-only {seconds * 1e3:.3f} ms"
        )
    benchmark.extra_info["visited_fraction"] = device.mean_progressive_fraction
    assert device.mean_progressive_fraction <= 1.0


def test_progressive_hamming_disabled(benchmark, workload):
    queries, base, classes = workload
    # A chunk covering the whole hypervector disables early termination.
    device = ReRAMAccelerator(ReRAMParameters(hamming_chunk=4096))
    benchmark.pedantic(lambda: _run_inferences(device, queries, base, classes), rounds=1, iterations=1)
    assert device.mean_progressive_fraction == pytest.approx(1.0)


def test_early_termination_saves_device_time(workload, capsys):
    queries, base, classes = workload
    progressive = ReRAMAccelerator(ReRAMParameters(hamming_chunk=512))
    exhaustive = ReRAMAccelerator(ReRAMParameters(hamming_chunk=4096))
    t_progressive = _run_inferences(progressive, queries, base, classes)
    t_exhaustive = _run_inferences(exhaustive, queries, base, classes)
    with capsys.disabled():
        print(
            f"\nearly termination saves {(1 - t_progressive / t_exhaustive) * 100:.1f}% of the "
            f"modeled Hamming-unit time"
        )
    assert t_progressive <= t_exhaustive
