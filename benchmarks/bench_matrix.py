"""The scenario-matrix smoke benchmark: the checked-in 2x2 sub-matrix.

Runs the same ``benchmarks/configs/matrix_smoke.json`` config that CI's
matrix job drives through ``python -m repro.bench``, asserts every cell
served cleanly, and re-evaluates the config's own per-cell gates — so a
local ``pytest benchmarks/ --benchmark-only`` catches the same
regressions the CI gate would.

Unlike the other bench modules this one does *not* use the
``bench_json`` recorder: the matrix runner already emits the canonical
``BENCH_matrix.json`` document (a ``cells`` mapping, not a ``cases``
mapping), and writing both formats to the same file would clobber one
with the other.  The document written here is byte-compatible with the
CLI's output and lands in the same place (``REPRO_BENCH_DIR`` or the
repo root).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.bench import Threshold, bench_seed, evaluate, load_config, run_matrix
from repro.bench.loadgen import build_schedule, derive_rng

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_SMOKE_CONFIG = pathlib.Path(__file__).resolve().parent / "configs" / "matrix_smoke.json"


@pytest.fixture(scope="module")
def matrix_config():
    return load_config(_SMOKE_CONFIG)


@pytest.fixture(scope="module")
def matrix_doc(matrix_config):
    """One full smoke-matrix run, written out as ``BENCH_matrix.json``."""
    history_path = _SMOKE_CONFIG.parent / str(matrix_config.history)
    history = (
        json.loads(history_path.read_text(encoding="utf-8")) if history_path.exists() else None
    )
    document = run_matrix(matrix_config, bench_seed(), history=history)
    out_dir = pathlib.Path(os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT))
    out = out_dir / "BENCH_matrix.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nbenchmark summary -> {out}")
    return document


def test_matrix_cells_serve_cleanly(matrix_doc, matrix_config):
    """Every cell of the smoke matrix serves its whole request stream
    with zero failures, zero sheds and zero vectorization fallbacks."""
    assert set(matrix_doc["cells"]) == set(matrix_config.cell_ids)
    for cell_id, cell in matrix_doc["cells"].items():
        assert cell["failures"] == 0, (cell_id, cell["failures"])
        assert cell["shed"] == 0, (cell_id, cell["shed"])
        assert cell["fallback_stages"] == 0, (cell_id, cell["fallback_stages"])
        assert cell["latency_histogram"]["count"] == cell["requests"], cell_id


def test_matrix_config_gates_hold(matrix_doc, matrix_config):
    """The config's own ``gates`` list — what CI fails the build on —
    must be clean against a fresh run."""
    thresholds = [Threshold(expression) for expression in matrix_config.gates]
    assert evaluate(matrix_doc, thresholds) == []


def test_same_seed_streams_are_identical(matrix_doc, matrix_config):
    """Re-deriving every cell's schedule from the recorded seed must
    reproduce the exact request stream the run fingerprinted.

    The rebuild mirrors the runner's draw order — the cell generator
    feeds the workload build first, then the schedule — so this also
    locks that ordering as part of the reproducibility contract.
    """
    from repro.bench.workloads import build_workload

    seed = matrix_doc["seed"]
    for cell in matrix_config.cells:
        shape = matrix_config.shapes[cell.shape]
        params = {key: value for key, value in shape.items() if key != "kind"}
        fingerprints = set()
        for _ in range(2):
            rng = derive_rng(seed, cell.cell_id)
            workload = build_workload(matrix_config.apps[cell.app], rng)
            schedule = build_schedule(
                shape["kind"], params, rng, n_pool=workload.samples.shape[0]
            )
            fingerprints.add(schedule.fingerprint())
        assert fingerprints == {matrix_doc["cells"][cell.cell_id]["stream_sha1"]}
