"""Shared configuration for the benchmark harnesses.

Every table and figure of the paper's evaluation has a corresponding
``bench_*`` module here.  The workload scale is selected with the
``REPRO_SCALE`` environment variable:

* ``smoke``   — tiny datasets, completes in a couple of minutes (default,
  so that ``pytest benchmarks/ --benchmark-only`` is quick to run);
* ``default`` — the scale used for the numbers recorded in EXPERIMENTS.md;
* ``paper``   — dataset sizes close to the paper's (slow).

Benchmark modules can additionally emit a **machine-readable summary**
through the ``bench_json`` fixture: every recorded case lands in
``BENCH_<module>.json`` (e.g. ``BENCH_serving.json``) next to the repo
root — or under ``REPRO_BENCH_DIR`` — so the performance trajectory is
tracked across PRs instead of living only in scrollback.  The summary
timestamp is *passed in* via ``REPRO_BENCH_TIMESTAMP`` (seconds since
epoch) so CI can stamp a whole matrix run consistently; it defaults to
the current time.

Every stochastic workload in the benchmark suite draws from generators
rooted in the single ``REPRO_BENCH_SEED`` environment variable (fixed
default; see :mod:`repro.bench.loadgen`), so two same-seed runs serve
byte-identical request streams — the scenario matrix records each
cell's stream fingerprint to make that checkable.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.evaluation import EvaluationScale  # noqa: E402

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _selected_scale() -> EvaluationScale:
    name = os.environ.get("REPRO_SCALE", "smoke").lower()
    if name == "paper":
        return EvaluationScale.paper()
    if name == "default":
        return EvaluationScale.default()
    return EvaluationScale.smoke()


@pytest.fixture(scope="session")
def scale() -> EvaluationScale:
    return _selected_scale()


class BenchRecorder:
    """Collects one benchmark module's cases and writes ``BENCH_<name>.json``."""

    def __init__(self, module_stem: str):
        name = module_stem[len("bench_"):] if module_stem.startswith("bench_") else module_stem
        self.name = name
        self.cases: dict = {}

    def record(self, case: str, **fields) -> None:
        """Record one case's summary numbers (throughput, speedups, ...)."""
        self.cases[case] = {key: _jsonable(value) for key, value in fields.items()}

    @property
    def path(self) -> pathlib.Path:
        out_dir = pathlib.Path(os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT))
        return out_dir / f"BENCH_{self.name}.json"

    def write(self) -> pathlib.Path:
        timestamp = float(os.environ.get("REPRO_BENCH_TIMESTAMP", time.time()))
        payload = {
            "benchmark": self.name,
            "timestamp": timestamp,
            "scale": os.environ.get("REPRO_SCALE", "smoke").lower(),
            "cases": self.cases,
        }
        path = self.path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


def _jsonable(value):
    if hasattr(value, "item"):  # NumPy scalars
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@pytest.fixture(scope="module")
def bench_json(request):
    """Module-scoped recorder; writes ``BENCH_<module>.json`` at teardown."""
    recorder = BenchRecorder(pathlib.Path(request.module.__file__).stem)
    yield recorder
    if recorder.cases:
        path = recorder.write()
        print(f"\nbenchmark summary -> {path}")
