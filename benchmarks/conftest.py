"""Shared configuration for the benchmark harnesses.

Every table and figure of the paper's evaluation has a corresponding
``bench_*`` module here.  The workload scale is selected with the
``REPRO_SCALE`` environment variable:

* ``smoke``   — tiny datasets, completes in a couple of minutes (default,
  so that ``pytest benchmarks/ --benchmark-only`` is quick to run);
* ``default`` — the scale used for the numbers recorded in EXPERIMENTS.md;
* ``paper``   — dataset sizes close to the paper's (slow).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.evaluation import EvaluationScale  # noqa: E402


def _selected_scale() -> EvaluationScale:
    name = os.environ.get("REPRO_SCALE", "smoke").lower()
    if name == "paper":
        return EvaluationScale.paper()
    if name == "default":
        return EvaluationScale.default()
    return EvaluationScale.smoke()


@pytest.fixture(scope="session")
def scale() -> EvaluationScale:
    return _selected_scale()
