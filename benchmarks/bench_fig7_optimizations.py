"""Figure 7 / Table 3 — approximation optimizations: speedup vs accuracy.

Regenerates the ten optimization settings of Table 3 on HD-Classification
inference and reports, per setting, the measured speedup over the baseline
configuration (I), the end-to-end accuracy, and the data-movement reduction
delivered by automatic binarization.
"""

from __future__ import annotations

import pytest

from repro.apps import HDClassificationInference
from repro.datasets import make_isolet_like
from repro.evaluation import EvaluationScale, fig7_optimizations, table3_settings


@pytest.fixture(scope="module")
def fig7_setup(scale):
    isolet = make_isolet_like(scale.fig7_isolet())
    trainer = HDClassificationInference(dimension=scale.fig7_dim, similarity="cosine")
    return isolet, trainer.train_offline(isolet)


@pytest.mark.parametrize("setting_id", ["I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"])
def test_optimization_setting(benchmark, scale, fig7_setup, setting_id):
    isolet, trained = fig7_setup
    setting = next(s for s in table3_settings(scale.fig7_dim) if s.id == setting_id)
    app = HDClassificationInference(dimension=scale.fig7_dim, similarity=setting.similarity)

    def run_once():
        return app.run(isolet, target="gpu", config=setting.config, trained=trained)

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)
    benchmark.extra_info["setting"] = setting.name
    benchmark.extra_info["accuracy"] = result.quality
    benchmark.extra_info["loc_changes"] = setting.loc_changes


def test_fig7_report(benchmark, scale, capsys):
    result = benchmark.pedantic(lambda: fig7_optimizations(scale, repeats=2), rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 7 / Table 3: approximation settings on HD-Classification inference ===")
        print(result.format())
        print(
            "Paper reference: binarized Hamming settings (III, VII, VIII) keep accuracy at or above "
            "the cosine baseline while perforating the encoding (V, VI, IX) costs the most accuracy."
        )
    by_id = {row.setting.id: row for row in result.rows}
    # Accuracy shape of Figure 7: binarized Hamming configurations stay close
    # to the baseline, aggressive encoding perforation loses accuracy.
    assert by_id["III"].accuracy >= by_id["I"].accuracy - 0.05
    assert by_id["VII"].accuracy >= by_id["I"].accuracy - 0.1
    assert by_id["VI"].accuracy <= by_id["III"].accuracy
