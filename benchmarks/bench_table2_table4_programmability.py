"""Table 2 and Table 4 — application inventory and lines-of-code comparison.

Table 2 is the descriptive inventory of the five applications and the HDC
stages they use; Table 4 is the programmability study comparing the lines of
code of the per-target baselines against the single portable HDC++ source.
"""

from __future__ import annotations

from repro.evaluation import table2_applications, table4_loc
from repro.evaluation.metrics import format_table


def test_table2_report(benchmark, capsys):
    rows = benchmark.pedantic(table2_applications, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Table 2: evaluated HDC applications ===")
        print(
            format_table(
                ["Application", "Workload", "HDC stages", "Targets"],
                [
                    [r["application"], r["workload"], ", ".join(r["stages"]), ", ".join(r["targets"])]
                    for r in rows
                ],
            )
        )
    assert len(rows) == 5


def test_table4_report(benchmark, capsys):
    result = benchmark.pedantic(table4_loc, rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Table 4: lines of code (baselines vs HDC++) ===")
        print(result.format())
        print(
            "Paper reference: 1.6x geomean reduction in total lines of code (C++/CUDA baselines). "
            "Both sides are Python here, so the measured reduction is smaller; the direction is "
            "what the reproduction checks."
        )
    assert len(result.rows) == 5
    assert result.geomean_reduction > 0.8
