"""Figure 6 — HDC accelerators vs an NVIDIA Jetson AGX Orin (device-only).

Regenerates the Figure 6 comparison: HD-Classification and HD-Clustering
compiled for the digital HDC ASIC and the ReRAM accelerator simulators, with
device-only latency compared against the Jetson Orin edge-GPU model.  The
paper's qualitative result — both accelerators beat the edge GPU, the
speedup is larger for HD-Classification (training-dominated), and the ReRAM
accelerator is the fastest — is asserted by the report benchmark.
"""

from __future__ import annotations

import pytest

from repro.apps import HDClassification, HDClustering
from repro.datasets import IsoletConfig, make_isolet_like
from repro.evaluation import fig6_accelerators


@pytest.fixture(scope="module")
def isolet(scale):
    return make_isolet_like(scale.isolet())


@pytest.mark.parametrize("target", ["hdc_asic", "hdc_reram"])
def test_hd_classification_on_accelerator(benchmark, scale, isolet, target):
    app = HDClassification(dimension=scale.classification_dim, epochs=scale.classification_epochs)
    result = benchmark.pedantic(lambda: app.run(isolet, target=target), rounds=1, iterations=1)
    benchmark.extra_info["device_only_ms"] = result.report.device_seconds * 1e3
    benchmark.extra_info["accuracy"] = result.quality
    benchmark.extra_info["energy_joules"] = result.report.energy_joules


@pytest.mark.parametrize("target", ["hdc_asic", "hdc_reram"])
def test_hd_clustering_on_accelerator(benchmark, scale, isolet, target):
    app = HDClustering(
        dimension=scale.classification_dim,
        n_clusters=isolet.n_classes,
        iterations=scale.clustering_iterations,
    )
    result = benchmark.pedantic(lambda: app.run(isolet, target=target), rounds=1, iterations=1)
    benchmark.extra_info["device_only_ms"] = result.report.device_seconds * 1e3
    benchmark.extra_info["purity"] = result.quality


def test_fig6_report(benchmark, scale, capsys):
    result = benchmark.pedantic(lambda: fig6_accelerators(scale), rounds=1, iterations=1)
    with capsys.disabled():
        print("\n=== Figure 6: accelerator device-only speedup over Jetson Orin ===")
        print(result.format())
        print(
            "Paper reference: both accelerators outperform the Jetson Orin; the speedup is "
            "larger for HD-Classification than HD-Clustering and the ReRAM accelerator is fastest."
        )
    # The qualitative shape of Figure 6 must hold.
    assert all(row.speedup > 1.0 for row in result.rows)
    classification = [r.speedup for r in result.rows if r.app == "HD-Classification"]
    clustering = [r.speedup for r in result.rows if r.app == "HD-Clustering"]
    assert max(classification) >= max(clustering)
