"""Microbenchmarks of the HDC primitive kernels used by the back ends.

Not a paper figure, but useful for understanding where the time of the
figure-level benchmarks goes: encoding GEMMs, similarity searches (float,
bipolar-GEMM and packed-bit variants), the element-wise primitives, and
the batched vs per-row application encoders of the batch-native execution
plane.  Every case's mean time lands in ``BENCH_primitives.json`` (see
the ``bench_json`` fixture in ``conftest.py``) so kernel-level
regressions are visible across PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import batched, binary as binkern, reference as ref

DIM = 8192
CLASSES = 26
QUERIES = 128
FEATURES = 617


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2)
    return {
        "features": rng.normal(size=(QUERIES, FEATURES)).astype(np.float32),
        "rp": (rng.integers(0, 2, (DIM, FEATURES)) * 2 - 1).astype(np.float32),
        "encoded": (rng.integers(0, 2, (QUERIES, DIM)) * 2 - 1).astype(np.float32),
        "classes": (rng.integers(0, 2, (CLASSES, DIM)) * 2 - 1).astype(np.float32),
    }


def _record(bench_json, benchmark, case: str, **extra) -> None:
    """Fold one pytest-benchmark case into the JSON summary."""
    stats = benchmark.stats.stats
    bench_json.record(
        case,
        mean_seconds=stats.mean,
        min_seconds=stats.min,
        ops_per_second=(1.0 / stats.mean) if stats.mean else 0.0,
        **extra,
    )


def test_encode_gemm_batched(benchmark, bench_json, data):
    benchmark(lambda: batched.gemm(data["features"], data["rp"]))
    _record(bench_json, benchmark, "encode_gemm_batched", queries=QUERIES, dim=DIM)


def test_encode_matmul_per_sample(benchmark, bench_json, data):
    benchmark(lambda: ref.matmul(data["features"][0], data["rp"]))
    _record(bench_json, benchmark, "encode_matmul_per_sample", dim=DIM)


def test_cossim_batched(benchmark, bench_json, data):
    benchmark(lambda: batched.pairwise_cossim(data["encoded"], data["classes"]))
    _record(bench_json, benchmark, "cossim_batched", queries=QUERIES, classes=CLASSES)


def test_hamming_batched_bipolar(benchmark, bench_json, data):
    benchmark(lambda: batched.pairwise_hamming(data["encoded"], data["classes"]))
    _record(bench_json, benchmark, "hamming_batched_bipolar", queries=QUERIES, classes=CLASSES)


def test_hamming_reference(benchmark, bench_json, data):
    benchmark(lambda: ref.hamming_distance(data["encoded"][:16], data["classes"]))
    _record(bench_json, benchmark, "hamming_reference", queries=16, classes=CLASSES)


def test_hamming_packed_bits(benchmark, bench_json, data):
    packed_q = binkern.pack_bipolar(data["encoded"])
    packed_c = binkern.pack_bipolar(data["classes"])
    benchmark(lambda: binkern.hamming_distance_packed(packed_q, packed_c))
    _record(
        bench_json,
        benchmark,
        "hamming_packed_bits",
        queries=QUERIES,
        classes=CLASSES,
        resident_bytes=int(packed_c.nbytes),
        unpacked_bytes=int(data["classes"].nbytes),
    )


def test_pack_bipolar(benchmark, bench_json, data):
    """Per-micro-batch query pack cost — the packed route's only per-call
    overhead once the class memory is resident packed."""
    packed = benchmark(lambda: binkern.pack_bipolar(data["encoded"]))
    _record(
        bench_json,
        benchmark,
        "pack_bipolar",
        queries=QUERIES,
        dim=DIM,
        resident_bytes=int(packed.nbytes),
        unpacked_bytes=int(data["encoded"].nbytes),
        shrink_ratio=data["encoded"].nbytes / packed.nbytes,
    )


def test_unpack_bipolar(benchmark, bench_json, data):
    packed = binkern.pack_bipolar(data["encoded"])
    restored = benchmark(lambda: binkern.unpack_bipolar(packed, DIM))
    assert np.array_equal(restored, (data["encoded"] > 0).astype(np.int8) * 2 - 1)
    _record(bench_json, benchmark, "unpack_bipolar", queries=QUERIES, dim=DIM)


def test_sign_kernel(benchmark, bench_json, data):
    raw = data["features"] @ data["rp"].T
    benchmark(lambda: ref.sign(raw))
    _record(bench_json, benchmark, "sign_kernel", queries=QUERIES, dim=DIM)


def test_wrap_shift(benchmark, bench_json, data):
    benchmark(lambda: ref.wrap_shift(data["encoded"], 3))
    _record(bench_json, benchmark, "wrap_shift", queries=QUERIES, dim=DIM)


def test_batched_permute(benchmark, bench_json, data):
    benchmark(lambda: batched.permute(data["encoded"], 3))
    _record(bench_json, benchmark, "batched_permute", queries=QUERIES, dim=DIM)


# ---------------------------------------------------------------------------
# Application encoders: batched route vs per-row reference
# ---------------------------------------------------------------------------

HASHTABLE_READS = 64
READ_LENGTH = 60
KMER = 8


@pytest.fixture(scope="module")
def hashtable_encoders():
    from repro.apps.hashtable import HDHashtable

    app = HDHashtable(dimension=2048, seed=9)
    base_hvs = app.make_base_hypervectors()
    rng = np.random.default_rng(6)
    reads = rng.integers(0, 4, (HASHTABLE_READS, READ_LENGTH)).astype(np.int64)
    return (
        app._make_read_encoder(base_hvs, KMER),
        app._make_batched_read_encoder(base_hvs, KMER),
        reads,
    )


def test_hashtable_encoder_per_read(benchmark, bench_json, hashtable_encoders):
    encode_read, _, reads = hashtable_encoders
    benchmark(lambda: np.stack([encode_read(read) for read in reads]))
    _record(bench_json, benchmark, "hashtable_encoder_per_read", reads=HASHTABLE_READS)


def test_hashtable_encoder_batched(benchmark, bench_json, hashtable_encoders):
    encode_read, encode_reads, reads = hashtable_encoders
    result = encode_reads(reads)
    # The batched route must stay bit-identical to the per-read reference.
    assert np.array_equal(result, np.stack([encode_read(read) for read in reads]))
    benchmark(lambda: encode_reads(reads))
    _record(bench_json, benchmark, "hashtable_encoder_batched", reads=HASHTABLE_READS)
