"""Microbenchmarks of the HDC primitive kernels used by the back ends.

Not a paper figure, but useful for understanding where the time of the
figure-level benchmarks goes: encoding GEMMs, similarity searches (float,
bipolar-GEMM and packed-bit variants), and the element-wise primitives.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import batched, binary as binkern, reference as ref

DIM = 8192
CLASSES = 26
QUERIES = 128
FEATURES = 617


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2)
    return {
        "features": rng.normal(size=(QUERIES, FEATURES)).astype(np.float32),
        "rp": (rng.integers(0, 2, (DIM, FEATURES)) * 2 - 1).astype(np.float32),
        "encoded": (rng.integers(0, 2, (QUERIES, DIM)) * 2 - 1).astype(np.float32),
        "classes": (rng.integers(0, 2, (CLASSES, DIM)) * 2 - 1).astype(np.float32),
    }


def test_encode_gemm_batched(benchmark, data):
    benchmark(lambda: batched.gemm(data["features"], data["rp"]))


def test_encode_matmul_per_sample(benchmark, data):
    benchmark(lambda: ref.matmul(data["features"][0], data["rp"]))


def test_cossim_batched(benchmark, data):
    benchmark(lambda: batched.pairwise_cossim(data["encoded"], data["classes"]))


def test_hamming_batched_bipolar(benchmark, data):
    benchmark(lambda: batched.pairwise_hamming(data["encoded"], data["classes"]))


def test_hamming_reference(benchmark, data):
    benchmark(lambda: ref.hamming_distance(data["encoded"][:16], data["classes"]))


def test_hamming_packed_bits(benchmark, data):
    packed_q = binkern.pack_bipolar(data["encoded"])
    packed_c = binkern.pack_bipolar(data["classes"])
    benchmark(lambda: binkern.hamming_distance_packed(packed_q, packed_c))


def test_sign_kernel(benchmark, data):
    raw = data["features"] @ data["rp"].T
    benchmark(lambda: ref.sign(raw))


def test_wrap_shift(benchmark, data):
    benchmark(lambda: ref.wrap_shift(data["encoded"], 3))
