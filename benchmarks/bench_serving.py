"""Serving benchmark — dynamic batching vs one-shot single-request inference.

Not a paper figure: this benchmark quantifies the serving runtime added on
top of the reproduction (ROADMAP north star).  It measures, for the ISOLET
classification application on the CPU backend,

* **single-request throughput** — a warm batch-1 ``BoundProgram`` handle
  invoked once per sample (no re-tracing, no re-binding of constants: the
  strongest one-shot baseline the seed flow offers), versus
* **served throughput** — the same samples pushed through an
  :class:`~repro.serving.InferenceServer` that coalesces them into
  micro-batches and runs the batched host kernel path,

and asserts the dynamic-batching speedup the serving subsystem exists to
deliver (>= 3x).  A second benchmark exercises the registry round trip
(register -> warm cache -> re-register) and asserts the compile cache
actually hits.  A third pushes the same request stream through a
**sharded deployment** (class memory split across two workers, partial
scores reduced on the way back) and asserts the scatter/reduce path is
bit-identical to unsharded serving while reporting its throughput cost.
A fourth drives the **socket transport**: one blocking network client is
latency-bound (each request pays a batching wait plus a socket round
trip), while 8 concurrent clients coalesce into shared micro-batches on
the server — the benchmark asserts the >= 2x aggregate-throughput
scaling that the transport front end exists to deliver.

Two benchmarks cover the **batch-native execution plane**: the HyperOMS
workload served through the default batched worker must beat a per-row
worker by >= 3x (the encoder runs as per-level GEMMs instead of one
Python iteration per spectrum), and every stock app adapter must serve
fully vectorized — zero per-row fallbacks in the per-deployment
``ServerStats`` counters, which is what CI's perf-smoke step fails on.

Two cases cover the **observability plane**: a steady-load comparison
asserting that per-request tracing costs < 5% of untraced throughput
(min-of-repeats on both sides), and an export case that scrapes a live
transport's Prometheus exposition (linted by the in-tree parser, written
to ``BENCH_metrics.prom``) and dumps retained request traces as Chrome
trace-event JSON (``BENCH_trace.json``) — both uploaded as CI artifacts
next to ``BENCH_serving.json``.

A **serve-while-retraining** benchmark drives sustained load across
three online re-training hot-swaps (``InferenceServer.update``): zero
dropped or errored requests end to end, and the post-swap predictions
bit-identical to an offline retrain applying the same update rule to the
same mini-batches.  Its ``failures`` / ``swaps`` fields feed the CI
threshold gate (``tools/scrape_stats.py --check``).  A **streaming
growth** benchmark is its shape-changing counterpart: sustained load
across three ``InferenceServer.append`` hot-swaps that grow the served
hash table's row count, zero drops, and post-growth predictions
bit-identical to an offline rebuild of the full grown index — gated the
same way.

Two cases cover the **uint64 packed-bit serving plane**: a kernel-level
micro-benchmark at serving micro-batch shapes asserting the packed
Hamming route (including the per-batch query pack) beats the bipolar
float path by >= 1.5x with bit-identical top-1 results, and a
packed-storage case asserting a binarized deployment's resident class
memory shrinks >= 25x (``ServerStats`` residency) while serving
predictions bit-identical to the binarized-but-unpacked route with zero
per-row fallbacks.  Both record their ratios in ``BENCH_serving.json``
so the CI threshold gate can replay them offline.

Every case also lands in ``BENCH_serving.json`` (see the ``bench_json``
fixture) so the throughput trajectory is tracked across PRs.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.accelerators.digital_asic import DigitalASICParameters
from repro.apps import HDClassificationInference, HyperOMS
from repro.apps.classification import classification_servable
from repro.apps.common import bipolar_random
from repro.backends import compile as hdc_compile
from repro.backends.asic import DigitalASICBackend
from repro.backends.cpu import CPUBackend
from repro.bench.loadgen import bench_seed, derive_rng
from repro.datasets import make_isolet_like
from repro.serving import InferenceServer, ModelRegistry, merge_server_stats
from repro.serving.replica import ClientPool, ReplicaGroup
from repro.serving.replica.routing import route
from repro.serving.scheduler import Worker
from repro.serving.transport import ServingClient, TransportServer

#: Number of single-sample requests pushed through both flows.
N_REQUESTS = 512

#: Socket requests per concurrency level of the transport benchmark.
N_SOCKET_REQUESTS = 192

#: Requests pushed through the batched-vs-per-row encoder comparison.
N_ENCODER_REQUESTS = 256


@pytest.fixture(scope="module")
def isolet(scale):
    return make_isolet_like(scale.isolet())


@pytest.fixture(scope="module")
def servable(scale, isolet):
    app = HDClassificationInference(dimension=scale.classification_dim, similarity="hamming")
    return app.as_servable(dataset=isolet)


@pytest.fixture(scope="module")
def requests(isolet):
    test = isolet.test_features
    reps = -(-N_REQUESTS // test.shape[0])  # ceil
    return np.tile(test, (reps, 1))[:N_REQUESTS]


def test_dynamic_batching_speedup(benchmark, bench_json, servable, requests):
    """Served throughput must be >= 3x the single-request baseline."""
    # Warm single-request baseline: compiled once, constants bound once.
    baseline_handle = hdc_compile(servable.build_program(1), target="cpu").bind(
        **servable.constants
    )
    query = servable.query_param

    start = time.perf_counter()
    baseline_labels = [
        int(np.asarray(baseline_handle.run(**{query: requests[i : i + 1]}).output)[0])
        for i in range(requests.shape[0])
    ]
    baseline_seconds = time.perf_counter() - start

    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)

    def serve_all():
        with server:
            return server.infer_many(servable.name, list(requests))

    start = time.perf_counter()
    results = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    served_seconds = time.perf_counter() - start

    served_labels = [int(np.asarray(r)) for r in results]
    assert served_labels == baseline_labels

    stats = server.stats()
    speedup = baseline_seconds / served_seconds
    benchmark.extra_info["baseline_rps"] = requests.shape[0] / baseline_seconds
    benchmark.extra_info["served_rps"] = requests.shape[0] / served_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["mean_batch_size"] = stats.mean_batch_size
    benchmark.extra_info["latency_p99_ms"] = stats.latency_p99_ms
    print(
        f"\nserving: {requests.shape[0]} requests, "
        f"baseline {baseline_seconds * 1e3:.1f}ms, served {served_seconds * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x, mean batch {stats.mean_batch_size:.1f}, "
        f"p99 {stats.latency_p99_ms:.2f}ms"
    )
    bench_json.record(
        "dynamic_batching",
        requests=requests.shape[0],
        baseline_rps=requests.shape[0] / baseline_seconds,
        served_rps=requests.shape[0] / served_seconds,
        speedup=speedup,
        mean_batch_size=stats.mean_batch_size,
        latency_p99_ms=stats.latency_p99_ms,
    )
    assert stats.mean_batch_size > 1.0
    assert speedup >= 3.0


def test_sharded_deployment_throughput(benchmark, bench_json, servable, requests):
    """Sharded serving (N=2) must match unsharded predictions bit-for-bit;
    report the scatter/reduce throughput next to the unsharded path."""
    unsharded = InferenceServer(
        workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002
    )
    unsharded.register(servable)
    start = time.perf_counter()
    with unsharded:
        expected = unsharded.infer_many(servable.name, list(requests))
    unsharded_seconds = time.perf_counter() - start
    expected_labels = [int(np.asarray(r)) for r in expected]

    sharded = InferenceServer(workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002)
    sharded.register(servable, name="sharded", shards=2)

    def serve_sharded():
        with sharded:
            return sharded.infer_many("sharded", list(requests))

    start = time.perf_counter()
    results = benchmark.pedantic(serve_sharded, rounds=1, iterations=1)
    sharded_seconds = time.perf_counter() - start

    sharded_labels = [int(np.asarray(r)) for r in results]
    assert sharded_labels == expected_labels  # bit-identical scatter/reduce

    unsharded_rps = requests.shape[0] / unsharded_seconds
    sharded_rps = requests.shape[0] / sharded_seconds
    benchmark.extra_info["unsharded_rps"] = unsharded_rps
    benchmark.extra_info["sharded_rps"] = sharded_rps
    benchmark.extra_info["relative_throughput"] = sharded_rps / unsharded_rps
    print(
        f"\nsharded serving: {requests.shape[0]} requests, "
        f"unsharded {unsharded_rps:.0f} req/s, sharded(2) {sharded_rps:.0f} req/s "
        f"({sharded_rps / unsharded_rps:.2f}x relative)"
    )
    stats = sharded.stats()
    bench_json.record(
        "sharded_deployment",
        requests=requests.shape[0],
        unsharded_rps=unsharded_rps,
        sharded_rps=sharded_rps,
        relative_throughput=sharded_rps / unsharded_rps,
    )
    assert stats.failures == 0
    # Scatter pays one extra encode per shard, so allow slack — but the
    # sharded path must stay within the same order of magnitude.
    assert sharded_rps >= 0.2 * unsharded_rps


def test_socket_clients_scale_aggregate_throughput(benchmark, bench_json, servable, requests):
    """8 concurrent socket clients must deliver >= 2x the aggregate
    throughput of 1 client on CPU ISOLET classification.

    A single blocking client serializes (submit, batching wait, execute,
    socket round trip) per request; concurrent clients keep the
    micro-batcher fed, so the batched kernel path amortizes across
    connections.  That cross-client coalescing is the point of fronting
    the shared RequestBroker with a network transport.
    """
    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)
    server.start()
    transport = TransportServer(server)
    host, port = transport.start()
    samples = requests[:N_SOCKET_REQUESTS]

    def run_clients(n_clients: int) -> float:
        """Aggregate seconds for the whole request set split evenly."""
        chunks = np.array_split(np.arange(samples.shape[0]), n_clients)
        errors = []

        def client_loop(indices) -> None:
            try:
                with ServingClient(host, port, timeout=60.0) as client:
                    for i in indices:
                        client.infer(servable.name, samples[i])
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client_loop, args=(c,)) for c in chunks]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        return elapsed

    try:
        run_clients(1)  # warm every bucket/handle before timing
        single_seconds = run_clients(1)

        def timed_concurrent():
            return run_clients(8)

        concurrent_seconds = benchmark.pedantic(timed_concurrent, rounds=1, iterations=1)
        server.drain()
        stats = server.stats()
    finally:
        transport.stop()
        server.stop()

    single_rps = samples.shape[0] / single_seconds
    concurrent_rps = samples.shape[0] / concurrent_seconds
    scaling = concurrent_rps / single_rps
    benchmark.extra_info["single_client_rps"] = single_rps
    benchmark.extra_info["eight_client_rps"] = concurrent_rps
    benchmark.extra_info["scaling"] = scaling
    benchmark.extra_info["mean_batch_size"] = stats.mean_batch_size
    print(
        f"\nsocket transport: {samples.shape[0]} requests, "
        f"1 client {single_rps:.0f} req/s, 8 clients {concurrent_rps:.0f} req/s "
        f"({scaling:.1f}x), mean batch {stats.mean_batch_size:.1f}"
    )
    bench_json.record(
        "socket_transport",
        requests=samples.shape[0],
        single_client_rps=single_rps,
        eight_client_rps=concurrent_rps,
        scaling=scaling,
        mean_batch_size=stats.mean_batch_size,
    )
    assert stats.failures == 0
    assert scaling >= 2.0


def test_serve_while_retraining(benchmark, bench_json, servable, requests, isolet):
    """Zero-downtime online re-training: sustained load across >= 3
    hot-swaps with zero dropped/errored requests, and post-swap
    predictions bit-identical to an offline retrain on the same data.

    Loader threads keep submitting while ``server.update`` retrains the
    class memories on three disjoint slices of the training set and
    hot-swaps each re-trained deployment in.  Every submitted future must
    resolve to a valid label — a request that errored (e.g. handed to a
    just-closed batcher by the pre-fix race) or was silently dropped
    fails the case, as does any ``ServerStats`` failure count.
    """
    n_swaps = 3
    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)
    rounds = [
        (isolet.train_features[i::n_swaps], isolet.train_labels[i::n_swaps])
        for i in range(n_swaps)
    ]
    stop = threading.Event()
    futures, errors = [], []
    futures_lock = threading.Lock()

    def loader(seed: int) -> None:
        i = seed
        while not stop.is_set():
            try:
                future = server.submit(servable.name, requests[i % requests.shape[0]])
                with futures_lock:
                    futures.append(future)
            except Exception as exc:
                errors.append(exc)
            i += 1
            time.sleep(0.0005)

    def run_case():
        threads = [threading.Thread(target=loader, args=(t,)) for t in range(4)]
        with server:
            for thread in threads:
                thread.start()
            versions = []
            for samples, labels in rounds:
                versions.append(server.update(servable.name, samples, labels))
                time.sleep(0.02)  # keep serving between swaps
            stop.set()
            for thread in threads:
                thread.join()
            server.drain()
            post_swap = server.infer_many(servable.name, list(isolet.test_features))
            server.drain()
            return versions, post_swap, server.stats()

    start = time.perf_counter()
    versions, post_swap, stats = benchmark.pedantic(run_case, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    assert not errors, errors  # zero requests errored at submit time
    labels = [int(np.asarray(f.result(timeout=10.0))) for f in futures]  # zero dropped
    assert stats.failures == 0 and stats.deadline_exceeded == 0
    assert versions == [2, 3, 4] and stats.swaps == n_swaps
    model = stats.model_stats[servable.name]
    assert sum(model["requests_by_version"].values()) == model["requests"]

    # Bit identity vs an offline retrain applying the same rule to the
    # same mini-batches: identical constants, identical predictions.
    offline = servable
    for samples, labels_round in rounds:
        offline = offline.updated(samples, labels_round)
    live = server.registry.get(servable.name).servable
    assert np.array_equal(offline.constants["class_hvs"], live.constants["class_hvs"])
    handle = hdc_compile(
        offline.build_program(isolet.test_features.shape[0]), target="cpu"
    ).bind(**offline.constants)
    expected = [int(v) for v in np.asarray(handle.run(**{offline.query_param: isolet.test_features}).output)]
    assert [int(np.asarray(r)) for r in post_swap] == expected

    served_rps = len(labels) / elapsed if elapsed > 0 else 0.0
    benchmark.extra_info["requests_during_swaps"] = len(labels)
    benchmark.extra_info["swaps"] = stats.swaps
    benchmark.extra_info["served_rps"] = served_rps
    print(
        f"\nserve-while-retraining: {len(labels)} requests across {stats.swaps} hot-swaps "
        f"({served_rps:.0f} req/s), failures {stats.failures}, "
        f"versions {model['requests_by_version']}, bit-identical post-swap"
    )
    bench_json.record(
        "serve_while_retraining",
        requests=len(labels),
        swaps=stats.swaps,
        failures=stats.failures,
        deadline_exceeded=stats.deadline_exceeded,
        served_rps=served_rps,
        requests_by_version=model["requests_by_version"],
        bit_identical=True,
    )
    assert len(labels) > 0
    assert all(0 <= label < isolet.n_classes for label in labels)


def test_streaming_growth(benchmark, bench_json):
    """Zero-downtime shape-changing growth: sustained load across >= 3
    append hot-swaps with zero dropped/errored requests, and post-growth
    predictions bit-identical to an offline rebuild of the grown index.

    The shape-changing counterpart of ``test_serve_while_retraining``:
    instead of re-training weights at a fixed shape, each round appends
    new reference buckets to the served hash table's ``table`` constant
    (``InferenceServer.append``), re-traces the programs for the grown
    row count and hot-swaps — loader threads submitting the whole time.
    Every future must resolve; the grown servable's content-hashed
    signature and its predictions must equal an offline rebuild from the
    full sequence set.
    """
    from repro.apps import HDHashtable
    from repro.datasets.genomics import GenomicsConfig, base_indices, make_genomics_dataset

    n_appends, rows_per_append, kmer_length = 3, 2, 8
    dataset = make_genomics_dataset(
        GenomicsConfig(
            genome_length=2000, bucket_size=200, read_length=60, n_reads=24,
            n_decoys=0, kmer_length=kmer_length,
        )
    )
    app = HDHashtable(dimension=256)
    base_hvs = app.make_base_hypervectors()
    table = app.encode_reference_buckets(dataset, base_hvs)

    def make_servable(bucket_table):
        return app.as_servable(
            bucket_table,
            dataset.config.read_length,
            kmer_length,
            base_hvs=base_hvs,
            name="growing-table",
            append_length=dataset.config.bucket_size,
        )

    servable = make_servable(table)
    queries = np.stack([base_indices(read) for read in dataset.reads])
    rng = derive_rng(bench_seed(), "bench_serving.streaming_growth")
    rounds = [
        rng.integers(0, 4, (rows_per_append, dataset.config.bucket_size), dtype=np.int64)
        for _ in range(n_appends)
    ]

    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)
    stop = threading.Event()
    futures, errors = [], []
    futures_lock = threading.Lock()

    def loader(seed: int) -> None:
        i = seed
        while not stop.is_set():
            try:
                future = server.submit(servable.name, queries[i % queries.shape[0]])
                with futures_lock:
                    futures.append(future)
            except Exception as exc:
                errors.append(exc)
            i += 1
            time.sleep(0.0005)

    def run_case():
        threads = [threading.Thread(target=loader, args=(t,)) for t in range(4)]
        with server:
            for thread in threads:
                thread.start()
            versions = []
            for rows in rounds:
                versions.append(server.append(servable.name, rows))
                time.sleep(0.02)  # keep serving between shape changes
            stop.set()
            for thread in threads:
                thread.join()
            server.drain()
            post_growth = server.infer_many(servable.name, list(queries))
            server.drain()
            return versions, post_growth, server.stats()

    start = time.perf_counter()
    versions, post_growth, stats = benchmark.pedantic(run_case, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    assert not errors, errors  # zero requests errored at submit time
    labels = [int(np.asarray(f.result(timeout=10.0))) for f in futures]  # zero dropped
    assert stats.failures == 0 and stats.deadline_exceeded == 0
    assert versions == [2, 3, 4] and stats.swaps == n_appends

    # Bit identity vs an offline rebuild of the full grown table: same
    # content-hashed signature, identical predictions.
    encode_read = app._make_read_encoder(base_hvs, kmer_length)
    extra = np.stack(
        [np.sign(encode_read(row)) for row in np.vstack(rounds)]
    ).astype(np.float32)
    offline = make_servable(np.vstack([table, extra]))
    live = server.registry.get(servable.name).servable
    assert live.signature == offline.signature
    handle = hdc_compile(
        offline.build_program(queries.shape[0]), target="cpu"
    ).bind(**offline.constants)
    expected = [int(v) for v in np.asarray(handle.run(**{offline.query_param: queries}).output)]
    assert [int(np.asarray(r)) for r in post_growth] == expected

    served_rps = len(labels) / elapsed if elapsed > 0 else 0.0
    appended = n_appends * rows_per_append
    append_rows_per_s = appended / elapsed if elapsed > 0 else 0.0
    benchmark.extra_info["requests_during_growth"] = len(labels)
    benchmark.extra_info["swaps"] = stats.swaps
    benchmark.extra_info["served_rps"] = served_rps
    benchmark.extra_info["append_rows_per_s"] = append_rows_per_s
    print(
        f"\nstreaming growth: {len(labels)} requests across {stats.swaps} append "
        f"hot-swaps ({served_rps:.0f} req/s), table {table.shape[0]} -> "
        f"{table.shape[0] + appended} rows, failures {stats.failures}, "
        f"bit-identical post-growth"
    )
    bench_json.record(
        "streaming_growth",
        requests=len(labels),
        swaps=stats.swaps,
        failures=stats.failures,
        deadline_exceeded=stats.deadline_exceeded,
        served_rps=served_rps,
        appended_rows=appended,
        append_rows_per_s=append_rows_per_s,
        bit_identical=True,
    )
    assert len(labels) > 0
    assert all(0 <= label < table.shape[0] + appended for label in labels)


def test_tracing_overhead_under_steady_load(benchmark, bench_json, servable, requests):
    """Per-request tracing must cost < 5% of untraced steady-state
    throughput.

    Both servers serve the identical request stream; the traced one runs
    the worst-case configuration (``trace_sample_every=1`` — every
    healthy trace retained, every span recorded).  Passes are
    *interleaved* (untraced, traced, untraced, traced, ...) and each side
    keeps its minimum, so a machine-wide slowdown mid-run biases both
    configurations equally instead of penalizing whichever ran second.
    Two noise sources need explicit countermeasures beyond that:

    * passes must be long enough (~100ms — the stream serves the request
      set several times over) for scheduler jitter not to swamp a
      single-digit-microsecond per-request delta, and
    * a server *instance* can be persistently ~10% slow from unlucky
      thread placement, so each measurement attempt builds fresh server
      pairs, and a below-threshold attempt is re-measured (bounded
      retries) rather than trusted — a genuine >5% regression fails
      every attempt, while a one-off noisy attempt does not fail CI.
    """
    stream = list(requests) * 6
    pairs_per_attempt = 2
    passes_per_pair = 3
    max_attempts = 4

    def make_server(tracing: bool) -> InferenceServer:
        server = InferenceServer(
            workers=("cpu",),
            max_batch_size=64,
            max_wait_seconds=0.002,
            tracing=tracing,
            trace_sample_every=1,
        )
        server.register(servable)
        server.start()
        server.infer_many(servable.name, list(requests[:64]))  # warm every bucket
        return server

    def one_pass(server: InferenceServer) -> float:
        start = time.perf_counter()
        server.infer_many(servable.name, stream)
        return time.perf_counter() - start

    def measure_attempt() -> "tuple[float, float]":
        best_untraced = best_traced = float("inf")
        for _ in range(pairs_per_attempt):
            untraced_server = make_server(tracing=False)
            traced_server = make_server(tracing=True)
            try:
                for _ in range(passes_per_pair):
                    best_untraced = min(best_untraced, one_pass(untraced_server))
                    best_traced = min(best_traced, one_pass(traced_server))
            finally:
                untraced_server.stop()
                traced_server.stop()
        return best_untraced, best_traced

    untraced_seconds = traced_seconds = float("inf")
    for attempt in range(max_attempts):
        attempt_untraced, attempt_traced = measure_attempt()
        untraced_seconds = min(untraced_seconds, attempt_untraced)
        traced_seconds = min(traced_seconds, attempt_traced)
        if traced_seconds <= untraced_seconds / 0.95:
            break
        print(f"\ntracing overhead attempt {attempt + 1} noisy, re-measuring")

    # The recorded benchmark sample is one traced pass on a fresh server.
    bench_server = make_server(tracing=True)
    try:
        benchmark.pedantic(lambda: one_pass(bench_server), rounds=1, iterations=1)
    finally:
        bench_server.stop()

    untraced_rps = len(stream) / untraced_seconds
    traced_rps = len(stream) / traced_seconds
    relative = traced_rps / untraced_rps
    benchmark.extra_info["untraced_rps"] = untraced_rps
    benchmark.extra_info["traced_rps"] = traced_rps
    benchmark.extra_info["relative_throughput"] = relative
    print(
        f"\ntracing overhead: {len(stream)} requests, "
        f"untraced {untraced_rps:.0f} req/s, traced {traced_rps:.0f} req/s "
        f"({relative:.3f}x relative)"
    )
    bench_json.record(
        "tracing_overhead",
        requests=len(stream),
        untraced_rps=untraced_rps,
        traced_rps=traced_rps,
        relative_throughput=relative,
    )
    assert relative >= 0.95


def test_observability_export_artifacts(bench_json, servable, requests):
    """Scrape a live transport's observability surface into CI artifacts:
    the Prometheus exposition (validated by the in-tree lint) and the
    retained traces as loadable Chrome trace-event JSON."""
    import json as json_module

    from repro.serving import chrome_trace, parse_prometheus_text

    server = InferenceServer(
        workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002, tracing=True
    )
    server.register(servable)
    server.start()
    transport = TransportServer(server)
    host, port = transport.start()
    try:
        with ServingClient(host, port, timeout=60.0) as client:
            for sample in requests[:64]:
                client.infer(servable.name, sample)
            text = client.metrics_text()
            traces = client.traces()
        stats = server.stats().to_dict()
    finally:
        transport.stop()
        server.stop()

    samples = parse_prometheus_text(text)  # raises on malformed exposition
    assert samples

    out_dir = bench_json.path.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    prom_path = out_dir / "BENCH_metrics.prom"
    prom_path.write_text(text, encoding="utf-8")

    assert traces, "tracing enabled but no traces retained"
    document = chrome_trace(traces)
    trace_path = out_dir / "BENCH_trace.json"
    trace_path.write_text(json_module.dumps(document, indent=2) + "\n", encoding="utf-8")
    reloaded = json_module.loads(trace_path.read_text(encoding="utf-8"))
    assert reloaded["traceEvents"]

    names = {span["name"] for trace in traces for span in trace["spans"]}
    print(
        f"\nobservability export: {len(samples)} prometheus samples -> {prom_path.name}, "
        f"{len(traces)} traces / {len(document['traceEvents'])} events -> {trace_path.name}"
    )
    bench_json.record(
        "observability_export",
        prometheus_samples=len(samples),
        traces=len(traces),
        trace_events=len(document["traceEvents"]),
        span_names=sorted(names),
        # The serialized histogram lets the CI threshold gate resolve
        # quantile paths (…latency_histogram.p99_9_ms) offline.
        latency_histogram=stats["model_stats"][servable.name]["histograms"]["latency"],
    )


def test_registry_round_trip_hits_compile_cache(benchmark, bench_json, servable):
    """register -> warm -> re-register must hit the compiled-program cache."""
    registry = ModelRegistry()

    def round_trip():
        registry.register(servable, warm_batch_sizes=(1, 64))
        registry.get(servable.name).warm([1, 64])
        registry.register(servable, warm_batch_sizes=(1, 64))  # re-register
        return registry

    benchmark.pedantic(round_trip, rounds=1, iterations=1)
    stats = registry.cache.stats
    benchmark.extra_info["cache_hits"] = stats.hits
    benchmark.extra_info["cache_misses"] = stats.misses
    print(f"\ncompile cache: {stats.hits} hits / {stats.misses} misses")
    bench_json.record(
        "registry_compile_cache", cache_hits=stats.hits, cache_misses=stats.misses
    )
    assert stats.misses == 2  # one compile per warmed bucket
    assert stats.hits >= 1


# ---------------------------------------------------------------------------
# uint64 packed-bit serving plane
# ---------------------------------------------------------------------------

#: Serving micro-batch shape for the packed-kernel comparison.  The
#: hypervector dimension matches ``bench_primitives`` (paper-scale class
#: memories); toy dims (<~1k) are NumPy-dispatch-bound on both sides and
#: measure overhead, not the kernels.
PACKED_BENCH_DIM = 8192
PACKED_BENCH_CLASSES = 26
PACKED_BENCH_BATCH = 64


def test_packed_hamming_kernel_speedup(benchmark, bench_json):
    """The packed Hamming route must beat the bipolar float path >= 1.5x
    at serving micro-batch shapes, with bit-identical top-1 classes.

    Models exactly what a packed-storage deployment does per micro-batch:
    the class memory is already resident packed (packed once at
    register/swap), so the packed side pays pack(queries) + XOR/popcount
    while the bipolar side runs the batched float kernel on the same
    operands.  Passes are interleaved and each side keeps its minimum, so
    machine-wide noise biases both equally (same discipline as the
    tracing-overhead case).
    """
    from repro.kernels import batched, binary as binkern

    rng = derive_rng(bench_seed(), "bench_serving.packed_kernel")
    queries = np.sign(rng.standard_normal((PACKED_BENCH_BATCH, PACKED_BENCH_DIM))).astype(
        np.float32
    )
    classes = np.sign(rng.standard_normal((PACKED_BENCH_CLASSES, PACKED_BENCH_DIM))).astype(
        np.float32
    )
    packed_classes = binkern.pack_bipolar(classes)

    def bipolar_pass():
        return np.asarray(batched.pairwise_hamming(queries, classes))

    def packed_pass():
        # The per-batch query pack is part of the served cost; the class
        # memory is not — it is packed once per deployment install.
        return np.asarray(
            binkern.hamming_distance_packed(binkern.pack_bipolar(queries), packed_classes)
        )

    bipolar_out, packed_out = bipolar_pass(), packed_pass()
    assert np.array_equal(bipolar_out, packed_out)  # exact integer counts
    assert np.array_equal(np.argmin(bipolar_out, axis=1), np.argmin(packed_out, axis=1))

    repeats, passes = 5, 20
    best_bipolar = best_packed = float("inf")
    for _ in range(repeats):
        for _ in range(passes):
            start = time.perf_counter()
            bipolar_pass()
            best_bipolar = min(best_bipolar, time.perf_counter() - start)
            start = time.perf_counter()
            packed_pass()
            best_packed = min(best_packed, time.perf_counter() - start)

    benchmark.pedantic(packed_pass, rounds=1, iterations=1)

    ratio = best_bipolar / best_packed
    benchmark.extra_info["bipolar_us"] = best_bipolar * 1e6
    benchmark.extra_info["packed_us"] = best_packed * 1e6
    benchmark.extra_info["throughput_ratio"] = ratio
    print(
        f"\npacked hamming kernel: B={PACKED_BENCH_BATCH} K={PACKED_BENCH_CLASSES} "
        f"D={PACKED_BENCH_DIM}, bipolar {best_bipolar * 1e6:.1f}us, "
        f"packed {best_packed * 1e6:.1f}us ({ratio:.2f}x)"
    )
    bench_json.record(
        "packed_kernel",
        batch=PACKED_BENCH_BATCH,
        classes=PACKED_BENCH_CLASSES,
        dim=PACKED_BENCH_DIM,
        bipolar_seconds=best_bipolar,
        packed_seconds=best_packed,
        throughput_ratio=ratio,
        bit_identical_topk=True,
    )
    assert ratio >= 1.5


def test_packed_storage_serving(benchmark, bench_json, servable, requests):
    """A binarized deployment serves from packed class memory: resident
    bytes >= 25x smaller (``ServerStats`` residency document), zero
    per-row fallbacks, predictions bit-identical to the
    binarized-but-unpacked route."""
    import repro.serving.registry as registry_mod
    from repro.transforms import ApproximationConfig

    config = ApproximationConfig(binarize=True)

    # Reference: the same binarized program with packing disabled.
    original = registry_mod.packable_entry_params
    registry_mod.packable_entry_params = lambda program: []
    try:
        unpacked_server = InferenceServer(
            workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002
        )
        unpacked_server.register(servable, name="unpacked", config=config)
        start = time.perf_counter()
        with unpacked_server:
            expected = unpacked_server.infer_many("unpacked", list(requests))
        unpacked_seconds = time.perf_counter() - start
    finally:
        registry_mod.packable_entry_params = original
    expected_labels = [int(np.asarray(r)) for r in expected]

    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable, name="packed", config=config)

    def serve_packed():
        with server:
            return server.infer_many("packed", list(requests))

    start = time.perf_counter()
    results = benchmark.pedantic(serve_packed, rounds=1, iterations=1)
    packed_seconds = time.perf_counter() - start

    packed_labels = [int(np.asarray(r)) for r in results]
    assert packed_labels == expected_labels  # bit-identical predictions

    stats = server.stats().to_dict()
    model = stats["model_stats"]["packed"]
    residency = model["residency"]
    assert residency is not None and residency["packed"]
    shrink = residency["shrink_ratio"]
    relative = unpacked_seconds / packed_seconds
    benchmark.extra_info["resident_bytes"] = residency["class_memory_bytes"]
    benchmark.extra_info["unpacked_bytes"] = residency["class_memory_unpacked_bytes"]
    benchmark.extra_info["shrink_ratio"] = shrink
    benchmark.extra_info["relative_throughput"] = relative
    print(
        f"\npacked storage: {requests.shape[0]} requests, class memory "
        f"{residency['class_memory_unpacked_bytes']} -> {residency['class_memory_bytes']} bytes "
        f"({shrink:.0f}x), throughput {relative:.2f}x vs unpacked-binarized, "
        f"fallbacks {model['fallback_stages']}"
    )
    bench_json.record(
        "packed_storage",
        requests=requests.shape[0],
        resident_bytes=residency["class_memory_bytes"],
        unpacked_bytes=residency["class_memory_unpacked_bytes"],
        shrink_ratio=shrink,
        relative_throughput=relative,
        fallback_stages=model["fallback_stages"],
        failures=stats["failures"],
        bit_identical=True,
    )
    assert shrink >= 25.0
    assert model["fallback_stages"] == 0
    assert stats["failures"] == 0


# ---------------------------------------------------------------------------
# Batch-native execution plane
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def hyperoms_workload():
    """A served HyperOMS search at a typical online-request shape.

    Small-ish spectra (64 m/z bins, ~20% occupancy) keep each row's NumPy
    work modest, which is exactly the regime where the per-row path pays
    its Python-per-row tax: one closure call per spectrum for the encoder
    plus one interpreted traced-function run per query for the search.
    The batched plane replaces both with a handful of whole-batch library
    calls.
    """
    rng = derive_rng(bench_seed(), "bench_serving.hyperoms_workload")
    n_bins, n_library = 64, 64
    app = HyperOMS(dimension=512, n_levels=8, seed=11)
    library = (rng.random((n_library, n_bins)) * (rng.random((n_library, n_bins)) > 0.8)).astype(
        np.float32
    )
    servable = app.as_servable(app.encode_library(library), n_bins=n_bins)
    spectra = (
        rng.random((N_ENCODER_REQUESTS, n_bins)) * (rng.random((N_ENCODER_REQUESTS, n_bins)) > 0.8)
    ).astype(np.float32)
    return servable, spectra


def test_batched_encoder_speedup(benchmark, bench_json, hyperoms_workload):
    """The batched execution plane must serve the HyperOMS workload >= 3x
    faster than the per-row reference path.

    Both servers run identical programs; the only difference is the
    worker's stage strategy — ``CPUBackend(batched=True)`` (the serving
    default) executes the level-ID encoder as per-level GEMMs over the
    whole micro-batch behind the bit-identity gate, while
    ``CPUBackend(batched=False)`` loops one Python iteration per
    spectrum.  Predictions must agree exactly (the gate guarantees it).
    """
    servable, spectra = hyperoms_workload

    def serve_all(server):
        with server:
            results = server.infer_many(servable.name, list(spectra))
            return [int(np.asarray(r)) for r in results]

    rowwise_worker = Worker("cpu-rowwise", "cpu", backend=CPUBackend(batched=False))
    rowwise = InferenceServer(workers=(rowwise_worker,), max_batch_size=64, max_wait_seconds=0.002)
    rowwise.register(servable, warm="full")
    start = time.perf_counter()
    rowwise_labels = serve_all(rowwise)
    rowwise_seconds = time.perf_counter() - start

    batched = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    batched.register(servable, warm="full")

    start = time.perf_counter()
    batched_labels = benchmark.pedantic(lambda: serve_all(batched), rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - start

    assert batched_labels == rowwise_labels  # gate-guaranteed bit identity

    stats = batched.stats().to_dict()
    model = stats["model_stats"][servable.name]
    speedup = rowwise_seconds / batched_seconds
    benchmark.extra_info["rowwise_rps"] = spectra.shape[0] / rowwise_seconds
    benchmark.extra_info["batched_rps"] = spectra.shape[0] / batched_seconds
    benchmark.extra_info["speedup"] = speedup
    print(
        f"\nbatched encoder: {spectra.shape[0]} requests, "
        f"per-row {rowwise_seconds * 1e3:.1f}ms, batched {batched_seconds * 1e3:.1f}ms "
        f"({speedup:.1f}x), vectorized stages {model['vectorized_stages']}, "
        f"fallbacks {model['fallback_stages']}"
    )
    bench_json.record(
        "batched_encoder",
        requests=spectra.shape[0],
        rowwise_rps=spectra.shape[0] / rowwise_seconds,
        batched_rps=spectra.shape[0] / batched_seconds,
        speedup=speedup,
        vectorized_stages=model["vectorized_stages"],
        fallback_stages=model["fallback_stages"],
    )
    assert model["vectorized_stages"] > 0
    assert model["fallback_stages"] == 0
    assert speedup >= 3.0


def test_stock_apps_serve_fully_vectorized(bench_json, scale, isolet):
    """Every stock app adapter must take the batched route on every batch:
    per-deployment ``vectorized_stages`` > 0 and ``fallback_stages`` == 0
    in ``ServerStats.to_dict()`` — a model silently degrading to the
    per-row path is a perf regression CI should catch, not scrollback."""
    from repro.apps import HDClustering, HDHashtable, RelHD
    from repro.datasets.genomics import GenomicsConfig, base_indices, make_genomics_dataset

    rng = derive_rng(bench_seed(), "bench_serving.stock_apps")
    servables = []

    cls_app = HDClassificationInference(dimension=scale.classification_dim, similarity="hamming")
    servables.append((cls_app.as_servable(dataset=isolet), isolet.test_features[:32]))

    clu = HDClustering(dimension=256)
    rp = np.sign(rng.standard_normal((256, 16))).astype(np.float32)
    clusters = np.sign(rng.standard_normal((8, 256))).astype(np.float32)
    servables.append((clu.as_servable(rp, clusters), rng.standard_normal((32, 16)).astype(np.float32)))

    rel = RelHD(dimension=256)
    rel_classes = np.sign(rng.standard_normal((7, 256))).astype(np.float32)
    servables.append(
        (rel.as_servable(rel_classes), np.sign(rng.standard_normal((32, 256))).astype(np.float32))
    )

    oms = HyperOMS(dimension=256)
    library = rng.random((12, 24)).astype(np.float32)
    servables.append(
        (oms.as_servable(oms.encode_library(library), n_bins=24), rng.random((32, 24)).astype(np.float32))
    )

    config = GenomicsConfig(
        genome_length=4000, bucket_size=500, read_length=60, n_reads=32, n_decoys=0, kmer_length=8
    )
    genomics = make_genomics_dataset(config)
    hasht = HDHashtable(dimension=256)
    base_hvs = hasht.make_base_hypervectors()
    table = hasht.encode_reference_buckets(genomics, base_hvs)
    reads = np.stack([base_indices(read) for read in genomics.reads[:32]])
    servables.append(
        (hasht.as_servable(table, read_length=60, kmer_length=8, base_hvs=base_hvs), reads)
    )

    server = InferenceServer(workers=("cpu",), max_batch_size=16, max_wait_seconds=0.002)
    for sv, _ in servables:
        server.register(sv)
    with server:
        for sv, queries in servables:
            server.infer_many(sv.name, list(queries))
        server.drain()
        stats = server.stats().to_dict()

    summary = {}
    for sv, _ in servables:
        model = stats["model_stats"][sv.name]
        summary[sv.name] = {
            "vectorized_stages": model["vectorized_stages"],
            "fallback_stages": model["fallback_stages"],
        }
        print(
            f"\n{sv.name}: vectorized={model['vectorized_stages']} "
            f"fallbacks={model['fallback_stages']} reasons={model['stage_fallback_reasons']}"
        )
    bench_json.record(
        "stock_apps_vectorized",
        aggregate_vectorized=stats["vectorized_stages"],
        aggregate_fallbacks=stats["fallback_stages"],
        per_model=summary,
    )
    for sv, _ in servables:
        model = stats["model_stats"][sv.name]
        assert model["vectorized_stages"] > 0, sv.name
        assert model["fallback_stages"] == 0, (sv.name, model["stage_fallback_reasons"])
    assert stats["fallback_stages"] == 0


# ---------------------------------------------------------------------------
# Replica-group scale-out (PR 9)
# ---------------------------------------------------------------------------


class BridgeLatencyBackend(CPUBackend):
    """Batched host execution plus a fixed per-batch device-bridge stall.

    Models the regime the replica group exists for: a serving worker
    whose batch round trip is dominated by *waiting* on an attached
    accelerator (the taped-out digital ASIC sits behind a ~10 kbps FPGA
    bridge — see :mod:`repro.accelerators.digital_asic`), so the host
    core idles for most of each batch.  The stall is a sleep, not
    compute: on a one-core CI runner, aggregate throughput can then
    genuinely scale with the replica count, exactly as it would against
    N physical devices, without the benchmark pretending that N
    CPU-bound replicas share one core for free.
    """

    def __init__(self, stall_seconds: float):
        super().__init__(batched=True)
        self.stall_seconds = float(stall_seconds)

    def execute(self, compiled, env, report):
        outputs = super().execute(compiled, env, report)
        time.sleep(self.stall_seconds)
        return outputs


def _balanced_clone_names() -> list:
    """Eight model names that rendezvous-spread evenly at 2 and 4 replicas.

    Rendezvous hashing balances in expectation, but with only eight
    models the per-run variance would leak hash luck into the measured
    scaling ratios.  Routes are *nested* (the 2-replica winner is fully
    determined whenever the 4-replica winner is replica 0 or 1), so the
    search picks names by their joint ``(route@2, route@4)`` signature
    against a feasible quota table: 4+4 at two replicas and 2+2+2+2 at
    four.  Deterministic (SHA-256 routing), so every run measures the
    same placement.
    """
    need = {(0, 0): 2, (1, 1): 2, (0, 2): 1, (1, 2): 1, (0, 3): 1, (1, 3): 1}
    names = []
    index = 0
    while sum(need.values()):
        name = f"clone-{index}"
        index += 1
        signature = (route(name, range(2)), route(name, range(4)))
        if need.get(signature, 0):
            need[signature] -= 1
            names.append(name)
    return names


def test_replica_scaling_throughput(benchmark, bench_json):
    """1 -> 2 -> 4 replicas must scale aggregate throughput >=1.6x / >=2.5x,
    with zero drops across a group-wide hot-swap and predictions
    bit-identical to the single-replica run.

    Eight model clones are spread by rendezvous routing; one sequential
    client stream per model drives its routed replica through a
    :class:`~repro.serving.replica.ClientPool`.  Every replica owns one
    bridge-latency worker, so per-replica throughput is capped by device
    wait time — the latency-bound regime where scale-out pays.  Mid-run,
    one group-wide ``update`` hot-swaps a model on every replica; after
    the run a version-pinned read exercises read-your-writes on the
    routed replica.
    """
    n_features, dimension, n_classes = 16, 1024, 8
    n_streams, per_stream, stall = 8, 10, 0.015
    rp = bipolar_random(dimension, n_features, seed=5)
    classes = bipolar_random(n_classes, dimension, seed=9)
    rng = derive_rng(bench_seed(), "replica_scaling")
    stream_queries = rng.standard_normal((per_stream, n_features)).astype(np.float32)
    probes = rng.standard_normal((4, n_features)).astype(np.float32)
    update_samples = rng.standard_normal((8, n_features)).astype(np.float32)
    update_labels = rng.integers(0, n_classes, 8)
    servable = classification_servable("clone", dimension, "hamming", rp, classes)
    names = _balanced_clone_names()

    def run_group(n_replicas: int) -> dict:
        group = ReplicaGroup(
            replicas=n_replicas,
            workers=lambda i: [
                Worker(f"bridge-{i}", "cpu", backend=BridgeLatencyBackend(stall))
            ],
            max_batch_size=8,
            max_wait_seconds=0.002,
        )
        with group:
            for name in names:
                group.register(servable, name=name)
            pool = ClientPool(group)
            try:
                predictions = {name: [] for name in names}

                def stream(name):
                    for k in range(per_stream):
                        predictions[name].append(
                            int(np.asarray(pool.infer(name, stream_queries[k])))
                        )

                threads = [threading.Thread(target=stream, args=(n,)) for n in names]
                start = time.perf_counter()
                for t in threads:
                    t.start()
                time.sleep(0.1)
                version = pool.update(names[0], update_samples, update_labels)
                for t in threads:
                    t.join()
                wall = time.perf_counter() - start
                pinned = [
                    int(np.asarray(pool.infer(names[0], probes[j], min_version=version)))
                    for j in range(probes.shape[0])
                ]
                merged = merge_server_stats(group.stats())
            finally:
                pool.close()
        return {
            "wall": wall,
            "rps": n_streams * per_stream / wall,
            "predictions": predictions,
            "pinned": pinned,
            "version": version,
            "failures": merged["failures"],
            "requests": merged["requests"],
        }

    runs = {}
    runs[1] = run_group(1)
    runs[2] = run_group(2)
    measured = benchmark.pedantic(lambda: run_group(4), rounds=1, iterations=1)
    runs[4] = measured

    scaling_2 = runs[1]["wall"] / runs[2]["wall"]
    scaling_4 = runs[1]["wall"] / runs[4]["wall"]
    # The swapped model's stream flips versions at a timing-dependent
    # request index; every *steady* model must be bit-identical to the
    # single-replica run, and the swapped model's pinned post-swap reads
    # must match across group sizes (read-your-writes determinism).
    steady = lambda run: {k: v for k, v in run["predictions"].items() if k != names[0]}
    for n in (2, 4):
        assert steady(runs[n]) == steady(runs[1])
        assert runs[n]["pinned"] == runs[1]["pinned"]
        assert runs[n]["version"] == runs[1]["version"]
    total_failures = sum(runs[n]["failures"] for n in (1, 2, 4))
    assert total_failures == 0  # zero drops across every hot-swap

    benchmark.extra_info["rps_1"] = runs[1]["rps"]
    benchmark.extra_info["rps_2"] = runs[2]["rps"]
    benchmark.extra_info["rps_4"] = runs[4]["rps"]
    benchmark.extra_info["scaling_2"] = scaling_2
    benchmark.extra_info["scaling_4"] = scaling_4
    print(
        f"\nreplica scaling: {n_streams} streams x {per_stream} requests, "
        f"1r {runs[1]['rps']:.0f} rps, 2r {runs[2]['rps']:.0f} rps "
        f"({scaling_2:.2f}x), 4r {runs[4]['rps']:.0f} rps ({scaling_4:.2f}x)"
    )
    bench_json.record(
        "replica_scaling",
        streams=n_streams,
        requests_per_stream=per_stream,
        rps_1=runs[1]["rps"],
        rps_2=runs[2]["rps"],
        rps_4=runs[4]["rps"],
        scaling_2=scaling_2,
        scaling_4=scaling_4,
        swap_version=runs[4]["version"],
        failures=total_failures,
    )
    assert scaling_2 >= 1.6
    assert scaling_4 >= 2.5


def test_sharded_placement_capacity_win(benchmark, bench_json):
    """Pinned sharding must beat unsharded serving (> 1.0x, up from 0.79x)
    on a class memory too big for one worker's device bank — bit-identically.

    One capacity-limited digital-ASIC worker (``class_mem_rows=128``)
    serving all 256 classes re-streams the class memory on *every* batch
    (``capacity_evictions`` counts them).  Two shard workers, each pinned
    to half the rows, fit their banks: shard placement keeps each
    worker's ``DeviceSession`` resident (``elided_transfers``), the shard
    partials offload encoding to the same cyclic device encoder the
    unsharded inference loop uses (so predictions stay bit-identical),
    and the batched host pass reduces the partial scores.  A mid-load
    group-style hot-swap then retrains the sharded deployment with zero
    drops, and the post-swap predictions still match an unsharded server
    that applied the same update.
    """
    n_features, dimension, n_classes, bank_rows = 16, 4096, 256, 128
    n_requests = 96
    rp = bipolar_random(dimension, n_features, seed=7)
    classes = bipolar_random(n_classes, dimension, seed=11)
    rng = derive_rng(bench_seed(), "sharded_placement")
    queries = rng.standard_normal((n_requests, n_features)).astype(np.float32)
    update_samples = queries[:8]
    update_labels = rng.integers(0, n_classes, 8)
    servable = classification_servable("capacity", dimension, "hamming", rp, classes)

    def asic_workers(count: int) -> list:
        return [
            Worker(
                f"asic-{i}",
                "hdc_asic",
                backend=DigitalASICBackend(
                    params=DigitalASICParameters(class_mem_rows=bank_rows),
                    reuse_session=True,
                ),
            )
            for i in range(count)
        ]

    unsharded = InferenceServer(
        workers=asic_workers(1), max_batch_size=4, max_wait_seconds=0.002
    )
    unsharded.register(servable)
    with unsharded:
        start = time.perf_counter()
        expected_v1 = [
            int(np.asarray(r)) for r in unsharded.infer_many(servable.name, list(queries))
        ]
        unsharded_seconds = time.perf_counter() - start
        unsharded.update(servable.name, update_samples, update_labels)
        expected_v2 = [
            int(np.asarray(r)) for r in unsharded.infer_many(servable.name, list(queries))
        ]
    unsharded_workers = unsharded.stats().to_dict()["worker_stats"]

    sharded = InferenceServer(
        workers=asic_workers(2), max_batch_size=4, max_wait_seconds=0.002
    )
    sharded.register(servable, name="sharded", shards=2)
    with sharded:
        def serve_v1():
            return sharded.infer_many("sharded", list(queries))

        start = time.perf_counter()
        results = benchmark.pedantic(serve_v1, rounds=1, iterations=1)
        sharded_seconds = time.perf_counter() - start
        sharded_v1 = [int(np.asarray(r)) for r in results]

        # Hot-swap under load: retrain the sharded deployment while a
        # full request pass is in flight — nothing may drop.
        in_flight = {}
        swapper = threading.Thread(
            target=lambda: in_flight.setdefault(
                "labels", sharded.infer_many("sharded", list(queries))
            )
        )
        swapper.start()
        time.sleep(0.05)
        swap_version = sharded.update("sharded", update_samples, update_labels)
        swapper.join()
        sharded_v2 = [
            int(np.asarray(r)) for r in sharded.infer_many("sharded", list(queries))
        ]
    stats = sharded.stats()
    sharded_workers = stats.to_dict()["worker_stats"]

    assert sharded_v1 == expected_v1  # pinned sharding is bit-identical
    assert sharded_v2 == expected_v2  # ... and stays so across a hot-swap
    assert len(in_flight["labels"]) == n_requests
    assert stats.failures == 0 and swap_version == 2

    # The mechanism, not just the ratio: the unsharded bank overflows
    # (re-streamed classes every batch), the pinned shards never do.
    baseline_evictions = sum(w["capacity_evictions"] for w in unsharded_workers.values())
    shard_evictions = sum(w["capacity_evictions"] for w in sharded_workers.values())
    shard_elided = sum(w["elided_transfers"] for w in sharded_workers.values())
    assert baseline_evictions > 0
    assert shard_evictions == 0
    assert shard_elided > 0

    unsharded_rps = n_requests / unsharded_seconds
    sharded_rps = n_requests / sharded_seconds
    relative = sharded_rps / unsharded_rps
    benchmark.extra_info["unsharded_rps"] = unsharded_rps
    benchmark.extra_info["sharded_rps"] = sharded_rps
    benchmark.extra_info["relative_throughput"] = relative
    print(
        f"\nsharded placement: {n_requests} requests over {n_classes} classes "
        f"(bank {bank_rows}), unsharded {unsharded_rps:.0f} req/s "
        f"({baseline_evictions} evictions), sharded(2) {sharded_rps:.0f} req/s "
        f"({relative:.2f}x, {shard_elided} elided transfers)"
    )
    bench_json.record(
        "sharded_placement",
        requests=n_requests,
        classes=n_classes,
        bank_rows=bank_rows,
        unsharded_rps=unsharded_rps,
        sharded_rps=sharded_rps,
        relative_throughput=relative,
        baseline_capacity_evictions=baseline_evictions,
        sharded_capacity_evictions=shard_evictions,
        sharded_elided_transfers=shard_elided,
        swap_version=swap_version,
        failures=stats.failures,
    )
    assert relative > 1.0  # the 0.79x regression, fixed by placement
