"""Serving benchmark — dynamic batching vs one-shot single-request inference.

Not a paper figure: this benchmark quantifies the serving runtime added on
top of the reproduction (ROADMAP north star).  It measures, for the ISOLET
classification application on the CPU backend,

* **single-request throughput** — a warm batch-1 ``BoundProgram`` handle
  invoked once per sample (no re-tracing, no re-binding of constants: the
  strongest one-shot baseline the seed flow offers), versus
* **served throughput** — the same samples pushed through an
  :class:`~repro.serving.InferenceServer` that coalesces them into
  micro-batches and runs the batched host kernel path,

and asserts the dynamic-batching speedup the serving subsystem exists to
deliver (>= 3x).  A second benchmark exercises the registry round trip
(register -> warm cache -> re-register) and asserts the compile cache
actually hits.  A third pushes the same request stream through a
**sharded deployment** (class memory split across two workers, partial
scores reduced on the way back) and asserts the scatter/reduce path is
bit-identical to unsharded serving while reporting its throughput cost.
A fourth drives the **socket transport**: one blocking network client is
latency-bound (each request pays a batching wait plus a socket round
trip), while 8 concurrent clients coalesce into shared micro-batches on
the server — the benchmark asserts the >= 2x aggregate-throughput
scaling that the transport front end exists to deliver.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.apps import HDClassificationInference
from repro.backends import compile as hdc_compile
from repro.datasets import make_isolet_like
from repro.serving import InferenceServer, ModelRegistry
from repro.serving.transport import ServingClient, TransportServer

#: Number of single-sample requests pushed through both flows.
N_REQUESTS = 512

#: Socket requests per concurrency level of the transport benchmark.
N_SOCKET_REQUESTS = 192


@pytest.fixture(scope="module")
def isolet(scale):
    return make_isolet_like(scale.isolet())


@pytest.fixture(scope="module")
def servable(scale, isolet):
    app = HDClassificationInference(dimension=scale.classification_dim, similarity="hamming")
    return app.as_servable(dataset=isolet)


@pytest.fixture(scope="module")
def requests(isolet):
    test = isolet.test_features
    reps = -(-N_REQUESTS // test.shape[0])  # ceil
    return np.tile(test, (reps, 1))[:N_REQUESTS]


def test_dynamic_batching_speedup(benchmark, servable, requests):
    """Served throughput must be >= 3x the single-request baseline."""
    # Warm single-request baseline: compiled once, constants bound once.
    baseline_handle = hdc_compile(servable.build_program(1), target="cpu").bind(
        **servable.constants
    )
    query = servable.query_param

    start = time.perf_counter()
    baseline_labels = [
        int(np.asarray(baseline_handle.run(**{query: requests[i : i + 1]}).output)[0])
        for i in range(requests.shape[0])
    ]
    baseline_seconds = time.perf_counter() - start

    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)

    def serve_all():
        with server:
            return server.infer_many(servable.name, list(requests))

    start = time.perf_counter()
    results = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    served_seconds = time.perf_counter() - start

    served_labels = [int(np.asarray(r)) for r in results]
    assert served_labels == baseline_labels

    stats = server.stats()
    speedup = baseline_seconds / served_seconds
    benchmark.extra_info["baseline_rps"] = requests.shape[0] / baseline_seconds
    benchmark.extra_info["served_rps"] = requests.shape[0] / served_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["mean_batch_size"] = stats.mean_batch_size
    benchmark.extra_info["latency_p99_ms"] = stats.latency_p99_ms
    print(
        f"\nserving: {requests.shape[0]} requests, "
        f"baseline {baseline_seconds * 1e3:.1f}ms, served {served_seconds * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x, mean batch {stats.mean_batch_size:.1f}, "
        f"p99 {stats.latency_p99_ms:.2f}ms"
    )
    assert stats.mean_batch_size > 1.0
    assert speedup >= 3.0


def test_sharded_deployment_throughput(benchmark, servable, requests):
    """Sharded serving (N=2) must match unsharded predictions bit-for-bit;
    report the scatter/reduce throughput next to the unsharded path."""
    unsharded = InferenceServer(
        workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002
    )
    unsharded.register(servable)
    start = time.perf_counter()
    with unsharded:
        expected = unsharded.infer_many(servable.name, list(requests))
    unsharded_seconds = time.perf_counter() - start
    expected_labels = [int(np.asarray(r)) for r in expected]

    sharded = InferenceServer(workers=("cpu", "cpu"), max_batch_size=64, max_wait_seconds=0.002)
    sharded.register(servable, name="sharded", shards=2)

    def serve_sharded():
        with sharded:
            return sharded.infer_many("sharded", list(requests))

    start = time.perf_counter()
    results = benchmark.pedantic(serve_sharded, rounds=1, iterations=1)
    sharded_seconds = time.perf_counter() - start

    sharded_labels = [int(np.asarray(r)) for r in results]
    assert sharded_labels == expected_labels  # bit-identical scatter/reduce

    unsharded_rps = requests.shape[0] / unsharded_seconds
    sharded_rps = requests.shape[0] / sharded_seconds
    benchmark.extra_info["unsharded_rps"] = unsharded_rps
    benchmark.extra_info["sharded_rps"] = sharded_rps
    benchmark.extra_info["relative_throughput"] = sharded_rps / unsharded_rps
    print(
        f"\nsharded serving: {requests.shape[0]} requests, "
        f"unsharded {unsharded_rps:.0f} req/s, sharded(2) {sharded_rps:.0f} req/s "
        f"({sharded_rps / unsharded_rps:.2f}x relative)"
    )
    stats = sharded.stats()
    assert stats.failures == 0
    # Scatter pays one extra encode per shard, so allow slack — but the
    # sharded path must stay within the same order of magnitude.
    assert sharded_rps >= 0.2 * unsharded_rps


def test_socket_clients_scale_aggregate_throughput(benchmark, servable, requests):
    """8 concurrent socket clients must deliver >= 2x the aggregate
    throughput of 1 client on CPU ISOLET classification.

    A single blocking client serializes (submit, batching wait, execute,
    socket round trip) per request; concurrent clients keep the
    micro-batcher fed, so the batched kernel path amortizes across
    connections.  That cross-client coalescing is the point of fronting
    the shared RequestBroker with a network transport.
    """
    server = InferenceServer(workers=("cpu",), max_batch_size=64, max_wait_seconds=0.002)
    server.register(servable)
    server.start()
    transport = TransportServer(server)
    host, port = transport.start()
    samples = requests[:N_SOCKET_REQUESTS]

    def run_clients(n_clients: int) -> float:
        """Aggregate seconds for the whole request set split evenly."""
        chunks = np.array_split(np.arange(samples.shape[0]), n_clients)
        errors = []

        def client_loop(indices) -> None:
            try:
                with ServingClient(host, port, timeout=60.0) as client:
                    for i in indices:
                        client.infer(servable.name, samples[i])
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client_loop, args=(c,)) for c in chunks]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        assert not errors, errors
        return elapsed

    try:
        run_clients(1)  # warm every bucket/handle before timing
        single_seconds = run_clients(1)

        def timed_concurrent():
            return run_clients(8)

        concurrent_seconds = benchmark.pedantic(timed_concurrent, rounds=1, iterations=1)
        server.drain()
        stats = server.stats()
    finally:
        transport.stop()
        server.stop()

    single_rps = samples.shape[0] / single_seconds
    concurrent_rps = samples.shape[0] / concurrent_seconds
    scaling = concurrent_rps / single_rps
    benchmark.extra_info["single_client_rps"] = single_rps
    benchmark.extra_info["eight_client_rps"] = concurrent_rps
    benchmark.extra_info["scaling"] = scaling
    benchmark.extra_info["mean_batch_size"] = stats.mean_batch_size
    print(
        f"\nsocket transport: {samples.shape[0]} requests, "
        f"1 client {single_rps:.0f} req/s, 8 clients {concurrent_rps:.0f} req/s "
        f"({scaling:.1f}x), mean batch {stats.mean_batch_size:.1f}"
    )
    assert stats.failures == 0
    assert scaling >= 2.0


def test_registry_round_trip_hits_compile_cache(benchmark, servable):
    """register -> warm -> re-register must hit the compiled-program cache."""
    registry = ModelRegistry()

    def round_trip():
        registry.register(servable, warm_batch_sizes=(1, 64))
        registry.get(servable.name).warm([1, 64])
        registry.register(servable, warm_batch_sizes=(1, 64))  # re-register
        return registry

    benchmark.pedantic(round_trip, rounds=1, iterations=1)
    stats = registry.cache.stats
    benchmark.extra_info["cache_hits"] = stats.hits
    benchmark.extra_info["cache_misses"] = stats.misses
    print(f"\ncompile cache: {stats.hits} hits / {stats.misses} misses")
    assert stats.misses == 2  # one compile per warmed bucket
    assert stats.hits >= 1
