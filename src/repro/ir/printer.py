"""Human-readable textual dump of HPVM-HDC IR.

The printer is used by tests, examples and by developers inspecting what a
transform did to a program.  The format is intentionally close to the way
the paper describes the IR: one line per operation inside leaf nodes,
nested indentation for internal nodes and stage implementation graphs, and
target annotations on every node.
"""

from __future__ import annotations

import io

from repro.hdcpp.program import Operation, Program, TracedFunction
from repro.ir.dataflow import DataflowGraph, InternalNode, LeafNode

__all__ = ["print_program", "print_graph", "format_operation"]


def format_operation(op: Operation) -> str:
    """Render one operation as a single line of IR text."""
    parts = []
    if op.result is not None:
        parts.append(f"%{op.result.name}: {op.result.type} = ")
    parts.append(str(op.opcode))
    operand_text = ", ".join(f"%{v.name}" for v in op.operands)
    parts.append(f"({operand_text})")
    callable_attrs = ("impl_callable", "init_fn", "batch_impl")
    attrs = {
        k: (v.name if hasattr(v, "name") and not isinstance(v, str) else v)
        for k, v in op.attrs.items()
        if k not in callable_attrs
    }
    for hidden in callable_attrs:
        if hidden in op.attrs:
            attrs[hidden] = f"<callable {getattr(op.attrs[hidden], '__name__', 'fn')}>"
    if attrs:
        parts.append(" " + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())))
    return "".join(parts)


def _print_function(fn: TracedFunction, out: io.StringIO, indent: str) -> None:
    params = ", ".join(f"%{p.name}: {p.type}" for p in fn.params)
    results = ", ".join(str(r.type) for r in fn.results) or "void"
    out.write(f"{indent}func @{fn.name}({params}) -> {results} {{\n")
    for op in fn.ops:
        out.write(f"{indent}  {format_operation(op)}\n")
    if fn.results:
        returned = ", ".join(f"%{r.name}" for r in fn.results)
        out.write(f"{indent}  return {returned}\n")
    out.write(f"{indent}}}\n")


def print_program(program: Program) -> str:
    """Render every traced function of a program."""
    out = io.StringIO()
    out.write(f"program @{program.name}\n")
    for fn in program.functions.values():
        marker = "  // entry\n" if fn.name == program.entry_name else ""
        out.write(marker)
        _print_function(fn, out, "  ")
    return out.getvalue()


def _print_graph(graph: DataflowGraph, out: io.StringIO, indent: str) -> None:
    inputs = ", ".join(f"%{v.name}: {v.type}" for v in graph.inputs)
    outputs = ", ".join(f"%{v.name}" for v in graph.outputs)
    out.write(f"{indent}graph @{graph.name}({inputs}) -> ({outputs}) {{\n")
    for node in graph.topological_order():
        targets = ",".join(sorted(t.value for t in node.targets))
        if isinstance(node, LeafNode):
            instances = f" x{node.dynamic_instances}" if node.dynamic_instances > 1 else ""
            out.write(f"{indent}  leaf {node.name}{instances} [{targets}] {{\n")
            for op in node.ops:
                out.write(f"{indent}    {format_operation(op)}\n")
            if node.impl_graph is not None:
                out.write(f"{indent}    // implementation graph (CPU/GPU lowering)\n")
                _print_graph(node.impl_graph, out, indent + "    ")
            out.write(f"{indent}  }}\n")
        elif isinstance(node, InternalNode):
            out.write(
                f"{indent}  internal {node.name} x{node.dynamic_instances} [{targets}] {{\n"
            )
            if node.subgraph is not None:
                _print_graph(node.subgraph, out, indent + "    ")
            out.write(f"{indent}  }}\n")
    for edge in graph.edges:
        out.write(f"{indent}  edge {edge}\n")
    out.write(f"{indent}}}\n")


def print_graph(graph: DataflowGraph) -> str:
    """Render a dataflow graph hierarchy as text."""
    out = io.StringIO()
    _print_graph(graph, out, "")
    return out.getvalue()
