"""The hierarchical dataflow graph of HPVM-HDC IR (Section 4.1).

Programs are represented as a directed acyclic graph whose nodes are either
*leaf nodes* — individual units of computation carrying a sequence of
operations — or *internal nodes* containing an entire sub-graph (used to
express hierarchical parallelism such as Hetero-C++ parallel loops).  Edges
between nodes represent **logical** data transfers: an explicit copy may or
may not be required depending on where the producing and consuming nodes
end up executing.

Each node carries a set of hardware-target annotations; back ends generate
code for the nodes mapped to them (see :mod:`repro.backends`).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.hdcpp.program import Operation, TracedFunction, Value
from repro.hdcpp.types import HDType

__all__ = ["Target", "DFGNode", "LeafNode", "InternalNode", "DFGEdge", "DataflowGraph"]


class Target(str, enum.Enum):
    """Hardware targets supported by the HPVM-HDC back ends."""

    CPU = "cpu"
    GPU = "gpu"
    HDC_ASIC = "hdc_asic"
    HDC_RERAM = "hdc_reram"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_node_ids = itertools.count(1)


@dataclass(eq=False)
class DFGNode:
    """Base class for dataflow-graph nodes."""

    name: str
    targets: set[Target] = field(default_factory=lambda: {Target.CPU, Target.GPU})

    def __post_init__(self) -> None:
        self.id = next(_node_ids)

    @property
    def is_leaf(self) -> bool:
        return isinstance(self, LeafNode)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return f"<{kind} node #{self.id} {self.name!r} targets={sorted(t.value for t in self.targets)}>"


@dataclass(eq=False)
class LeafNode(DFGNode):
    """A leaf node: a unit of computation holding a sequence of operations.

    ``dynamic_instances`` mirrors HPVM's dynamic node instances: a leaf with
    N instances represents N parallel executions of the same code, each
    identified by its instance id (the representation HPVM uses for parallel
    loop iterations, Listing 4 of the paper).

    ``impl_graph`` is populated for coarse-grain *stage* nodes
    (``encoding_loop`` / ``training_loop`` / ``inference_loop``): it holds
    the dataflow sub-graph of the user-provided implementation function,
    which CPU/GPU back ends execute while accelerator back ends ignore it in
    favour of the device's native coarse-grain operations.
    """

    ops: list[Operation] = field(default_factory=list)
    dynamic_instances: int = 1
    impl_graph: Optional["DataflowGraph"] = None

    def opcodes(self) -> list:
        return [op.opcode for op in self.ops]


@dataclass(eq=False)
class InternalNode(DFGNode):
    """An internal node containing a nested dataflow sub-graph.

    ``op`` records the frontend operation that created the internal node
    (e.g. a ``hetero.parallel_map``); back ends use it to bind the node's
    inputs and outputs when executing the nested sub-graph once per dynamic
    instance.
    """

    subgraph: Optional["DataflowGraph"] = None
    dynamic_instances: int = 1
    op: Optional[Operation] = None


@dataclass(frozen=True)
class DFGEdge:
    """A logical data transfer between two nodes (or a graph boundary).

    ``src`` / ``dst`` are node ids; the special id ``0`` denotes the graph
    boundary (graph inputs flow out of node 0, graph outputs flow into it).
    ``value`` is the SSA value carried by the edge.
    """

    src: int
    dst: int
    value: Value

    @property
    def type(self) -> HDType:
        return self.value.type

    def __repr__(self) -> str:
        return f"{self.src} --%{self.value.name}:{self.value.type}--> {self.dst}"


class DataflowGraph:
    """A (possibly nested) HPVM-HDC dataflow graph."""

    BOUNDARY = 0

    def __init__(self, name: str):
        self.name = name
        self.nodes: dict[int, DFGNode] = {}
        self.edges: list[DFGEdge] = []
        self.inputs: list[Value] = []
        self.outputs: list[Value] = []

    # -- construction ------------------------------------------------------------
    def add_node(self, node: DFGNode) -> DFGNode:
        self.nodes[node.id] = node
        return node

    def add_edge(self, src: int, dst: int, value: Value) -> DFGEdge:
        edge = DFGEdge(src, dst, value)
        self.edges.append(edge)
        return edge

    # -- queries -----------------------------------------------------------------
    def node(self, node_id: int) -> DFGNode:
        return self.nodes[node_id]

    def leaf_nodes(self) -> list[LeafNode]:
        return [n for n in self.nodes.values() if isinstance(n, LeafNode)]

    def internal_nodes(self) -> list[InternalNode]:
        return [n for n in self.nodes.values() if isinstance(n, InternalNode)]

    def predecessors(self, node_id: int) -> list[int]:
        return sorted({e.src for e in self.edges if e.dst == node_id and e.src != self.BOUNDARY})

    def successors(self, node_id: int) -> list[int]:
        return sorted({e.dst for e in self.edges if e.src == node_id and e.dst != self.BOUNDARY})

    def in_edges(self, node_id: int) -> list[DFGEdge]:
        return [e for e in self.edges if e.dst == node_id]

    def out_edges(self, node_id: int) -> list[DFGEdge]:
        return [e for e in self.edges if e.src == node_id]

    def topological_order(self) -> list[DFGNode]:
        """Nodes in a topological order of the (acyclic) dataflow edges."""
        indegree = {nid: 0 for nid in self.nodes}
        for edge in self.edges:
            if edge.src != self.BOUNDARY and edge.dst != self.BOUNDARY:
                indegree[edge.dst] += 1
        ready = sorted(nid for nid, deg in indegree.items() if deg == 0)
        order: list[DFGNode] = []
        while ready:
            nid = ready.pop(0)
            order.append(self.nodes[nid])
            for succ in self.successors(nid):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.nodes):
            raise ValueError(f"dataflow graph {self.name!r} contains a cycle")
        return order

    # -- traversal ---------------------------------------------------------------
    def walk_nodes(self, recursive: bool = True) -> Iterator[DFGNode]:
        """Yield every node, optionally descending into nested sub-graphs."""
        for node in self.nodes.values():
            yield node
            if not recursive:
                continue
            if isinstance(node, InternalNode) and node.subgraph is not None:
                yield from node.subgraph.walk_nodes(recursive=True)
            if isinstance(node, LeafNode) and node.impl_graph is not None:
                yield from node.impl_graph.walk_nodes(recursive=True)

    def walk_ops(self, recursive: bool = True) -> Iterator[tuple[DFGNode, Operation]]:
        """Yield ``(node, operation)`` pairs across the whole hierarchy."""
        for node in self.walk_nodes(recursive=recursive):
            if isinstance(node, LeafNode):
                for op in node.ops:
                    yield node, op

    def walk_values(self, recursive: bool = True) -> Iterator[Value]:
        """Yield every SSA value referenced in the graph hierarchy."""
        seen: set[int] = set()
        for value in itertools.chain(self.inputs, self.outputs):
            if value.id not in seen:
                seen.add(value.id)
                yield value
        for _, op in self.walk_ops(recursive=recursive):
            for value in itertools.chain(op.operands, [op.result] if op.result else []):
                if value.id not in seen:
                    seen.add(value.id)
                    yield value

    def annotate_targets(self, targets: Iterable[Target], recursive: bool = True) -> None:
        """Overwrite the target annotation of every node in the hierarchy."""
        targets = set(targets)
        for node in self.walk_nodes(recursive=recursive):
            node.targets = set(targets)

    def __repr__(self) -> str:
        return (
            f"DataflowGraph({self.name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)}, inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )
