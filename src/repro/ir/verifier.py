"""Structural verification of HPVM-HDC IR.

The verifier is run after lowering and after every transform (the pass
pipeline inserts it automatically) to catch malformed IR early:

* the dataflow graph must be acyclic;
* every operand must be produced by a graph input or an earlier operation
  (SSA discipline);
* every operation's recorded result type must match what
  :func:`repro.ir.ops.infer_result_type` derives from its operand types;
* ``red_perf`` directives must annotate values produced by reduction
  primitives;
* stage nodes must carry an implementation function (traced or callable);
* every node must be annotated with at least one hardware target.
"""

from __future__ import annotations

from typing import Iterable

from repro.hdcpp.program import Operation, Program, TracedFunction
from repro.ir.dataflow import DataflowGraph, InternalNode, LeafNode
from repro.ir.ops import OP_INFO, Opcode, infer_result_type

__all__ = ["IRVerificationError", "verify_graph", "verify_program", "verify_function"]

_STAGE_OPS = {Opcode.ENCODING_LOOP, Opcode.TRAINING_LOOP, Opcode.INFERENCE_LOOP}
_REDUCE_OPS = {op for op, info in OP_INFO.items() if info.is_reduce}


class IRVerificationError(ValueError):
    """Raised when HPVM-HDC IR fails structural verification."""


def _verify_ops(ops: Iterable[Operation], defined_ids: set[int], context: str) -> list[str]:
    errors: list[str] = []
    defined = set(defined_ids)
    for op in ops:
        if not isinstance(op.opcode, Opcode):
            errors.append(f"{context}: unknown opcode {op.opcode!r}")
            continue
        for operand in op.operands:
            if operand.id not in defined:
                errors.append(
                    f"{context}: operand %{operand.name} of {op.opcode} used before definition"
                )
        if op.opcode == Opcode.RED_PERF:
            target = op.operands[0]
            producer = target.producer
            if producer is None or producer.opcode not in _REDUCE_OPS:
                errors.append(
                    f"{context}: red_perf annotates %{target.name}, which is not produced by a "
                    "reduction primitive (matmul / cossim / hamming_distance / l2norm)"
                )
        if op.opcode in _STAGE_OPS or op.opcode == Opcode.PARALLEL_MAP:
            if "impl" not in op.attrs and "impl_callable" not in op.attrs:
                errors.append(f"{context}: {op.opcode} has no implementation function")
            batch_impl = op.attrs.get("batch_impl")
            if batch_impl is not None and not callable(batch_impl):
                errors.append(
                    f"{context}: {op.opcode} batch_impl attribute is not callable "
                    f"({batch_impl!r}); the batched route must be a whole-hypermatrix "
                    "callable alongside the per-row implementation"
                )
        if op.result is not None:
            try:
                expected = infer_result_type(op.opcode, op.operand_types(), op.attrs)
            except (TypeError, KeyError) as exc:
                errors.append(f"{context}: {op.opcode} typing error: {exc}")
            else:
                # Element types may legitimately differ from the default
                # inference after automatic binarization rewrites them, so
                # only the shape (and type kind) must agree.
                if expected.shape != op.result.type.shape or type(expected) is not type(op.result.type):
                    errors.append(
                        f"{context}: {op.opcode} result type {op.result.type} does not match "
                        f"inferred type {expected}"
                    )
            defined.add(op.result.id)
    return errors


def verify_function(fn: TracedFunction, context: str = "") -> list[str]:
    """Verify a traced function; returns a list of error strings."""
    context = context or fn.name
    defined = {p.id for p in fn.params}
    errors = _verify_ops(fn.ops, defined, context)
    produced = set(defined) | {op.result.id for op in fn.ops if op.result is not None}
    for result in fn.results:
        if result.id not in produced:
            errors.append(f"{context}: result %{result.name} is not produced by the function")
    return errors


def _verify_graph_structure(graph: DataflowGraph, context: str) -> list[str]:
    errors: list[str] = []
    try:
        graph.topological_order()
    except ValueError as exc:
        errors.append(f"{context}: {exc}")

    produced: set[int] = {v.id for v in graph.inputs}
    defined_nodes = set(graph.nodes)
    for edge in graph.edges:
        if edge.src != DataflowGraph.BOUNDARY and edge.src not in defined_nodes:
            errors.append(f"{context}: edge {edge} references unknown source node {edge.src}")
        if edge.dst != DataflowGraph.BOUNDARY and edge.dst not in defined_nodes:
            errors.append(f"{context}: edge {edge} references unknown destination node {edge.dst}")

    for node in graph.nodes.values():
        if not node.targets:
            errors.append(f"{context}: node {node.name} has no hardware target annotation")
        if isinstance(node, LeafNode):
            visible = set(produced) | _upstream_values(graph, node)
            errors.extend(_verify_ops(node.ops, visible, f"{context}.{node.name}"))
        elif isinstance(node, InternalNode):
            # Zero instances is legal: a parallel loop over an empty batch
            # (one dynamic instance per row, zero rows) executes as a no-op
            # producing the empty result hypermatrix.
            if node.dynamic_instances < 0:
                errors.append(f"{context}: internal node {node.name} has {node.dynamic_instances} instances")
    return errors


def _upstream_values(graph: DataflowGraph, node) -> set[int]:
    """Ids of values that reach ``node`` through dataflow edges."""
    reachable: set[int] = set()
    for edge in graph.in_edges(node.id):
        reachable.add(edge.value.id)
    return reachable


def verify_graph(graph: DataflowGraph, context: str = "") -> None:
    """Verify a dataflow graph hierarchy; raises :class:`IRVerificationError`."""
    context = context or graph.name
    errors = _verify_graph_structure(graph, context)
    for node in graph.nodes.values():
        if isinstance(node, InternalNode) and node.subgraph is not None:
            errors.extend(_verify_graph_structure(node.subgraph, f"{context}/{node.name}"))
        if isinstance(node, LeafNode) and node.impl_graph is not None:
            errors.extend(_verify_graph_structure(node.impl_graph, f"{context}/{node.name}.impl"))
    if errors:
        raise IRVerificationError("\n".join(errors))


def verify_program(program: Program) -> None:
    """Verify every traced function of a program; raises on failure."""
    errors: list[str] = []
    for fn in program.functions.values():
        errors.extend(verify_function(fn))
    if errors:
        raise IRVerificationError("\n".join(errors))
