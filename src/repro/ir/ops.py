"""Opcode vocabulary and type inference for HPVM-HDC IR operations.

Every HDC++ primitive of Table 1 maps to exactly one opcode here; the
frontend records :class:`~repro.hdcpp.program.Operation` instances carrying
these opcodes, and the transforms and back ends consult :data:`OP_INFO` for
structural facts (is the op a reduction?  element-wise?  a coarse-grain
stage?) instead of pattern-matching opcode names ad hoc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hdcpp.types import (
    ElementType,
    HDType,
    HyperMatrixType,
    HyperVectorType,
    IndexType,
    IndexVectorType,
    ScalarType,
    binary,
    float32,
    int64,
)

__all__ = ["Opcode", "OpInfo", "OP_INFO", "infer_result_type", "REDUCE_OPS", "ELEMENTWISE_OPS"]


class Opcode(str, enum.Enum):
    """Opcodes of HPVM-HDC IR (HDC intrinsics + generic parallel constructs)."""

    # Initialization primitives
    EMPTY_HYPERVECTOR = "hdc.hypervector"
    EMPTY_HYPERMATRIX = "hdc.hypermatrix"
    CREATE_HYPERVECTOR = "hdc.create_hypervector"
    CREATE_HYPERMATRIX = "hdc.create_hypermatrix"
    RANDOM_HYPERVECTOR = "hdc.random_hypervector"
    RANDOM_HYPERMATRIX = "hdc.random_hypermatrix"
    GAUSSIAN_HYPERVECTOR = "hdc.gaussian_hypervector"
    GAUSSIAN_HYPERMATRIX = "hdc.gaussian_hypermatrix"
    # Element-wise primitives
    WRAP_SHIFT = "hdc.wrap_shift"
    SIGN = "hdc.sign"
    SIGN_FLIP = "hdc.sign_flip"
    ADD = "hdc.add"
    SUB = "hdc.sub"
    MUL = "hdc.mul"
    DIV = "hdc.div"
    ABSOLUTE_VALUE = "hdc.absolute_value"
    COSINE = "hdc.cosine"
    TYPE_CAST = "hdc.type_cast"
    # Access / shape primitives
    GET_ELEMENT = "hdc.get_element"
    ARG_MIN = "hdc.arg_min"
    ARG_MAX = "hdc.arg_max"
    SET_MATRIX_ROW = "hdc.set_matrix_row"
    GET_MATRIX_ROW = "hdc.get_matrix_row"
    MATRIX_TRANSPOSE = "hdc.matrix_transpose"
    # Reduction / similarity primitives
    L2NORM = "hdc.l2norm"
    COSSIM = "hdc.cossim"
    HAMMING_DISTANCE = "hdc.hamming_distance"
    MATMUL = "hdc.matmul"
    # Approximation directive
    RED_PERF = "hdc.red_perf"
    # High-level algorithmic stage primitives
    ENCODING_LOOP = "hdc.encoding_loop"
    TRAINING_LOOP = "hdc.training_loop"
    INFERENCE_LOOP = "hdc.inference_loop"
    # Hetero-C++ generic parallel constructs
    PARALLEL_MAP = "hetero.parallel_map"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpInfo:
    """Structural metadata describing an opcode.

    Attributes:
        category: One of ``init``, ``elementwise``, ``access``, ``reduce``,
            ``directive``, ``stage``, ``hetero``.
        is_reduce: Reduces along the hypervector dimension (perforatable).
        scale_on_perforation: Whether perforated results must be rescaled by
            the visited fraction (``matmul`` / ``l2norm``) or not
            (``hamming_distance`` / ``cossim``); see Section 4.2.
        elementwise_arity: Number of hypervector/hypermatrix operands that
            participate element-wise (0 when not element-wise).
        binarizable: Whether automatic binarization may rewrite this op to
            operate on 1-bit bipolar elements.
    """

    category: str
    is_reduce: bool = False
    scale_on_perforation: bool = False
    elementwise_arity: int = 0
    binarizable: bool = True
    description: str = ""


OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.EMPTY_HYPERVECTOR: OpInfo("init", description="zero-initialized hypervector"),
    Opcode.EMPTY_HYPERMATRIX: OpInfo("init", description="zero-initialized hypermatrix"),
    Opcode.CREATE_HYPERVECTOR: OpInfo("init", description="hypervector from init function"),
    Opcode.CREATE_HYPERMATRIX: OpInfo("init", description="hypermatrix from init function"),
    Opcode.RANDOM_HYPERVECTOR: OpInfo("init", description="uniform random hypervector"),
    Opcode.RANDOM_HYPERMATRIX: OpInfo("init", description="uniform random hypermatrix"),
    Opcode.GAUSSIAN_HYPERVECTOR: OpInfo("init", description="gaussian random hypervector"),
    Opcode.GAUSSIAN_HYPERMATRIX: OpInfo("init", description="gaussian random hypermatrix"),
    Opcode.WRAP_SHIFT: OpInfo("elementwise", elementwise_arity=1, description="rotate with wrap-around"),
    Opcode.SIGN: OpInfo("elementwise", elementwise_arity=1, description="map elements to +1/-1"),
    Opcode.SIGN_FLIP: OpInfo("elementwise", elementwise_arity=1, description="negate elements"),
    Opcode.ADD: OpInfo("elementwise", elementwise_arity=2),
    Opcode.SUB: OpInfo("elementwise", elementwise_arity=2),
    Opcode.MUL: OpInfo("elementwise", elementwise_arity=2),
    Opcode.DIV: OpInfo("elementwise", elementwise_arity=2, binarizable=False),
    Opcode.ABSOLUTE_VALUE: OpInfo("elementwise", elementwise_arity=1),
    Opcode.COSINE: OpInfo("elementwise", elementwise_arity=1, binarizable=False),
    Opcode.TYPE_CAST: OpInfo("elementwise", elementwise_arity=1),
    Opcode.GET_ELEMENT: OpInfo("access", binarizable=False),
    Opcode.ARG_MIN: OpInfo("access", binarizable=False),
    Opcode.ARG_MAX: OpInfo("access", binarizable=False),
    Opcode.SET_MATRIX_ROW: OpInfo("access"),
    Opcode.GET_MATRIX_ROW: OpInfo("access"),
    Opcode.MATRIX_TRANSPOSE: OpInfo("access"),
    Opcode.L2NORM: OpInfo("reduce", is_reduce=True, scale_on_perforation=True, binarizable=False),
    Opcode.COSSIM: OpInfo("reduce", is_reduce=True, scale_on_perforation=False),
    Opcode.HAMMING_DISTANCE: OpInfo("reduce", is_reduce=True, scale_on_perforation=False),
    Opcode.MATMUL: OpInfo("reduce", is_reduce=True, scale_on_perforation=True),
    Opcode.RED_PERF: OpInfo("directive", binarizable=False, description="reduction perforation directive"),
    Opcode.ENCODING_LOOP: OpInfo("stage", binarizable=False),
    Opcode.TRAINING_LOOP: OpInfo("stage", binarizable=False),
    Opcode.INFERENCE_LOOP: OpInfo("stage", binarizable=False),
    Opcode.PARALLEL_MAP: OpInfo("hetero", binarizable=False),
}

#: Opcodes that reduce along the hypervector dimension (perforation targets).
REDUCE_OPS = frozenset(op for op, info in OP_INFO.items() if info.is_reduce)
#: Opcodes that operate element-wise on hypervectors / hypermatrices.
ELEMENTWISE_OPS = frozenset(op for op, info in OP_INFO.items() if info.category == "elementwise")


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise TypeError(message)


def infer_result_type(
    opcode: Opcode,
    operand_types: Sequence[HDType],
    attrs: Optional[dict] = None,
) -> HDType:
    """Infer the result type of an operation from its operand types.

    This is the single source of truth for operation typing: the tracing
    frontend uses it when building ops and the binarization transform uses
    it to recompute types after rewriting element types.
    """
    attrs = attrs or {}

    if opcode in (
        Opcode.EMPTY_HYPERVECTOR,
        Opcode.CREATE_HYPERVECTOR,
        Opcode.RANDOM_HYPERVECTOR,
        Opcode.GAUSSIAN_HYPERVECTOR,
    ):
        return HyperVectorType(attrs["dim"], attrs.get("element", float32))
    if opcode in (
        Opcode.EMPTY_HYPERMATRIX,
        Opcode.CREATE_HYPERMATRIX,
        Opcode.RANDOM_HYPERMATRIX,
        Opcode.GAUSSIAN_HYPERMATRIX,
    ):
        return HyperMatrixType(attrs["rows"], attrs["cols"], attrs.get("element", float32))

    if opcode in (Opcode.WRAP_SHIFT, Opcode.SIGN_FLIP, Opcode.ABSOLUTE_VALUE):
        return operand_types[0]
    if opcode == Opcode.SIGN:
        # ``sign`` produces bipolar {+1, -1} values but keeps the storage
        # element type; shrinking the storage to 1 bit is the job of the
        # automatic-binarization transform (Section 4.2).
        return operand_types[0]
    if opcode == Opcode.COSINE:
        return operand_types[0].with_element(float32)
    if opcode == Opcode.TYPE_CAST:
        return operand_types[0].with_element(attrs["element"])

    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
        lhs, rhs = operand_types[0], operand_types[1]
        _require(lhs.shape == rhs.shape, f"{opcode}: shape mismatch {lhs} vs {rhs}")
        element = _combine_elements(lhs.element, rhs.element, opcode)
        return lhs.with_element(element)

    if opcode == Opcode.GET_ELEMENT:
        return ScalarType(operand_types[0].element)
    if opcode == Opcode.ARG_MIN or opcode == Opcode.ARG_MAX:
        operand = operand_types[0]
        if isinstance(operand, HyperMatrixType):
            return IndexVectorType(operand.rows)
        return IndexType()
    if opcode == Opcode.SET_MATRIX_ROW:
        mat, row = operand_types[0], operand_types[1]
        _require(isinstance(mat, HyperMatrixType), f"{opcode}: first operand must be a hypermatrix")
        _require(
            isinstance(row, HyperVectorType) and row.dim == mat.cols,
            f"{opcode}: row length {row} does not match {mat}",
        )
        return mat
    if opcode == Opcode.GET_MATRIX_ROW:
        mat = operand_types[0]
        _require(isinstance(mat, HyperMatrixType), f"{opcode}: operand must be a hypermatrix")
        return mat.row_type
    if opcode == Opcode.MATRIX_TRANSPOSE:
        mat = operand_types[0]
        _require(isinstance(mat, HyperMatrixType), f"{opcode}: operand must be a hypermatrix")
        return HyperMatrixType(mat.cols, mat.rows, mat.element)

    if opcode == Opcode.L2NORM:
        operand = operand_types[0]
        if isinstance(operand, HyperMatrixType):
            return HyperVectorType(operand.rows, float32)
        return ScalarType(float32)

    if opcode in (Opcode.COSSIM, Opcode.HAMMING_DISTANCE):
        lhs, rhs = operand_types[0], operand_types[1]
        lhs_dim = lhs.cols if isinstance(lhs, HyperMatrixType) else lhs.dim
        rhs_dim = rhs.cols if isinstance(rhs, HyperMatrixType) else rhs.dim
        _require(lhs_dim == rhs_dim, f"{opcode}: hypervector length mismatch {lhs} vs {rhs}")
        if isinstance(lhs, HyperMatrixType) and isinstance(rhs, HyperMatrixType):
            return HyperMatrixType(lhs.rows, rhs.rows, float32)
        if isinstance(lhs, HyperVectorType) and isinstance(rhs, HyperMatrixType):
            return HyperVectorType(rhs.rows, float32)
        if isinstance(lhs, HyperMatrixType) and isinstance(rhs, HyperVectorType):
            return HyperVectorType(lhs.rows, float32)
        return ScalarType(float32)

    if opcode == Opcode.MATMUL:
        lhs, rhs = operand_types[0], operand_types[1]
        _require(isinstance(rhs, HyperMatrixType), f"{opcode}: rhs must be a hypermatrix")
        lhs_dim = lhs.cols if isinstance(lhs, HyperMatrixType) else lhs.dim
        _require(lhs_dim == rhs.cols, f"{opcode}: contraction mismatch {lhs} vs {rhs}")
        if isinstance(lhs, HyperMatrixType):
            return HyperMatrixType(lhs.rows, rhs.rows, float32)
        return HyperVectorType(rhs.rows, float32)

    if opcode == Opcode.RED_PERF:
        return operand_types[0]

    if opcode == Opcode.ENCODING_LOOP:
        queries, encoder = operand_types[0], operand_types[1]
        _require(isinstance(queries, HyperMatrixType), "encoding_loop: queries must be a hypermatrix")
        dim = attrs.get("encoded_dim")
        if dim is None:
            dim = encoder.rows if isinstance(encoder, HyperMatrixType) else queries.cols
        return HyperMatrixType(queries.rows, dim, attrs.get("element", float32))
    if opcode == Opcode.INFERENCE_LOOP:
        queries = operand_types[0]
        _require(isinstance(queries, HyperMatrixType), "inference_loop: queries must be a hypermatrix")
        return IndexVectorType(queries.rows)
    if opcode == Opcode.TRAINING_LOOP:
        classes = operand_types[2]
        _require(isinstance(classes, HyperMatrixType), "training_loop: classes must be a hypermatrix")
        return classes

    if opcode == Opcode.PARALLEL_MAP:
        inputs = operand_types[0]
        _require(isinstance(inputs, HyperMatrixType), "parallel_map: input must be a hypermatrix")
        out_dim = attrs.get("output_dim", inputs.cols)
        return HyperMatrixType(inputs.rows, out_dim, attrs.get("element", inputs.element))

    raise KeyError(f"no type inference rule for opcode {opcode}")


def _combine_elements(lhs: ElementType, rhs: ElementType, opcode: Opcode) -> ElementType:
    """Element type of a binary element-wise op result."""
    if opcode == Opcode.DIV:
        return float32 if lhs.bits <= 32 and rhs.bits <= 32 else lhs
    if lhs.is_binary and rhs.is_binary:
        return binary
    if lhs.is_float and rhs.is_float:
        return lhs if lhs.bits >= rhs.bits else rhs
    if lhs.is_float:
        return lhs
    if rhs.is_float:
        return rhs
    if lhs.is_binary:
        return rhs
    if rhs.is_binary:
        return lhs
    return lhs if lhs.bits >= rhs.bits else rhs
