"""HPVM-HDC intermediate representation.

The IR mirrors Section 4.1 of the paper: programs are hierarchical dataflow
graphs whose leaf nodes carry sequences of operations (HDC intrinsics plus
generic compute) and whose internal nodes capture hierarchical parallelism.
Edges between nodes represent *logical* data transfers; each node carries a
set of hardware-target annotations that back ends use to decide where code
is generated.
"""

from repro.ir.dataflow import DataflowGraph, DFGEdge, InternalNode, LeafNode, Target
from repro.ir.ops import OP_INFO, Opcode, infer_result_type
from repro.ir.builder import lower_program
from repro.ir.printer import print_graph, print_program
from repro.ir.verifier import IRVerificationError, verify_graph, verify_program

__all__ = [
    "Opcode",
    "OP_INFO",
    "infer_result_type",
    "DataflowGraph",
    "LeafNode",
    "InternalNode",
    "DFGEdge",
    "Target",
    "lower_program",
    "print_graph",
    "print_program",
    "verify_graph",
    "verify_program",
    "IRVerificationError",
]
