"""Lowering HDC++ programs to HPVM-HDC IR dataflow graphs.

The frontend produces a :class:`~repro.hdcpp.program.Program` of traced
functions.  :func:`lower_program` turns the entry function into a
hierarchical :class:`~repro.ir.dataflow.DataflowGraph`:

* each granular HDC operation becomes its own leaf node (the analogue of
  lowering a primitive into an HPVM IR sub-graph, Listing 4 of the paper);
* a ``hetero.parallel_map`` becomes an *internal* node whose child graph is
  the lowered implementation function and whose dynamic instance count is
  the number of mapped rows;
* the three stage primitives become coarse-grain leaf nodes annotated as
  executable on the HDC accelerators; the lowered implementation function
  is attached as ``impl_graph`` for CPU/GPU execution.

:func:`clone_program` provides the deep copy used before applying
destructive transforms, so that one traced application can be compiled many
times under different approximation configurations (as in Figure 7).
"""

from __future__ import annotations

from typing import Optional

from repro.hdcpp.program import Operation, Program, TracedFunction, Value
from repro.hdcpp.types import HyperMatrixType
from repro.ir.dataflow import DataflowGraph, InternalNode, LeafNode, Target
from repro.ir.ops import OP_INFO, Opcode

__all__ = ["lower_program", "lower_function", "clone_program", "clone_function"]

#: Targets assigned to ordinary (granular) nodes.
_DEFAULT_TARGETS = {Target.CPU, Target.GPU}
#: Targets assigned to coarse-grain stage nodes, which accelerators support.
_STAGE_TARGETS = {Target.CPU, Target.GPU, Target.HDC_ASIC, Target.HDC_RERAM}

_STAGE_OPS = {Opcode.ENCODING_LOOP, Opcode.TRAINING_LOOP, Opcode.INFERENCE_LOOP}


def clone_function(fn: TracedFunction, value_map: Optional[dict[int, Value]] = None) -> TracedFunction:
    """Deep-copy a traced function, producing fresh values and operations."""
    value_map = {} if value_map is None else value_map

    def remap(value: Value) -> Value:
        if value.id not in value_map:
            value_map[value.id] = Value(value.type, name=value.name)
        return value_map[value.id]

    params = [remap(p) for p in fn.params]
    ops: list[Operation] = []
    for op in fn.ops:
        new_op = Operation(op.opcode, [remap(v) for v in op.operands], dict(op.attrs))
        if op.result is not None:
            new_result = remap(op.result)
            new_result.producer = new_op
            new_op.result = new_result
        ops.append(new_op)
    results = [remap(r) for r in fn.results]
    return TracedFunction(fn.name, params, ops, results, fn.docstring)


def clone_program(program: Program) -> Program:
    """Deep-copy a program (functions, operations and values)."""
    out = Program(program.name)
    for name, fn in program.functions.items():
        out.functions[name] = clone_function(fn)
    out.entry_name = program.entry_name
    return out


def _dynamic_instances(op: Operation) -> int:
    """Number of dynamic instances for a parallel-map internal node."""
    input_type = op.operands[0].type
    if isinstance(input_type, HyperMatrixType):
        return input_type.rows
    return 1


def lower_function(fn: TracedFunction, program: Program, name: Optional[str] = None) -> DataflowGraph:
    """Lower one traced function into a dataflow graph."""
    graph = DataflowGraph(name or fn.name)
    graph.inputs = list(fn.params)
    graph.outputs = list(fn.results)

    producer_node: dict[int, int] = {}
    for param in fn.params:
        producer_node[param.id] = DataflowGraph.BOUNDARY

    for index, op in enumerate(fn.ops):
        node = _lower_operation(op, index, program)
        graph.add_node(node)
        for operand in op.operands:
            src = producer_node.get(operand.id)
            if src is None:
                raise ValueError(
                    f"{fn.name}: operand %{operand.name} of {op.opcode} has no producer; "
                    "the traced function is not in SSA form"
                )
            graph.add_edge(src, node.id, operand)
        if op.result is not None:
            producer_node[op.result.id] = node.id

    for result in fn.results:
        src = producer_node.get(result.id)
        if src is None:
            raise ValueError(f"{fn.name}: result %{result.name} has no producer")
        graph.add_edge(src, DataflowGraph.BOUNDARY, result)

    return graph


def _lower_operation(op: Operation, index: int, program: Program):
    """Create the dataflow node corresponding to one traced operation."""
    label = f"{op.opcode.value}_{index}" if isinstance(op.opcode, Opcode) else f"op_{index}"

    if op.opcode == Opcode.PARALLEL_MAP:
        subgraph = None
        impl_name = op.attrs.get("impl")
        if impl_name is not None:
            subgraph = lower_function(program.function(impl_name), program, name=f"{label}.body")
        return InternalNode(
            name=label,
            targets=set(_DEFAULT_TARGETS),
            subgraph=subgraph,
            dynamic_instances=_dynamic_instances(op),
            op=op,
        )

    if op.opcode in _STAGE_OPS:
        impl_graph = None
        impl_name = op.attrs.get("impl")
        if impl_name is not None:
            impl_graph = lower_function(program.function(impl_name), program, name=f"{label}.impl")
        return LeafNode(
            name=label,
            targets=set(_STAGE_TARGETS),
            ops=[op],
            impl_graph=impl_graph,
        )

    info = OP_INFO.get(op.opcode)
    instances = 1
    if info is not None and info.is_reduce and op.result is not None:
        # Reduce primitives lower to one dynamic instance per output row —
        # the parallel outer loop of Listing 4.
        result_type = op.result.type
        if isinstance(result_type, HyperMatrixType):
            instances = result_type.rows
        elif hasattr(result_type, "dim"):
            instances = getattr(result_type, "dim")
    return LeafNode(name=label, targets=set(_DEFAULT_TARGETS), ops=[op], dynamic_instances=instances)


def lower_program(program: Program) -> DataflowGraph:
    """Lower a program's entry function (and referenced implementation
    functions) into a hierarchical HPVM-HDC dataflow graph."""
    entry = program.entry_function
    return lower_function(entry, program, name=f"{program.name}::{entry.name}")
