"""Numeric kernel libraries shared by the DSL eager mode and the back ends.

Three kernel flavours are provided:

* :mod:`repro.kernels.reference` — straightforward row-at-a-time NumPy
  kernels.  These define the *semantics* of every HDC primitive and are
  what the CPU back end and the DSL's eager mode execute.
* :mod:`repro.kernels.batched` — "library routine" kernels that operate on
  whole hypermatrices at once.  They stand in for the cuBLAS / Thrust /
  hand-written CUDA kernels the paper's GPU back end lowers to.
* :mod:`repro.kernels.binary` — packed-bit kernels (XOR + popcount) used
  after automatic binarization to exploit 1-bit bipolar representations.
"""

from repro.kernels import batched, binary, reference

__all__ = ["reference", "batched", "binary"]
