"""Packed-bit kernels for binarized (1-bit bipolar) hypervectors.

Automatic binarization (Section 4.2 of the paper) rewrites tainted
hypervectors and hypermatrices to a 1-bit element type; "the lowering of HDC
primitives are handled using bitvector logical operations".  This module
provides those bitvector kernels:

* bipolar {+1, -1} vectors are packed into ``uint64`` words with
  :func:`pack_bipolar` (bit = 1 encodes +1; padding bits beyond the
  logical dimension are zero);
* Hamming distance becomes XOR + word popcount over the packed words,
  computed blockwise over the candidate axis so the XOR intermediate
  stays cache-resident;
* the bipolar dot product (used by cosine similarity over binarized
  vectors) is derived from the Hamming distance via
  ``dot = D - 2 * hamming``.

The word layout is **view-compatible with the historical ``uint8``
layout**: ``np.packbits`` (big-endian bit order) produces the byte
stream, which is zero-padded to an 8-byte multiple and viewed as native
``uint64`` words.  ``PackedBits.payload_bytes()`` recovers exactly the
``ceil(D / 8)`` bytes the old kernels produced (and anything serialized
with them), so packed state round-trips across the representation
change.

Popcount uses :func:`numpy.bitwise_count` when available (NumPy >= 2.0)
and otherwise a 256-entry table lookup over the byte view — the choice
is made **once at import** and published as the module-global
:func:`popcount_words`, which the distance kernels call through the
module attribute so tests can monkeypatch the fallback path onto a
modern NumPy.

These kernels give a genuine throughput and memory-footprint advantage
over the 32-bit float kernels (~32x smaller resident class memories,
word-parallel similarity search), which is what produces the speedups of
the binarized configurations in Figure 7.
"""

from __future__ import annotations

import threading
import weakref
from typing import Optional

import numpy as np

from repro.kernels.reference import reduction_slice

__all__ = [
    "PackedBits",
    "pack_bipolar",
    "pack_bipolar_cached",
    "unpack_bipolar",
    "hamming_distance_packed",
    "hamming_distance_bipolar",
    "dot_bipolar",
    "cossim_bipolar",
    "packed_num_bytes",
    "packed_num_words",
    "popcount_words",
]

#: Bits per packed word.
WORD_BITS = 64

# 256-entry popcount lookup table for the uint8 fallback path.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)


def _popcount_words_table(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via the byte-view table lookup (NumPy < 2.0)."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return _POPCOUNT[as_bytes].reshape(words.shape + (8,)).sum(axis=-1, dtype=np.int64)


def _popcount_words_native(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via the vectorized CPU instruction (NumPy >= 2.0)."""
    return np.bitwise_count(words)


#: Selected once at import; kernels call it through the module attribute
#: (``binary.popcount_words``) so a monkeypatch reaches every call site.
popcount_words = (
    _popcount_words_native if hasattr(np, "bitwise_count") else _popcount_words_table
)


class PackedBits(np.ndarray):
    """A bit-packed bipolar array: ``uint64`` words along the last axis.

    ``shape[:-1]`` are the logical leading axes; the last axis holds
    ``packed_num_words(dim)`` words covering ``dim`` logical bits (bit =
    1 encodes +1).  Padding bits beyond ``dim`` are always zero —
    :func:`pack_bipolar` constructs them that way and every kernel
    preserves the invariant, which is what makes XOR+popcount Hamming
    exact without masking.

    The class is a thin ``ndarray`` subclass; downstream code that must
    not accidentally strip it through ``np.asarray`` checks the
    ``__packed_bits__`` duck-type marker instead of ``isinstance``.
    """

    __packed_bits__ = True

    def __new__(cls, words: np.ndarray, dim: int) -> "PackedBits":
        obj = np.ascontiguousarray(words, dtype=np.uint64).view(cls)
        obj.dim = int(dim)
        return obj

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self.dim = getattr(obj, "dim", 0)

    @property
    def logical_shape(self) -> tuple:
        """The shape of the unpacked bipolar array this encodes."""
        return self.shape[:-1] + (self.dim,)

    @property
    def resident_bytes(self) -> int:
        """Bytes this packed array keeps resident (word storage)."""
        return int(self.nbytes)

    def payload_bytes(self) -> np.ndarray:
        """The legacy ``uint8`` layout: ``ceil(dim / 8)`` bytes per row.

        Byte-for-byte identical to what the historical ``uint8`` kernels
        produced (``np.packbits`` big-endian order), so this is the
        on-disk/wire representation.
        """
        as_bytes = np.ascontiguousarray(np.asarray(self)).view(np.uint8)
        return as_bytes[..., : packed_num_bytes(self.dim)]


def is_packed(x) -> bool:
    """True when ``x`` carries the packed-bits duck-type marker."""
    return getattr(x, "__packed_bits__", False)


def packed_num_bytes(dim: int) -> int:
    """Bytes of packed payload for one hypervector of dimension ``dim``
    (the historical ``uint8`` on-disk layout)."""
    return (dim + 7) // 8


def packed_num_words(dim: int) -> int:
    """``uint64`` words holding one packed hypervector of dimension ``dim``."""
    return (dim + WORD_BITS - 1) // WORD_BITS


def pack_bipolar(x: np.ndarray) -> PackedBits:
    """Pack a bipolar {+1, -1} array into ``uint64`` words (last axis).

    +1 is encoded as bit value 1 and -1 as bit value 0; padding bits
    beyond ``D`` are zero.  Packed input is returned unchanged, so the
    function is idempotent.
    """
    if is_packed(x):
        return x
    arr = np.asarray(x)
    dim = arr.shape[-1]
    bits = (arr > 0).astype(np.uint8)
    payload = np.packbits(bits, axis=-1)  # big-endian bits, zero tail
    pad = packed_num_words(dim) * 8 - payload.shape[-1]
    if pad:
        payload = np.concatenate(
            [payload, np.zeros(payload.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    words = np.ascontiguousarray(payload).view(np.uint64)
    return PackedBits(words, dim)


def unpack_bipolar(packed: np.ndarray, dim: Optional[int] = None) -> np.ndarray:
    """Invert :func:`pack_bipolar`, producing an ``int8`` bipolar array.

    Accepts :class:`PackedBits` (``dim`` optional — defaults to the
    carried logical dimension), raw ``uint64`` word arrays, and the
    legacy ``uint8`` byte layout.
    """
    if is_packed(packed):
        if dim is None:
            dim = packed.dim
        payload = np.ascontiguousarray(np.asarray(packed)).view(np.uint8)
    else:
        arr = np.asarray(packed)
        payload = (
            np.ascontiguousarray(arr).view(np.uint8) if arr.dtype == np.uint64 else arr
        )
        if dim is None:
            dim = payload.shape[-1] * 8
    bits = np.unpackbits(payload, axis=-1)[..., :dim]
    return (bits.astype(np.int8) * 2 - 1).astype(np.int8)


# -- packed-constant cache ------------------------------------------------------------
#
# Serving binds one class-memory constant per compiled program and then
# calls the similarity kernel once per micro-batch; re-packing that
# constant on every call wastes more time than the XOR+popcount itself.
# The cache is keyed by object identity with a weak reference guarding
# against id() reuse, so it never keeps an array alive and never returns
# a stale pack for a recycled address.  Entries are only ever *added*
# for arrays the caller re-presents (bound-program constants have stable
# identity for the life of the handle).

_PACK_CACHE_CAPACITY = 128
_pack_cache: dict = {}
_pack_cache_lock = threading.Lock()


def pack_bipolar_cached(x: np.ndarray) -> PackedBits:
    """:func:`pack_bipolar` memoized on the source array's identity.

    Intended for per-compiled-program constants (class memories): the
    first call packs, subsequent calls with the *same array object*
    return the cached words.  Arrays that die are evicted lazily via the
    weak reference; an id() recycled onto a different array misses.
    """
    if is_packed(x):
        return x
    arr = np.asarray(x)
    key = id(arr)
    with _pack_cache_lock:
        entry = _pack_cache.get(key)
        if entry is not None:
            ref_, packed = entry
            if ref_() is arr:
                return packed
            del _pack_cache[key]
    packed = pack_bipolar(arr)
    try:
        ref_ = weakref.ref(arr)
    except TypeError:  # pragma: no cover - ndarrays are weakref-able
        return packed
    with _pack_cache_lock:
        if len(_pack_cache) >= _PACK_CACHE_CAPACITY:
            dead = [k for k, (r, _) in _pack_cache.items() if r() is None]
            for k in dead:
                del _pack_cache[k]
            while len(_pack_cache) >= _PACK_CACHE_CAPACITY:
                _pack_cache.pop(next(iter(_pack_cache)))
        _pack_cache[key] = (ref_, packed)
    return packed


# -- distance kernels -----------------------------------------------------------------

#: Byte budget for one XOR block — sized so the (B, block, W) intermediate
#: stays L2-resident instead of materializing the full (B, K, W) tensor.
_BLOCK_BYTES = 1 << 20


def _as_word_matrix(x) -> tuple[np.ndarray, int]:
    """Coerce a packed operand to a 2-D ``uint64`` word matrix + bit count."""
    if is_packed(x):
        words = np.asarray(x)
        dim = x.dim
    else:
        words = np.asarray(x)
        if words.dtype == np.uint8:  # legacy byte layout
            pad = -words.shape[-1] % 8
            if pad:
                words = np.concatenate(
                    [words, np.zeros(words.shape[:-1] + (pad,), dtype=np.uint8)],
                    axis=-1,
                )
            dim = None
            words = np.ascontiguousarray(words).view(np.uint64)
        elif words.dtype == np.uint64:
            dim = None
        else:
            raise TypeError(
                f"packed operand must be PackedBits, uint64 words or uint8 bytes, "
                f"got dtype {words.dtype}"
            )
        if dim is None:
            dim = words.shape[-1] * WORD_BITS
    return np.atleast_2d(words), dim


def hamming_distance_packed(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Hamming distance between packed bit arrays, blockwise over ``K``.

    ``lhs`` has shape ``(..., W)`` and ``rhs`` ``(K, W)`` where ``W`` is
    the packed word count; the result has shape ``(B, K)`` ``float32``.
    The candidate axis is processed in blocks sized to keep each XOR
    intermediate under ~1 MiB, so the kernel never materializes a full
    ``(B, K, W)`` tensor.
    """
    lhs_w, _ = _as_word_matrix(lhs)
    rhs_w, _ = _as_word_matrix(rhs)
    n_queries, n_words = lhs_w.shape
    n_candidates = rhs_w.shape[0]
    out = np.empty((n_queries, n_candidates), dtype=np.float32)
    if n_queries == 0 or n_candidates == 0 or n_words == 0:
        if n_words == 0:
            out[...] = 0.0
        return out
    # Word-axis reduction as a float32 GEMV: summing the per-word
    # popcounts against a ones vector is several times faster than an
    # integer axis-sum at serving shapes, and exact as long as a row's
    # total popcount (<= dim) fits float32's integer range.
    reduce_f32 = n_words * WORD_BITS < (1 << 24)
    ones = np.ones(n_words, dtype=np.float32) if reduce_f32 else None
    block = max(1, _BLOCK_BYTES // (n_queries * n_words * 8))
    for start in range(0, n_candidates, block):
        chunk = rhs_w[start : start + block]
        xored = np.bitwise_xor(lhs_w[:, None, :], chunk[None, :, :])
        counts = popcount_words(xored)
        if reduce_f32:
            out[:, start : start + block] = counts.astype(np.float32) @ ones
        else:
            out[:, start : start + block] = counts.sum(axis=-1, dtype=np.int64)
    return out


def _logical_dim(x) -> int:
    return x.dim if is_packed(x) else np.asarray(x).shape[-1]


def _prepare_2d(x) -> tuple[np.ndarray, bool]:
    """Lift an operand (bipolar or packed) to 2-D; report if it was 1-D."""
    if is_packed(x):
        if x.ndim == 1:
            return x.reshape((1,) + x.shape), True
        return x, False
    arr = np.asarray(x)
    return np.atleast_2d(arr), arr.ndim == 1


def _packed_operand(x, sl: slice, dim: int, cache: bool) -> PackedBits:
    """Pack one (possibly pre-packed) operand under a perforation slice.

    The slice is applied to the *logical* bits before packing, matching
    the loop-perforated scalar kernel; an identity slice keeps a
    pre-packed operand as-is (zero copies) and routes unpacked constants
    through the identity cache when requested.
    """
    identity = sl.indices(dim) == (0, dim, 1)
    if is_packed(x):
        if identity:
            return x
        return pack_bipolar(unpack_bipolar(x, dim)[:, sl])
    arr = np.asarray(x)
    if identity:
        return pack_bipolar_cached(arr) if cache else pack_bipolar(arr)
    return pack_bipolar(arr[:, sl])


def hamming_distance_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Hamming distance between bipolar arrays via word-parallel packing.

    Handles the same shape combinations as the reference kernel and the
    same (un-rescaled) perforation semantics; the perforation slice is
    applied *before* packing, matching the loop-perforated scalar
    kernel.  Either operand may already be a :class:`PackedBits` (packed
    class memory, packed query batch) — pre-packed operands skip the
    per-call pack entirely, and an unpacked ``rhs`` (the class-memory
    position) is packed once per array identity via
    :func:`pack_bipolar_cached`.
    """
    lhs2, squeeze_lhs = _prepare_2d(lhs)
    rhs2, squeeze_rhs = _prepare_2d(rhs)
    dim = _logical_dim(lhs2)
    sl = reduction_slice(dim, begin, end, stride)
    out = hamming_distance_packed(
        _packed_operand(lhs2, sl, dim, cache=False),
        # A 1-D rhs gets a fresh 2-D view per call, so only stable 2-D
        # objects (bound class-memory constants) are worth caching.
        _packed_operand(rhs2, sl, dim, cache=not squeeze_rhs),
    )
    if squeeze_lhs and squeeze_rhs:
        return out[0, 0]
    if squeeze_lhs:
        return out[0]
    if squeeze_rhs:
        return out[:, 0]
    return out


def dot_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Dot product between bipolar arrays computed from packed Hamming.

    For bipolar vectors of effective length ``D``:
    ``dot(a, b) = D - 2 * hamming(a, b)``.
    """
    dim = _logical_dim(_prepare_2d(lhs)[0])
    sl = reduction_slice(dim, begin, end, stride)
    visited = len(range(*sl.indices(dim)))
    ham = hamming_distance_bipolar(lhs, rhs, begin, end, stride)
    return (visited - 2.0 * ham).astype(np.float32)


def cossim_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Cosine similarity between bipolar arrays.

    Both operands have constant L2 norm ``sqrt(D)`` over the visited range,
    so the cosine similarity is simply ``dot / D_visited``.
    """
    dim = _logical_dim(_prepare_2d(lhs)[0])
    sl = reduction_slice(dim, begin, end, stride)
    visited = len(range(*sl.indices(dim)))
    return (dot_bipolar(lhs, rhs, begin, end, stride) / float(visited)).astype(
        np.float32
    )
