"""Packed-bit kernels for binarized (1-bit bipolar) hypervectors.

Automatic binarization (Section 4.2 of the paper) rewrites tainted
hypervectors and hypermatrices to a 1-bit element type; "the lowering of HDC
primitives are handled using bitvector logical operations".  This module
provides those bitvector kernels:

* bipolar {+1, -1} vectors are packed into ``uint8`` words with
  :func:`pack_bipolar` (bit = 1 encodes +1);
* Hamming distance becomes XOR + popcount over the packed words;
* the bipolar dot product (used by cosine similarity over binarized
  vectors) is derived from the Hamming distance via
  ``dot = D - 2 * hamming``.

These kernels give a genuine throughput and memory-footprint advantage over
the 32-bit float kernels, which is what produces the speedups of the
binarized configurations in Figure 7.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.reference import reduction_slice

__all__ = [
    "pack_bipolar",
    "unpack_bipolar",
    "hamming_distance_packed",
    "hamming_distance_bipolar",
    "dot_bipolar",
    "cossim_bipolar",
    "packed_num_bytes",
]

# Popcount lookup table for uint8 words.
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint16)


def pack_bipolar(x: np.ndarray) -> np.ndarray:
    """Pack a bipolar {+1, -1} array into bits along the last axis.

    +1 is encoded as bit value 1 and -1 as bit value 0.  The returned array
    has dtype ``uint8`` and its last dimension is ``ceil(D / 8)``.
    """
    bits = (np.asarray(x) > 0).astype(np.uint8)
    return np.packbits(bits, axis=-1)


def unpack_bipolar(packed: np.ndarray, dim: int) -> np.ndarray:
    """Invert :func:`pack_bipolar`, producing an ``int8`` bipolar array."""
    bits = np.unpackbits(packed, axis=-1)[..., :dim]
    return (bits.astype(np.int8) * 2 - 1).astype(np.int8)


def packed_num_bytes(dim: int) -> int:
    """Number of bytes used by one packed hypervector of dimension ``dim``."""
    return (dim + 7) // 8


def hamming_distance_packed(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Hamming distance between packed bit arrays.

    ``lhs`` has shape ``(..., W)`` and ``rhs`` ``(K, W)`` where ``W`` is the
    packed word count; the result has shape ``(..., K)``.
    """
    lhs = np.atleast_2d(lhs)
    rhs = np.atleast_2d(rhs)
    # XOR every (query, candidate) pair and popcount the result.
    xored = np.bitwise_xor(lhs[:, None, :], rhs[None, :, :])
    return _POPCOUNT[xored].sum(axis=-1).astype(np.float32)


def hamming_distance_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Hamming distance between unpacked bipolar arrays via bit packing.

    Handles the same shape combinations as the reference kernel and the
    same (un-rescaled) perforation semantics.  The perforation slice is
    applied *before* packing, matching the loop-perforated scalar kernel.
    """
    lhs_arr = np.asarray(lhs)
    rhs_arr = np.asarray(rhs)
    squeeze_lhs = lhs_arr.ndim == 1
    squeeze_rhs = rhs_arr.ndim == 1
    lhs2 = np.atleast_2d(lhs_arr)
    rhs2 = np.atleast_2d(rhs_arr)
    sl = reduction_slice(lhs2.shape[-1], begin, end, stride)
    out = hamming_distance_packed(pack_bipolar(lhs2[:, sl]), pack_bipolar(rhs2[:, sl]))
    if squeeze_lhs and squeeze_rhs:
        return out[0, 0]
    if squeeze_lhs:
        return out[0]
    if squeeze_rhs:
        return out[:, 0]
    return out


def dot_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Dot product between bipolar arrays computed from packed Hamming.

    For bipolar vectors of effective length ``D``:
    ``dot(a, b) = D - 2 * hamming(a, b)``.
    """
    lhs_arr = np.atleast_2d(np.asarray(lhs))
    sl = reduction_slice(lhs_arr.shape[-1], begin, end, stride)
    visited = len(range(*sl.indices(lhs_arr.shape[-1])))
    ham = hamming_distance_bipolar(lhs, rhs, begin, end, stride)
    return (visited - 2.0 * ham).astype(np.float32)


def cossim_bipolar(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Cosine similarity between bipolar arrays.

    Both operands have constant L2 norm ``sqrt(D)`` over the visited range,
    so the cosine similarity is simply ``dot / D_visited``.
    """
    lhs_arr = np.atleast_2d(np.asarray(lhs))
    sl = reduction_slice(lhs_arr.shape[-1], begin, end, stride)
    visited = len(range(*sl.indices(lhs_arr.shape[-1])))
    return (dot_bipolar(lhs, rhs, begin, end, stride) / float(visited)).astype(
        np.float32
    )
