"""Reference NumPy kernels defining the semantics of every HDC primitive.

Each kernel mirrors one of the HDC algorithmic primitives of Table 1 of the
paper.  The reduce kernels (``matmul``, ``cossim``, ``hamming_distance``,
``l2norm``) accept optional *perforation* parameters ``(begin, end, stride)``
implementing the reduction-perforation transform of Section 4.2:

* For ``hamming_distance`` and ``cossim`` the perforated result is **not**
  rescaled — only relative magnitudes matter for similarity search.
* For ``matmul`` and ``l2norm`` the accumulated value **is** rescaled by the
  inverse of the visited fraction, because their absolute magnitudes matter.

All kernels are pure functions over NumPy arrays; element-type bookkeeping
(e.g. whether a vector is bipolar 1-bit) is handled by the callers.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "empty",
    "create",
    "random_values",
    "gaussian_values",
    "wrap_shift",
    "sign",
    "sign_flip",
    "elementwise",
    "absolute_value",
    "cosine",
    "l2norm",
    "get_element",
    "type_cast",
    "arg_min",
    "arg_max",
    "set_matrix_row",
    "get_matrix_row",
    "matrix_transpose",
    "cossim",
    "hamming_distance",
    "matmul",
    "reduction_slice",
    "perforation_scale",
]


def reduction_slice(
    length: int,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> slice:
    """Build the index slice used by a (possibly perforated) reduction.

    ``begin``/``end``/``stride`` are the three arguments of the
    ``red_perf`` HDC++ directive.  A full reduction corresponds to
    ``(0, length, 1)``.
    """
    if end is None:
        end = length
    if begin < 0 or end > length or begin > end:
        raise ValueError(
            f"invalid perforation range [{begin}, {end}) for length {length}"
        )
    if stride < 1:
        raise ValueError(f"perforation stride must be >= 1, got {stride}")
    return slice(begin, end, stride)


def perforation_scale(
    length: int,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> float:
    """Return ``total_elements / visited_elements`` for a perforated reduce."""
    if end is None:
        end = length
    visited = len(range(begin, end, stride))
    if visited == 0:
        raise ValueError("perforation visits zero elements")
    return length / visited


# ---------------------------------------------------------------------------
# Initialization primitives
# ---------------------------------------------------------------------------


def empty(shape: tuple[int, ...], dtype: np.dtype) -> np.ndarray:
    """``hypervector()`` / ``hypermatrix()`` — zero-initialized storage."""
    return np.zeros(shape, dtype=dtype)


def create(
    shape: tuple[int, ...],
    dtype: np.dtype,
    init: Callable[..., float],
) -> np.ndarray:
    """``create_hypervector(f)`` / ``create_hypermatrix(f)``.

    ``init`` is called with the element indices (one index for vectors, two
    for matrices) and must return the element value.
    """
    out = np.empty(shape, dtype=dtype)
    if len(shape) == 1:
        for i in range(shape[0]):
            out[i] = init(i)
    elif len(shape) == 2:
        for i in range(shape[0]):
            for j in range(shape[1]):
                out[i, j] = init(i, j)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unsupported shape {shape}")
    return out


def random_values(
    shape: tuple[int, ...],
    dtype: np.dtype,
    rng: np.random.Generator,
    bipolar: bool = False,
) -> np.ndarray:
    """``random_hypervector()`` / ``random_hypermatrix()``.

    Floating point types draw from ``U(-1, 1)``; integer types draw uniform
    bipolar ``{+1, -1}`` values, which is the convention used by the HDC
    applications in the paper for random projection matrices.
    """
    if bipolar or np.issubdtype(dtype, np.integer):
        values = rng.integers(0, 2, size=shape) * 2 - 1
        return values.astype(dtype)
    return rng.uniform(-1.0, 1.0, size=shape).astype(dtype)


def gaussian_values(
    shape: tuple[int, ...],
    dtype: np.dtype,
    rng: np.random.Generator,
) -> np.ndarray:
    """``gaussian_hypervector()`` / ``gaussian_hypermatrix()`` — N(0, 1)."""
    values = rng.standard_normal(size=shape)
    if np.issubdtype(dtype, np.integer):
        values = np.rint(values)
    return values.astype(dtype)


# ---------------------------------------------------------------------------
# Element-wise primitives
# ---------------------------------------------------------------------------


def wrap_shift(x: np.ndarray, shift_amount: int) -> np.ndarray:
    """Rotate elements with wrap-around (``wrap_shift``)."""
    return np.roll(x, shift_amount, axis=-1)


def sign(x: np.ndarray) -> np.ndarray:
    """Map each element to +1 / -1 by its sign (zero maps to +1)."""
    if getattr(x, "__packed_bits__", False):
        # sign is the identity on packed bipolar words (bit = 1 is +1);
        # np.where would reinterpret the words as data.
        return x
    return np.where(np.asarray(x) >= 0, np.int8(1), np.int8(-1))


def sign_flip(x: np.ndarray) -> np.ndarray:
    """Flip the sign of every element (``sign_flip``)."""
    return -x


_BINOPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}


def elementwise(op: str, lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Element-wise ``add`` / ``sub`` / ``mul`` / ``div``."""
    if op not in _BINOPS:
        raise KeyError(f"unknown element-wise op {op!r}")
    if op == "div":
        lhs = np.asarray(lhs, dtype=np.result_type(lhs, np.float32))
    return _BINOPS[op](lhs, rhs)


def absolute_value(x: np.ndarray) -> np.ndarray:
    """Element-wise absolute value."""
    return np.abs(x)


def cosine(x: np.ndarray) -> np.ndarray:
    """Element-wise cosine."""
    return np.cos(x.astype(np.float64)).astype(np.float32)


# ---------------------------------------------------------------------------
# Reductions and similarity primitives
# ---------------------------------------------------------------------------


def l2norm(
    x: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """L2 norm of a hypervector, or per-row norms of a hypermatrix.

    Perforated norms are rescaled by ``sqrt(total / visited)`` so that their
    absolute magnitude remains comparable to the exact norm.
    """
    length = x.shape[-1]
    sl = reduction_slice(length, begin, end, stride)
    scale = perforation_scale(length, begin, end, stride)
    sub = x[..., sl].astype(np.float64)
    return np.sqrt(np.sum(sub * sub, axis=-1) * scale).astype(np.float32)


def get_element(x: np.ndarray, row_idx: int, col_idx: Optional[int] = None):
    """Index into a hypervector (one index) or hypermatrix (two indices)."""
    if x.ndim == 1:
        if col_idx is not None:
            raise ValueError("hypervector indexing takes a single index")
        return x[row_idx]
    if col_idx is None:
        raise ValueError("hypermatrix indexing requires two indices")
    return x[row_idx, col_idx]


def type_cast(x: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Cast the elements of a hypervector / hypermatrix to a new type."""
    return x.astype(dtype)


def arg_min(x: np.ndarray) -> np.ndarray:
    """Arg-min of a hypervector, or per-row arg-min of a hypermatrix."""
    return np.argmin(x, axis=-1)


def arg_max(x: np.ndarray) -> np.ndarray:
    """Arg-max of a hypervector, or per-row arg-max of a hypermatrix."""
    return np.argmax(x, axis=-1)


def set_matrix_row(mat: np.ndarray, new_row: np.ndarray, row_idx: int) -> np.ndarray:
    """Return a copy of ``mat`` with row ``row_idx`` replaced by ``new_row``."""
    out = np.array(mat, copy=True)
    out[row_idx, :] = new_row
    return out


def get_matrix_row(mat: np.ndarray, row_idx: int) -> np.ndarray:
    """Extract a row of a hypermatrix as a hypervector."""
    return np.array(mat[row_idx, :], copy=True)


def matrix_transpose(mat: np.ndarray) -> np.ndarray:
    """Transpose a hypermatrix."""
    return np.ascontiguousarray(mat.T)


def _pairwise_apply(lhs: np.ndarray, rhs: np.ndarray, fn) -> np.ndarray:
    """Apply ``fn(vector, matrix) -> vector`` for every row of ``lhs``."""
    return np.stack([fn(row, rhs) for row in lhs])


def cossim(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Cosine similarity between hypervectors / hypermatrices.

    Shapes follow Table 1:

    * ``(D,), (D,)``      -> scalar
    * ``(D,), (K, D)``    -> ``(K,)`` similarity against every row of ``rhs``
    * ``(N, D), (K, D)``  -> ``(N, K)`` pairwise similarities

    The perforation range applies along the hypervector dimension ``D`` and
    the result is *not* rescaled (Section 4.2).
    """
    if lhs.ndim == 1 and rhs.ndim == 1:
        return cossim(lhs[None, :], rhs[None, :], begin, end, stride)[0, 0]
    if lhs.ndim == 1 and rhs.ndim == 2:
        return cossim(lhs[None, :], rhs, begin, end, stride)[0]
    if lhs.ndim == 2 and rhs.ndim == 1:
        return cossim(lhs, rhs[None, :], begin, end, stride)[:, 0]
    sl = reduction_slice(lhs.shape[-1], begin, end, stride)
    a = lhs[:, sl].astype(np.float64)
    b = rhs[:, sl].astype(np.float64)
    dots = a @ b.T
    norm_a = np.linalg.norm(a, axis=1)
    norm_b = np.linalg.norm(b, axis=1)
    denom = np.outer(norm_a, norm_b)
    denom[denom == 0.0] = 1.0
    return (dots / denom).astype(np.float32)


def hamming_distance(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Hamming distance (count of unequal elements) between hypervectors.

    Shape behaviour matches :func:`cossim`.  Perforated distances are not
    rescaled (Section 4.2).
    """
    if lhs.ndim == 1 and rhs.ndim == 1:
        return hamming_distance(lhs[None, :], rhs[None, :], begin, end, stride)[0, 0]
    if lhs.ndim == 1 and rhs.ndim == 2:
        return hamming_distance(lhs[None, :], rhs, begin, end, stride)[0]
    if lhs.ndim == 2 and rhs.ndim == 1:
        return hamming_distance(lhs, rhs[None, :], begin, end, stride)[:, 0]
    sl = reduction_slice(lhs.shape[-1], begin, end, stride)
    a = lhs[:, sl]
    b = rhs[:, sl]
    # Row-at-a-time comparison; the batched library provides a faster path.
    out = np.empty((a.shape[0], b.shape[0]), dtype=np.float32)
    for i in range(a.shape[0]):
        out[i, :] = np.count_nonzero(a[i][None, :] != b, axis=1)
    return out


def matmul(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Matrix multiplication between hypervectors and hypermatrices.

    Following Listing 1 of the paper, ``matmul(features, rp_matrix)`` with
    ``features: (C,)`` and ``rp_matrix: (R, C)`` produces the encoded
    hypervector ``(R,)`` (i.e. ``rp_matrix @ features``).  With a matrix
    left-hand side ``(N, C)`` the result is ``(N, R)``.

    Perforated products are rescaled by ``total / visited`` so downstream
    uses that depend on absolute magnitudes stay calibrated (Section 4.2).
    """
    contraction = rhs.shape[-1]
    sl = reduction_slice(contraction, begin, end, stride)
    scale = perforation_scale(contraction, begin, end, stride)
    r = rhs[:, sl].astype(np.float64)
    if lhs.ndim == 1:
        a = lhs[sl].astype(np.float64)
        out = r @ a
    else:
        a = lhs[:, sl].astype(np.float64)
        out = a @ r.T
    if scale != 1.0:
        out = out * scale
    return out.astype(np.float32)
