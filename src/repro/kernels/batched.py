"""Batched "library routine" kernels standing in for cuBLAS / Thrust / CUDA.

The paper's GPU back end (Section 4.3) does not lower HDC primitives to
generic HPVM IR loops; it lowers them directly to optimized library routines
— cuBLAS for matrix multiplication / transposition / normalization, Thrust
for reductions, and hand-written CUDA kernels for the rest.  Offline we have
no GPU, so these kernels play that role: they operate on whole hypermatrices
at once with fully vectorized NumPy, which preserves the *structural*
property the paper evaluates (coarse library calls on resident device data
instead of per-row loops) and yields the same relative-performance shape.

Every kernel here accepts the same perforation parameters as the reference
kernels and produces numerically identical results (up to floating point
reassociation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels import binary as binkern
from repro.kernels.reference import perforation_scale, reduction_slice

__all__ = [
    "gemm",
    "pairwise_cossim",
    "pairwise_hamming",
    "pairwise_dot",
    "pairwise_hamming_packed",
    "pairwise_dot_packed",
    "pairwise_cossim_packed",
    "rowwise_l2norm",
    "rowwise_argmin",
    "rowwise_argmax",
    "normalize_rows",
    "bind",
    "bundle_rows",
    "bundle_windows",
    "permute",
    "transpose",
]


def gemm(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Batched ``matmul`` (cuBLAS GEMM analogue).

    ``lhs`` is ``(N, C)`` or ``(C,)``, ``rhs`` is ``(R, C)``; the result is
    ``(N, R)`` / ``(R,)``.  Perforated products are rescaled exactly like
    the reference kernel.
    """
    contraction = rhs.shape[-1]
    sl = reduction_slice(contraction, begin, end, stride)
    scale = perforation_scale(contraction, begin, end, stride)
    r = np.asarray(rhs[:, sl], dtype=np.float32)
    if lhs.ndim == 1:
        out = r @ np.asarray(lhs[sl], dtype=np.float32)
    else:
        out = np.asarray(lhs[:, sl], dtype=np.float32) @ r.T
    if scale != 1.0:
        out = out * scale
    return np.asarray(out, dtype=np.float32)


def pairwise_dot(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs dot products between the rows of two hypermatrices."""
    sl = reduction_slice(lhs.shape[-1], begin, end, stride)
    a = np.atleast_2d(lhs)[:, sl].astype(np.float32)
    b = np.atleast_2d(rhs)[:, sl].astype(np.float32)
    return a @ b.T


def pairwise_cossim(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs cosine similarity (GEMM + row-norm normalization)."""
    squeeze_lhs = lhs.ndim == 1
    squeeze_rhs = rhs.ndim == 1
    a = np.atleast_2d(lhs)
    b = np.atleast_2d(rhs)
    sl = reduction_slice(a.shape[-1], begin, end, stride)
    a = a[:, sl].astype(np.float32)
    b = b[:, sl].astype(np.float32)
    dots = a @ b.T
    norm_a = np.linalg.norm(a, axis=1)
    norm_b = np.linalg.norm(b, axis=1)
    denom = np.outer(norm_a, norm_b)
    denom[denom == 0.0] = 1.0
    out = (dots / denom).astype(np.float32)
    if squeeze_lhs and squeeze_rhs:
        return out[0, 0]
    if squeeze_lhs:
        return out[0]
    if squeeze_rhs:
        return out[:, 0]
    return out


def pairwise_hamming(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs Hamming distance computed as one broadcasted comparison.

    For bipolar inputs the identity ``hamming = (D - dot) / 2`` is used so
    the whole computation becomes a single GEMM, mirroring how the CUDA
    baseline implements Hamming distance with tensor-core friendly
    arithmetic.  General integer/float inputs fall back to a broadcasted
    inequality count.
    """
    squeeze_lhs = lhs.ndim == 1
    squeeze_rhs = rhs.ndim == 1
    a = np.atleast_2d(lhs)
    b = np.atleast_2d(rhs)
    sl = reduction_slice(a.shape[-1], begin, end, stride)
    a = a[:, sl]
    b = b[:, sl]
    visited = a.shape[-1]
    bipolar = bool(np.all(np.abs(a) == 1)) and bool(np.all(np.abs(b) == 1))
    if bipolar:
        dots = a.astype(np.float32) @ b.astype(np.float32).T
        out = (visited - dots) / 2.0
    else:
        out = np.count_nonzero(a[:, None, :] != b[None, :, :], axis=-1)
    out = out.astype(np.float32)
    if squeeze_lhs and squeeze_rhs:
        return out[0, 0]
    if squeeze_lhs:
        return out[0]
    if squeeze_rhs:
        return out[:, 0]
    return out


def pairwise_hamming_packed(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs Hamming distance on the word-parallel packed plane.

    The true 2-D batched form of the binarized similarity search: both
    operands may be bipolar arrays or pre-packed
    :class:`~repro.kernels.binary.PackedBits` (a packed-storage class
    memory arrives packed; the query micro-batch is packed once per
    call).  The distances are exact integer bit counts, so the result is
    bit-identical to the per-row packed kernel — which is exactly what
    the boundary-row gate of the batched execution plane re-asserts per
    batch.
    """
    return binkern.hamming_distance_bipolar(lhs, rhs, begin, end, stride)


def pairwise_dot_packed(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs bipolar dot products via packed Hamming
    (``dot = D_visited - 2 * hamming``, exact integers in float32)."""
    return binkern.dot_bipolar(lhs, rhs, begin, end, stride)


def pairwise_cossim_packed(
    lhs: np.ndarray,
    rhs: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """All-pairs bipolar cosine similarity via packed Hamming (constant
    ``sqrt(D)`` norms make it ``dot / D_visited``)."""
    return binkern.cossim_bipolar(lhs, rhs, begin, end, stride)


def rowwise_l2norm(
    x: np.ndarray,
    begin: int = 0,
    end: Optional[int] = None,
    stride: int = 1,
) -> np.ndarray:
    """Per-row L2 norm (cuBLAS ``nrm2`` analogue) with perforation rescaling."""
    arr = np.atleast_2d(x)
    sl = reduction_slice(arr.shape[-1], begin, end, stride)
    scale = perforation_scale(arr.shape[-1], begin, end, stride)
    sub = arr[:, sl].astype(np.float64)
    out = np.sqrt(np.sum(sub * sub, axis=1) * scale).astype(np.float32)
    return out[0] if x.ndim == 1 else out


def rowwise_argmin(x: np.ndarray) -> np.ndarray:
    """Per-row arg-min (Thrust reduction analogue)."""
    return np.argmin(x, axis=-1)


def rowwise_argmax(x: np.ndarray) -> np.ndarray:
    """Per-row arg-max (Thrust reduction analogue)."""
    return np.argmax(x, axis=-1)


def normalize_rows(x: np.ndarray) -> np.ndarray:
    """Normalize every row to unit L2 norm (zero rows are left unchanged)."""
    arr = np.atleast_2d(x).astype(np.float32)
    norms = np.linalg.norm(arr, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    out = arr / norms
    return out[0] if x.ndim == 1 else out


def bind(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Batched HDC *bind* (element-wise multiply with broadcasting).

    The CUDA baselines implement binding as one fused element-wise kernel
    over whole hypermatrices; this is that routine.  Works on any pair of
    broadcast-compatible stacks of hypervectors — e.g. a ``(reads,
    positions, D)`` k-mer accumulator against a ``(reads, positions, D)``
    gather of rotated base hypervectors.
    """
    return np.multiply(lhs, rhs)


def permute(x: np.ndarray, shift: int) -> np.ndarray:
    """Batched HDC *permute* — rotate every hypervector along its last axis.

    The batched analogue of the per-row ``wrap_shift`` reference kernel:
    one strided copy rotates a whole stack of hypervectors at once
    (offset-encoded positional binding does this once per k-mer offset
    instead of once per row).
    """
    return np.roll(np.asarray(x), shift, axis=-1)


def bundle_windows(x: np.ndarray) -> np.ndarray:
    """Bundle (sum) the second-to-last axis of a hypervector stack.

    Reduces a ``(..., windows, D)`` stack to ``(..., D)`` — e.g. the
    per-position k-mer hypervectors of every read at once.  Bipolar
    operands make the reduction exact in float32 (integer-valued partial
    sums), so the batched bundle is bit-identical to any per-row order.
    """
    return np.asarray(x, dtype=np.float32).sum(axis=-2)


def bundle_rows(x: np.ndarray, weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Bundle (element-wise sum) the rows of a hypermatrix into one vector."""
    arr = np.atleast_2d(x).astype(np.float32)
    if weights is None:
        return arr.sum(axis=0)
    return (arr * np.asarray(weights, dtype=np.float32)[:, None]).sum(axis=0)


def transpose(x: np.ndarray) -> np.ndarray:
    """Matrix transpose (cuBLAS ``geam`` analogue)."""
    return np.ascontiguousarray(x.T)
