"""The five HDC applications of the paper's evaluation, written in HDC++.

Table 2 of the paper:

=================  ==============================================  =========================================
Application        Workload                                        HDC stages used
=================  ==============================================  =========================================
HD-Classification  Classification implemented using HDC            Random-projection encoding, inference,
                                                                    training
HD-Clustering      K-means clustering implemented using HDC        Random-projection encoding, inference
HyperOMS           Open modification search for mass spectrometry  Level-ID encoding, inference
RelHD              GNN-style learning on citation graphs           Graph-neighbour encoding, inference,
                                                                    training
HD-Hashtable       Genome sequence search for long reads           K-mer based encoding, inference
=================  ==============================================  =========================================

Every application is expressed once against the :mod:`repro.hdcpp` API and
compiled for any back end; HD-Classification and HD-Clustering additionally
map onto the HDC accelerators through the stage primitives (the other three
use encodings the accelerators do not implement, matching the paper).
"""

from repro.apps.common import AppResult
from repro.apps.classification import HDClassification, HDClassificationInference
from repro.apps.clustering import HDClustering
from repro.apps.hyperoms import HyperOMS
from repro.apps.relhd import RelHD
from repro.apps.hashtable import HDHashtable

__all__ = [
    "AppResult",
    "HDClassification",
    "HDClassificationInference",
    "HDClustering",
    "HyperOMS",
    "RelHD",
    "HDHashtable",
]
