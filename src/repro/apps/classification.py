"""HD-Classification written in HDC++ (Table 2 of the paper).

The application implements the canonical HDC classification pipeline:

* **Random-projection encoding** — input feature vectors are projected to a
  D-dimensional hypervector by a bipolar random matrix and binarized with
  ``sign``.
* **Training** — class hypervectors are accumulated per label; iterative
  retraining adds a misclassified sample's encoding to its true class and
  subtracts it from the predicted class.
* **Inference** — the encoded query is compared against every class
  hypervector (Hamming distance or cosine similarity) and the closest class
  wins.

The whole pipeline is expressed with the HDC++ stage primitives so that the
very same program compiles to the CPU, the GPU, the digital HDC ASIC and
the ReRAM accelerator.  :class:`HDClassificationInference` is the
inference-only variant used by the approximation study of Figure 7 /
Table 3, with class hypervectors trained offline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import hdcpp as H
from repro.apps.common import (
    AppResult,
    bipolar_random,
    corrective_class_update,
    merge_reports,
)
from repro.backends import compile as hdc_compile
from repro.datasets.isolet import IsoletLike
from repro.serving.servable import ALL_TARGETS, Servable, ShardSpec
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["HDClassification", "HDClassificationInference", "classification_servable"]


def classification_servable(
    name: str,
    dimension: int,
    similarity: str,
    rp_matrix: np.ndarray,
    classes: np.ndarray,
    binarize_encoding: bool = True,
) -> Servable:
    """Package trained classification state as a serving adapter.

    The servable's program family performs encoding + similarity search
    only (the stage the request stream exercises); training stays offline.
    One program is traced per micro-batch bucket, all sharing the trained
    class memories and random-projection encoder as bound constants.

    ``binarize_encoding`` selects between the two encoding conventions of
    the classification apps so served predictions match the corresponding
    one-shot ``run(...)`` exactly: :class:`HDClassification` signs the
    encoding before any similarity, :class:`HDClassificationInference`
    keeps the raw projection for cosine and signs only inside the Hamming
    comparison.

    The traced ``infer_one`` needs no declared ``batch_impl``: every
    primitive it uses broadcasts over whole hypermatrices, so the batched
    execution plane auto-vectorizes the inference loop as one
    GEMM-plus-similarity pass and the boundary-row bit-identity gate
    verifies it against the per-row reference on every batch.

    The servable carries a :class:`~repro.serving.servable.ShardSpec`
    over the class memory, so it can also be deployed sharded (``shards=N``
    at registration): each shard's partial program re-encodes the query
    batch and scores it against its block of class rows only, and the
    serving runtime arg-reduces the concatenated scores.

    It also carries an ``update_batch`` rule — the mini-batched corrective
    training step of :class:`HDClassification` (bundle each signed
    encoding into its true class, subtract it from a mistaken prediction)
    applied to the bound constants, predicting with the *served*
    similarity and encoding convention.  That is what
    ``InferenceServer.update`` / the transport's ``update`` op run for
    online re-training; offline retraining applies the very same callable,
    so post-swap served predictions are bit-identical to it.
    """
    rp_matrix = np.asarray(rp_matrix, dtype=np.float32)
    classes = np.asarray(classes, dtype=np.float32)
    n_features = rp_matrix.shape[1]
    n_classes = classes.shape[0]

    def build_program(batch_size: int) -> H.Program:
        prog = H.Program(f"{name}_serve_b{batch_size}")

        @prog.define(H.hv(n_features), H.hm(n_classes, dimension), H.hm(dimension, n_features))
        def infer_one(features, class_hvs, rp):
            encoded = H.matmul(features, rp)
            if binarize_encoding:
                encoded = H.sign(encoded)
            if similarity == "cosine":
                scores = H.cossim(encoded, class_hvs)
                return H.arg_max(scores)
            bipolar = encoded if binarize_encoding else H.sign(encoded)
            distances = H.hamming_distance(bipolar, H.sign(class_hvs))
            return H.arg_min(distances)

        @prog.entry(
            H.hm(batch_size, n_features), H.hm(n_classes, dimension), H.hm(dimension, n_features)
        )
        def main(queries, class_hvs, rp):
            return H.inference_loop(infer_one, queries, class_hvs, encoder=rp)

        return prog

    def build_partial(batch_size: int, n_rows: int) -> H.Program:
        """Partial-score program over ``n_rows`` class rows (one shard).

        With the signed-encoding convention the shard encodes through an
        ``encoding_loop`` *stage* rather than inline granular ops: on CPU
        workers the stage auto-vectorizes to the same sign(matmul) pass,
        while on the HDC accelerators it offloads to the device encoder —
        the exact encoder (cyclic projection on the digital ASIC) the
        unsharded ``inference_loop`` uses, so sharded predictions stay
        bit-identical to unsharded on the same target, and each pinned
        shard worker keeps the base memory resident in its
        ``DeviceSession`` instead of re-encoding through host kernels.
        The raw-projection convention has no device implementation (the
        devices always binarize), so it keeps the inline host encode.
        """
        prog = H.Program(f"{name}_shard{n_rows}_b{batch_size}")

        @prog.define(H.hv(n_features), H.hm(dimension, n_features))
        def encode_one(features, rp):
            return H.sign(H.matmul(features, rp))

        @prog.entry(
            H.hm(batch_size, n_features), H.hm(n_rows, dimension), H.hm(dimension, n_features)
        )
        def main(queries, class_hvs, rp):
            if binarize_encoding:
                encoded = H.encoding_loop(encode_one, queries, rp)
                if similarity == "cosine":
                    return H.cossim(encoded, class_hvs)
                return H.hamming_distance(encoded, H.sign(class_hvs))
            encoded = H.matmul(queries, rp)
            if similarity == "cosine":
                return H.cossim(encoded, class_hvs)
            return H.hamming_distance(H.sign(encoded), H.sign(class_hvs))

        return prog

    def update_batch(constants: dict, samples: np.ndarray, labels: np.ndarray) -> dict:
        """Mini-batched corrective update of the served class memories.

        The same rule as ``HDClassification``'s ``train_batch``, applied
        to the deployment's bound state: every signed encoding is bundled
        into its true class, and additionally subtracted from the class
        the *served* inference path would have predicted — so the
        corrective term tracks exactly what this deployment serves.
        """
        rp = np.asarray(constants["rp"], dtype=np.float32)
        class_hvs = np.asarray(constants["class_hvs"], dtype=np.float32)
        samples = np.asarray(samples, dtype=np.float32)
        projected = np.asarray(H.matmul(samples, rp))
        encoded = np.asarray(H.sign(projected), dtype=np.float32)
        if similarity == "cosine":
            query = encoded if binarize_encoding else projected
            scores = np.asarray(H.cossim(query, class_hvs))
            predicted = scores.argmax(axis=1)
        else:
            distances = np.asarray(
                H.hamming_distance(encoded, np.asarray(H.sign(class_hvs)))
            )
            predicted = distances.argmin(axis=1)
        updated = corrective_class_update(class_hvs, encoded, labels, predicted, name=name)
        return {**constants, "class_hvs": updated}

    constants = {"class_hvs": classes, "rp": rp_matrix}
    return Servable(
        name=name,
        build_program=build_program,
        constants=constants,
        query_param="queries",
        sample_shape=(n_features,),
        # signature_extra (not an explicit signature) so online updates
        # re-derive a collision-free identity from the new constants.
        signature_extra=f"dim={dimension},sim={similarity},bin={binarize_encoding}",
        supported_targets=ALL_TARGETS,
        shard_spec=ShardSpec(
            param="class_hvs",
            build_partial=build_partial,
            reduce="argmax" if similarity == "cosine" else "argmin",
        ),
        update_batch=update_batch,
        description=f"HDC classification, D={dimension}, {similarity} similarity",
    )


@dataclass
class HDClassification:
    """End-to-end HDC classification (encoding + training + inference)."""

    dimension: int = 2048
    epochs: int = 5
    similarity: str = "hamming"
    seed: int = 1

    # ------------------------------------------------------------------ program --
    def build_program(self, n_features: int, n_classes: int, n_train: int, n_test: int) -> H.Program:
        """Trace the HDC++ program for the given dataset shape."""
        dim, similarity = self.dimension, self.similarity
        prog = H.Program("hd_classification")

        @prog.define(H.hv(n_features), H.hm(dim, n_features))
        def encode(features, rp_matrix):
            """Random projection encoding of one feature vector."""
            return H.sign(H.matmul(features, rp_matrix))

        @prog.define(H.hv(n_features), H.hm(n_classes, dim), H.hm(dim, n_features))
        def infer_one(features, classes, rp_matrix):
            """Classify one feature vector against the class hypervectors."""
            encoded = H.sign(H.matmul(features, rp_matrix))
            if similarity == "cosine":
                scores = H.cossim(encoded, classes)
                return H.arg_max(scores)
            distances = H.hamming_distance(encoded, H.sign(classes))
            return H.arg_min(distances)

        def train_one(features, label, classes, rp_matrix):
            """One training iteration (data-dependent update rule).

            The encoded sample is always bundled into its class accumulator
            (single-pass training) and additionally subtracted from the
            class it was mistaken for (corrective retraining).
            """
            encoded = H.sign(H.matmul(features, rp_matrix))
            distances = H.hamming_distance(encoded, H.sign(classes))
            predicted = int(H.arg_min(distances))
            updated = np.array(classes, copy=True)
            updated[label] += np.asarray(encoded)
            if predicted != label:
                updated[predicted] -= np.asarray(encoded)
            return updated

        def train_batch(features, labels, classes, rp_matrix):
            """Mini-batched form of the same update rule (used by the GPU)."""
            encoded = np.asarray(H.sign(H.matmul(features, rp_matrix)), dtype=np.float32)
            distances = np.asarray(H.hamming_distance(encoded, H.sign(classes)))
            predicted = distances.argmin(axis=1)
            updated = np.array(classes, copy=True)
            np.add.at(updated, np.asarray(labels), encoded)
            wrong = predicted != np.asarray(labels)
            np.add.at(updated, predicted[wrong], -encoded[wrong])
            return updated

        epochs = self.epochs

        @prog.entry(
            H.hm(n_train, n_features),
            H.IndexVectorType(n_train),
            H.hm(n_test, n_features),
            H.hm(dim, n_features),
            H.hm(n_classes, dim),
        )
        def main(train_queries, train_labels, test_queries, rp_matrix, classes):
            trained = H.training_loop(
                train_one,
                train_queries,
                train_labels,
                classes,
                epochs=epochs,
                encoder=rp_matrix,
                batch_impl=train_batch,
            )
            predictions = H.inference_loop(infer_one, test_queries, trained, encoder=rp_matrix)
            return predictions, trained

        return prog

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        dataset: IsoletLike,
        target: str = "cpu",
        config: Optional[ApproximationConfig] = None,
    ) -> AppResult:
        """Train and evaluate the classifier on one hardware target."""
        n_train = dataset.train_features.shape[0]
        n_test = dataset.test_features.shape[0]
        program = self.build_program(dataset.n_features, dataset.n_classes, n_train, n_test)
        compiled = hdc_compile(program, target=target, config=config)

        rp_matrix = bipolar_random(self.dimension, dataset.n_features, seed=self.seed)
        initial_classes = np.zeros((dataset.n_classes, self.dimension), dtype=np.float32)

        start = time.perf_counter()
        result = compiled.run(
            train_queries=dataset.train_features,
            train_labels=dataset.train_labels,
            test_queries=dataset.test_features,
            rp_matrix=rp_matrix,
            classes=initial_classes,
        )
        wall = time.perf_counter() - start

        entry = program.entry_function
        predictions = np.asarray(result.outputs[entry.results[0].name])
        trained = np.asarray(result.outputs[entry.results[1].name])
        accuracy = float((predictions == dataset.test_labels).mean())
        return AppResult(
            app="hd-classification",
            target=target,
            quality=accuracy,
            quality_metric="accuracy",
            wall_seconds=wall,
            report=result.report,
            outputs={"predictions": predictions, "class_hypervectors": trained},
        )

    # ------------------------------------------------------------------ serving --
    def as_servable(
        self, rp_matrix: np.ndarray, classes: np.ndarray, name: str = "hd-classification"
    ) -> Servable:
        """Serve trained state (e.g. ``run(...)``'s class hypervectors)."""
        return classification_servable(
            name, self.dimension, self.similarity, rp_matrix, classes, binarize_encoding=True
        )


@dataclass
class HDClassificationInference:
    """Inference-only HD-Classification used by the Figure 7 / Table 3 study.

    The class hypervectors are derived offline with cosine similarity in a
    single pass over the training set (exactly the setup of Section 5.3);
    the traced program then performs only encoding + similarity search, so
    the approximation transforms directly target the operations the study
    perforates and binarizes.
    """

    dimension: int = 10240
    similarity: str = "cosine"
    seed: int = 1

    # --------------------------------------------------------------- offline part --
    def train_offline(self, dataset: IsoletLike) -> tuple[np.ndarray, np.ndarray]:
        """Single-pass training producing float32 class hypervectors."""
        rp_matrix = bipolar_random(self.dimension, dataset.n_features, seed=self.seed)
        encoded = np.sign(dataset.train_features @ rp_matrix.T).astype(np.float32)
        classes = np.zeros((dataset.n_classes, self.dimension), dtype=np.float32)
        for row, label in zip(encoded, dataset.train_labels):
            classes[label] += row
        # One corrective pass using cosine similarity (single-pass training).
        norms = np.linalg.norm(classes, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        scores = encoded @ (classes / norms).T
        predicted = scores.argmax(axis=1)
        for row, label, guess in zip(encoded, dataset.train_labels, predicted):
            if guess != label:
                classes[label] += row
                classes[guess] -= row
        return rp_matrix, classes

    # ------------------------------------------------------------------ program --
    def build_program(self, n_features: int, n_classes: int, n_test: int) -> H.Program:
        dim, similarity = self.dimension, self.similarity
        prog = H.Program("hd_classification_inference")

        @prog.define(H.hv(n_features), H.hm(n_classes, dim), H.hm(dim, n_features))
        def infer_one(features, classes, rp_matrix):
            encoded = H.matmul(features, rp_matrix)
            if similarity == "cosine":
                scores = H.cossim(encoded, classes)
                return H.arg_max(scores)
            distances = H.hamming_distance(H.sign(encoded), H.sign(classes))
            return H.arg_min(distances)

        @prog.entry(H.hm(n_test, n_features), H.hm(n_classes, dim), H.hm(dim, n_features))
        def main(test_queries, classes, rp_matrix):
            return H.inference_loop(infer_one, test_queries, classes, encoder=rp_matrix)

        return prog

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        dataset: IsoletLike,
        target: str = "gpu",
        config: Optional[ApproximationConfig] = None,
        trained: Optional[tuple[np.ndarray, np.ndarray]] = None,
    ) -> AppResult:
        """Run approximated inference on one hardware target."""
        rp_matrix, classes = trained if trained is not None else self.train_offline(dataset)
        n_test = dataset.test_features.shape[0]
        program = self.build_program(dataset.n_features, dataset.n_classes, n_test)
        compiled = hdc_compile(program, target=target, config=config)

        start = time.perf_counter()
        result = compiled.run(
            test_queries=dataset.test_features, classes=classes, rp_matrix=rp_matrix
        )
        wall = time.perf_counter() - start

        predictions = np.asarray(result.output)
        accuracy = float((predictions == dataset.test_labels).mean())
        return AppResult(
            app="hd-classification-inference",
            target=target,
            quality=accuracy,
            quality_metric="accuracy",
            wall_seconds=wall,
            report=result.report,
            outputs={"predictions": predictions},
        )

    # ------------------------------------------------------------------ serving --
    def as_servable(
        self,
        trained: Optional[tuple[np.ndarray, np.ndarray]] = None,
        dataset: Optional[IsoletLike] = None,
        name: str = "hd-classification-inference",
    ) -> Servable:
        """Serve the offline-trained classifier (training if needed)."""
        if trained is None:
            if dataset is None:
                raise ValueError("as_servable needs either trained state or a dataset")
            trained = self.train_offline(dataset)
        rp_matrix, classes = trained
        return classification_servable(
            name, self.dimension, self.similarity, rp_matrix, classes, binarize_encoding=False
        )
