"""HyperOMS written in HDC++ (Table 2 of the paper).

HyperOMS performs *open modification search* for mass spectrometry: every
query spectrum is matched against a spectral library, tolerating an unknown
mass modification.  The HDC formulation encodes each spectrum with
**level-ID encoding**: every peak binds an *ID hypervector* (identifying the
m/z bin) with a *level hypervector* (quantized intensity), and the bound
pairs are bundled into a single spectrum hypervector.  Search is a nearest-
neighbour lookup among the encoded library spectra.

The outer loop over spectra is not an HDC primitive — it is generic data
parallelism, which the paper highlights as the reason HDC++ interoperates
with Hetero-C++: here it is expressed with :func:`repro.hdcpp.parallel_map`
(which lowers to an internal dataflow node with one dynamic instance per
spectrum), while the search stage uses ``inference_loop``.  HyperOMS does
not map onto the HDC accelerators (its level-ID encoding is not one of the
devices' coarse-grain operations), matching the paper's evaluation, and its
baseline exists only for the GPU.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import hdcpp as H
from repro.apps.common import AppResult, bipolar_random
from repro.backends import compile as hdc_compile
from repro.kernels import batched
from repro.datasets.spectra import SpectralDataset
from repro.serving.servable import HOST_TARGETS, Servable, ShardSpec, servable_signature
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["HyperOMS", "make_level_hypervectors"]


def make_level_hypervectors(n_levels: int, dimension: int, seed: int) -> np.ndarray:
    """Level (intensity) hypervectors with correlated neighbouring levels.

    Level i+1 is level i with a fixed slice of elements re-randomized, so
    nearby intensity levels stay similar — the standard level-encoding item
    memory used by HyperOMS.
    """
    rng = np.random.default_rng(seed)
    levels = np.empty((n_levels, dimension), dtype=np.float32)
    levels[0] = (rng.integers(0, 2, size=dimension) * 2 - 1).astype(np.float32)
    flip_per_level = max(1, dimension // (2 * max(1, n_levels - 1)))
    for level in range(1, n_levels):
        levels[level] = levels[level - 1]
        positions = rng.choice(dimension, size=flip_per_level, replace=False)
        levels[level, positions] = -levels[level, positions]
    return levels


@dataclass
class HyperOMS:
    """Open modification spectral library search with HDC."""

    dimension: int = 4096
    n_levels: int = 16
    seed: int = 11

    # --------------------------------------------------------------- encoding impl --
    def _make_encoder(self, id_hvs: np.ndarray, level_hvs: np.ndarray):
        """Level-ID encoding of one binned spectrum (per-row reference).

        The implementation is a host callable (closure over the ID / level
        item memories) executed once per spectrum by ``parallel_map``.  It
        is the reference the bit-identity gate checks the declared batched
        route (:meth:`_make_batched_encoder`) against on the boundary rows
        of every batch.
        """
        n_levels = self.n_levels

        def encode_spectrum(binned):
            dense = np.asarray(binned, dtype=np.float32)
            if dense.ndim != 1:
                raise ValueError("encode_spectrum is the per-spectrum reference; one row at a time")
            levels = np.clip((dense * (n_levels - 1)).round().astype(np.int64), 0, n_levels - 1)
            # Bind each active peak's ID hypervector with its level
            # hypervector and bundle over peaks:  sum_b  active_b * (id_b ⊙ level_b).
            active = np.nonzero(dense > 0)[0]
            if active.size == 0:
                return np.zeros(id_hvs.shape[1], dtype=np.float32)
            bound = id_hvs[active] * level_hvs[levels[active]]
            return bound.sum(axis=0)

        return encode_spectrum

    def _make_batched_encoder(self, id_hvs: np.ndarray, level_hvs: np.ndarray):
        """Level-ID encode a whole spectrum matrix with per-level GEMMs.

        One selection mask and one ``(spectra, bins) @ (bins, D)`` GEMM per
        intensity level replace the per-spectrum Python loop: level ``l``'s
        GEMM bundles ``id_b ⊙ level_l`` over every active peak quantized to
        ``l``, for all spectra at once — ``n_levels`` library calls instead
        of one Python iteration per spectrum.  Masks are 0/1 and the bound
        item memories bipolar (±1), so every partial sum is integer-valued
        and exact in float32: the batched result is bit-identical to the
        per-spectrum reference regardless of summation order, which is what
        lets the execution gate accept this route for every batch.
        """
        n_levels = self.n_levels
        # Pre-bind the ID item memory against every level hypervector:
        # (n_levels, bins, D).
        bound_levels = np.stack(
            [batched.bind(id_hvs, level_hvs[level]) for level in range(n_levels)]
        ).astype(np.float32)

        def encode_spectra(binned):
            dense = np.asarray(binned, dtype=np.float32)
            single = dense.ndim == 1
            dense = np.atleast_2d(dense)
            levels = np.clip((dense * (n_levels - 1)).round().astype(np.int64), 0, n_levels - 1)
            active = dense > 0
            encoded = np.zeros((dense.shape[0], id_hvs.shape[1]), dtype=np.float32)
            for level in range(n_levels):
                select = (active & (levels == level)).astype(np.float32)
                if not select.any():
                    continue
                encoded += batched.gemm(select, batched.transpose(bound_levels[level]))
            return encoded[0] if single else encoded

        return encode_spectra

    # ------------------------------------------------------------------ program --
    def build_program(self, n_queries: int, n_library: int, n_bins: int) -> H.Program:
        dim = self.dimension
        id_hvs = bipolar_random(n_bins, dim, seed=self.seed)
        level_hvs = make_level_hypervectors(self.n_levels, dim, seed=self.seed + 1)
        encode_spectrum = self._make_encoder(id_hvs, level_hvs)
        encode_spectra = self._make_batched_encoder(id_hvs, level_hvs)

        prog = H.Program("hyperoms")

        @prog.define(H.hv(dim), H.hm(n_library, dim))
        def search_one(query_encoding, library_encodings):
            """Find the most similar library spectrum for one query."""
            distances = H.hamming_distance(H.sign(query_encoding), H.sign(library_encodings))
            return H.arg_min(distances)

        @prog.entry(H.hm(n_queries, n_bins), H.hm(n_library, n_bins))
        def main(query_spectra, library_spectra):
            library_encodings = H.parallel_map(
                encode_spectrum, library_spectra, output_dim=dim, batch_impl=encode_spectra
            )
            query_encodings = H.parallel_map(
                encode_spectrum, query_spectra, output_dim=dim, batch_impl=encode_spectra
            )
            matches = H.inference_loop(search_one, query_encodings, library_encodings)
            return matches

        return prog

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        dataset: SpectralDataset,
        target: str = "gpu",
        config: Optional[ApproximationConfig] = None,
    ) -> AppResult:
        """Encode the library and the queries, then search (recall@1)."""
        queries = dataset.query_matrix
        library = dataset.library_matrix
        program = self.build_program(queries.shape[0], library.shape[0], queries.shape[1])
        compiled = hdc_compile(program, target=target, config=config)

        start = time.perf_counter()
        result = compiled.run(query_spectra=queries, library_spectra=library)
        wall = time.perf_counter() - start

        matches = np.asarray(result.output, dtype=np.int64)
        recall = float((matches == dataset.query_truth).mean())
        return AppResult(
            app="hyperoms",
            target=target,
            quality=recall,
            quality_metric="recall@1",
            wall_seconds=wall,
            report=result.report,
            outputs={"matches": matches},
        )

    # ------------------------------------------------------------------ serving --
    def encode_library(self, library_matrix: np.ndarray, n_bins: Optional[int] = None) -> np.ndarray:
        """Level-ID encode a spectral library offline (the serving constant)."""
        library_matrix = np.atleast_2d(np.asarray(library_matrix, dtype=np.float32))
        n_bins = library_matrix.shape[1] if n_bins is None else n_bins
        id_hvs = bipolar_random(n_bins, self.dimension, seed=self.seed)
        level_hvs = make_level_hypervectors(self.n_levels, self.dimension, seed=self.seed + 1)
        encode_spectra = self._make_batched_encoder(id_hvs, level_hvs)
        return np.asarray(encode_spectra(library_matrix), dtype=np.float32)

    def as_servable(
        self, library_encodings: np.ndarray, n_bins: int, name: str = "hyperoms"
    ) -> Servable:
        """Serve open modification search against a pre-encoded library.

        Offline, :meth:`encode_library` bundles the whole spectral library
        once; the served program only level-ID encodes each query batch and
        searches it against the resident library encodings — re-encoding
        the library per request stream is exactly the redundant work
        serving exists to elide.
        """
        library_encodings = np.asarray(library_encodings, dtype=np.float32)
        dim = self.dimension
        n_library = library_encodings.shape[0]
        id_hvs = bipolar_random(n_bins, dim, seed=self.seed)
        level_hvs = make_level_hypervectors(self.n_levels, dim, seed=self.seed + 1)
        encode_spectrum = self._make_encoder(id_hvs, level_hvs)
        encode_spectra = self._make_batched_encoder(id_hvs, level_hvs)

        def build_program(batch_size: int) -> H.Program:
            prog = H.Program(f"{name}_serve_b{batch_size}")

            @prog.define(H.hv(dim), H.hm(n_library, dim))
            def search_one(query_encoding, library):
                distances = H.hamming_distance(H.sign(query_encoding), H.sign(library))
                return H.arg_min(distances)

            @prog.entry(H.hm(batch_size, n_bins), H.hm(n_library, dim))
            def main(query_spectra, library):
                query_encodings = H.parallel_map(
                    encode_spectrum, query_spectra, output_dim=dim, batch_impl=encode_spectra
                )
                return H.inference_loop(search_one, query_encodings, library)

            return prog

        def build_partial(batch_size: int, n_rows: int) -> H.Program:
            """Partial Hamming distances against ``n_rows`` library rows."""
            prog = H.Program(f"{name}_shard{n_rows}_b{batch_size}")

            @prog.entry(H.hm(batch_size, n_bins), H.hm(n_rows, dim))
            def main(query_spectra, library):
                query_encodings = H.parallel_map(
                    encode_spectrum, query_spectra, output_dim=dim, batch_impl=encode_spectra
                )
                return H.hamming_distance(H.sign(query_encodings), H.sign(library))

            return prog

        def append_batch(bound: dict, rows: np.ndarray) -> dict:
            # Rows are raw reference spectra (n_bins,); level-ID encode them
            # with the same id/level hypervectors encode_library derives
            # from the seed, so growth equals re-encoding the full library.
            spectra = np.atleast_2d(np.asarray(rows, dtype=np.float32))
            encoded = np.asarray(encode_spectra(spectra), dtype=np.float32)
            grown = dict(bound)
            grown["library"] = np.concatenate([np.asarray(bound["library"]), encoded], axis=0)
            return grown

        def rebuild(grown: dict) -> Servable:
            return self.as_servable(np.asarray(grown["library"]), n_bins, name=name)

        constants = {"library": library_encodings}
        return Servable(
            name=name,
            build_program=build_program,
            constants=constants,
            query_param="query_spectra",
            sample_shape=(n_bins,),
            signature=servable_signature(
                name, (n_bins,), constants, extra=f"dim={dim},levels={self.n_levels},seed={self.seed}"
            ),
            supported_targets=HOST_TARGETS,
            shard_spec=ShardSpec(param="library", build_partial=build_partial, reduce="argmin"),
            append_batch=append_batch,
            growable=("library",),
            rebuild=rebuild,
            append_row_shape=(n_bins,),
            description=f"HyperOMS spectral search, D={dim}, library={n_library}",
        )
