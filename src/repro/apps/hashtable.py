"""HD-Hashtable written in HDC++ (Table 2 of the paper).

HD-Hashtable (a hash-table-optimized variant of BioHD) searches a reference
genome for the origin of long, error-prone reads.  The HDC formulation:

* **K-mer based encoding** — each k-mer binds per-base hypervectors shifted
  by their position in the k-mer (``wrap_shift``), and a sequence is the
  bundle of its k-mer encodings.
* **HD hashing** — the reference genome is partitioned into buckets; each
  bucket's value in the hash table is the bundled encoding of every k-mer
  it contains.
* **Search / inference** — a read is encoded the same way and compared
  against the bucket hypervectors; the closest bucket identifies where the
  read came from.

The per-read encoding runs as a :func:`repro.hdcpp.parallel_map` (generic
data parallelism over reads), the search uses ``inference_loop``, and the
reference-side table construction is host-side setup.  Like HyperOMS and
RelHD, this application does not map onto the HDC accelerators; its
baseline is a single Python/CuPy-style program used for both CPU and GPU
(Table 4 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import hdcpp as H
from repro.apps.common import AppResult, bipolar_random
from repro.backends import compile as hdc_compile
from repro.kernels import batched
from repro.datasets.genomics import GenomicsDataset, base_indices
from repro.serving.servable import HOST_TARGETS, Servable, ShardSpec, servable_signature
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["HDHashtable"]


@dataclass
class HDHashtable:
    """Genome sequence search with HD hashing."""

    dimension: int = 4096
    seed: int = 23

    # ------------------------------------------------------------- k-mer encoding --
    def _make_read_encoder(self, base_hvs: np.ndarray, kmer_length: int):
        """Encode one read (as base indices) into a hypervector.

        Each k-mer *binds* (element-wise multiplies) its bases' hypervectors
        rotated by their offset inside the k-mer — the GenieHD / BioHD
        encoding — and the sequence encoding is the bundle (sum) of all of
        its k-mer hypervectors.  This is the **per-read reference**: the
        bit-identity gate of the batched execution plane checks the
        declared batched route (:meth:`_make_batched_read_encoder`)
        against it on the boundary rows of every batch.
        """
        dimension = base_hvs.shape[1]
        # Pre-rotate the 4 base hypervectors for every offset inside a k-mer.
        shifted = np.stack(
            [batched.permute(base_hvs, offset) for offset in range(kmer_length)]
        )  # (kmer_length, 4, D)

        def encode_read(read_bases) -> np.ndarray:
            bases = np.asarray(read_bases, dtype=np.int64)
            if bases.ndim != 1:
                raise ValueError("encode_read is the per-read reference; one read at a time")
            positions = bases.shape[0] - kmer_length + 1
            if positions <= 0:
                return np.zeros(dimension, dtype=np.float32)
            kmers = np.ones((positions, dimension), dtype=np.float32)
            for offset in range(kmer_length):
                kmers = batched.bind(kmers, shifted[offset][bases[offset : offset + positions]])
            return batched.bundle_windows(kmers)

        return encode_read

    #: Working-set budget of the batched read encoder, in float32 elements
    #: of the ``(chunk, positions, D)`` k-mer accumulator.  Reads are
    #: independent, so chunking changes nothing numerically — it only
    #: keeps the accumulator cache-sized instead of letting a large
    #: one-shot batch (hundreds of long reads) thrash DRAM across the
    #: ``kmer_length`` bind passes.  ~400 KB keeps the accumulator
    #: L2-resident: measured at parity with the per-read loop on large-row
    #: shapes (long reads / high D, where each row is already one big
    #: vectorized op) and ahead of it on serving-sized micro-batches
    #: (small rows, where the per-row Python tax dominates).
    batched_encoder_elements = 100_000

    def _make_batched_read_encoder(self, base_hvs: np.ndarray, kmer_length: int):
        """K-mer encode a whole matrix of reads in a few array operations.

        The 2-D formulation of the same GenieHD / BioHD encoding: for every
        k-mer offset, one gather selects the rotated base hypervectors of a
        whole chunk of reads at once — shape ``(chunk, positions, D)`` —
        and one batched bind folds them into the k-mer accumulator; one
        batched bundle then sums the position axis.  ``kmer_length`` array
        operations per chunk replace ``reads × kmer_length`` Python-level
        steps.  Operands are bipolar (±1), so every partial sum is
        integer-valued and exact in float32 — the batched result is
        bit-identical to the per-read reference, which is what lets the
        execution gate accept this route for every batch.
        """
        dimension = base_hvs.shape[1]
        shifted = np.stack(
            [batched.permute(base_hvs, offset) for offset in range(kmer_length)]
        )  # (kmer_length, 4, D)

        def encode_chunk(bases: np.ndarray, positions: int) -> np.ndarray:
            kmers = np.ones((bases.shape[0], positions, dimension), dtype=np.float32)
            for offset in range(kmer_length):
                kmers = batched.bind(kmers, shifted[offset][bases[:, offset : offset + positions]])
            return batched.bundle_windows(kmers)

        def encode_reads(reads) -> np.ndarray:
            bases = np.asarray(reads, dtype=np.int64)
            single = bases.ndim == 1
            bases = np.atleast_2d(bases)
            n_reads = bases.shape[0]
            positions = bases.shape[1] - kmer_length + 1
            if positions <= 0:
                out = np.zeros((n_reads, dimension), dtype=np.float32)
                return out[0] if single else out
            chunk = max(1, self.batched_encoder_elements // (positions * dimension))
            if chunk >= n_reads:
                out = encode_chunk(bases, positions)
            else:
                out = np.empty((n_reads, dimension), dtype=np.float32)
                for begin in range(0, n_reads, chunk):
                    out[begin : begin + chunk] = encode_chunk(
                        bases[begin : begin + chunk], positions
                    )
            return out[0] if single else out

        return encode_reads

    def make_base_hypervectors(self) -> np.ndarray:
        """The four per-nucleotide item-memory hypervectors."""
        return bipolar_random(4, self.dimension, seed=self.seed)

    def encode_reference_buckets(self, dataset: GenomicsDataset, base_hvs: np.ndarray) -> np.ndarray:
        """Build the HD hash table: one bundled hypervector per genome bucket."""
        encode_read = self._make_read_encoder(base_hvs, dataset.config.kmer_length)
        buckets = np.zeros((dataset.n_buckets, self.dimension), dtype=np.float32)
        for bucket in range(dataset.n_buckets):
            sequence = dataset.bucket_sequence(bucket)
            if len(sequence) >= dataset.config.kmer_length:
                buckets[bucket] = encode_read(base_indices(sequence))
        return np.sign(buckets).astype(np.float32)

    # ------------------------------------------------------------------ program --
    def build_program(
        self, n_reads: int, read_length: int, n_buckets: int, kmer_length: int, base_hvs: np.ndarray
    ) -> H.Program:
        dim = self.dimension
        encode_read = self._make_read_encoder(base_hvs, kmer_length)
        encode_reads = self._make_batched_read_encoder(base_hvs, kmer_length)

        prog = H.Program("hd_hashtable")

        @prog.define(H.hv(dim), H.hm(n_buckets, dim))
        def search_one(read_encoding, bucket_table):
            distances = H.hamming_distance(H.sign(read_encoding), H.sign(bucket_table))
            return H.arg_min(distances)

        @prog.entry(H.hm(n_reads, read_length, H.int64), H.hm(n_buckets, dim))
        def main(reads, bucket_table):
            read_encodings = H.parallel_map(
                encode_read, reads, output_dim=dim, batch_impl=encode_reads
            )
            matches = H.inference_loop(search_one, read_encodings, bucket_table)
            return matches

        return prog

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        dataset: GenomicsDataset,
        target: str = "cpu",
        config: Optional[ApproximationConfig] = None,
    ) -> AppResult:
        """Build the reference table, encode the reads, and search."""
        reads = np.stack([base_indices(read) for read in dataset.reads])
        base_hvs = self.make_base_hypervectors()
        program = self.build_program(
            reads.shape[0], reads.shape[1], dataset.n_buckets, dataset.config.kmer_length, base_hvs
        )
        bucket_table = self.encode_reference_buckets(dataset, base_hvs)
        compiled = hdc_compile(program, target=target, config=config)

        start = time.perf_counter()
        result = compiled.run(reads=reads, bucket_table=bucket_table)
        wall = time.perf_counter() - start

        matches = np.asarray(result.output, dtype=np.int64)
        accuracy = float((matches == dataset.read_buckets).mean())
        return AppResult(
            app="hd-hashtable",
            target=target,
            quality=accuracy,
            quality_metric="bucket accuracy",
            wall_seconds=wall,
            report=result.report,
            outputs={"matches": matches},
        )

    # ------------------------------------------------------------------ serving --
    def as_servable(
        self,
        bucket_table: np.ndarray,
        read_length: int,
        kmer_length: int,
        base_hvs: Optional[np.ndarray] = None,
        name: str = "hd-hashtable",
        append_length: Optional[int] = None,
    ) -> Servable:
        """Serve genome-read bucket search against a prebuilt HD hash table.

        Requests are fixed-length reads as base indices (see
        :func:`repro.datasets.genomics.base_indices`); the reference-side
        table (``encode_reference_buckets``) is the deployment's constant.

        The table is *growable*: the servable's ``append_batch`` rule takes
        a batch of new bucket sequences — base-index rows of length
        ``append_length`` (default ``read_length``) — k-mer encodes each
        one exactly as :meth:`encode_reference_buckets` does (same
        ``base_hvs``, same exact-in-float32 arithmetic), and appends the
        signed encodings as new rows of ``table``.  Serving the grown
        servable is therefore bit-identical to rebuilding the hash table
        offline from the full sequence set.
        """
        bucket_table = np.asarray(bucket_table, dtype=np.float32)
        base_hvs = self.make_base_hypervectors() if base_hvs is None else np.asarray(base_hvs)
        append_length = read_length if append_length is None else int(append_length)
        dim = self.dimension
        n_buckets = bucket_table.shape[0]
        encode_read = self._make_read_encoder(base_hvs, kmer_length)
        encode_reads = self._make_batched_read_encoder(base_hvs, kmer_length)

        def build_program(batch_size: int) -> H.Program:
            prog = H.Program(f"{name}_serve_b{batch_size}")

            @prog.define(H.hv(dim), H.hm(n_buckets, dim))
            def search_one(read_encoding, table):
                distances = H.hamming_distance(H.sign(read_encoding), H.sign(table))
                return H.arg_min(distances)

            @prog.entry(H.hm(batch_size, read_length, H.int64), H.hm(n_buckets, dim))
            def main(reads, table):
                read_encodings = H.parallel_map(
                    encode_read, reads, output_dim=dim, batch_impl=encode_reads
                )
                return H.inference_loop(search_one, read_encodings, table)

            return prog

        def build_partial(batch_size: int, n_rows: int) -> H.Program:
            """Partial Hamming distances against ``n_rows`` bucket rows."""
            prog = H.Program(f"{name}_shard{n_rows}_b{batch_size}")

            @prog.entry(H.hm(batch_size, read_length, H.int64), H.hm(n_rows, dim))
            def main(reads, table):
                read_encodings = H.parallel_map(
                    encode_read, reads, output_dim=dim, batch_impl=encode_reads
                )
                return H.hamming_distance(H.sign(read_encodings), H.sign(table))

            return prog

        def append_batch(bound: dict, rows: np.ndarray) -> dict:
            sequences = np.asarray(rows, dtype=np.int64)
            # Same encoding as encode_reference_buckets: per-sequence k-mer
            # bundle, then sign.  encode_reads is bit-identical to the
            # per-read reference, so growth matches an offline rebuild.
            encoded = np.sign(encode_reads(sequences)).astype(np.float32)
            grown = dict(bound)
            grown["table"] = np.concatenate([np.asarray(bound["table"]), encoded], axis=0)
            return grown

        def rebuild(grown: dict) -> Servable:
            return self.as_servable(
                np.asarray(grown["table"]),
                read_length,
                kmer_length,
                base_hvs=base_hvs,
                name=name,
                append_length=append_length,
            )

        constants = {"table": bucket_table}
        return Servable(
            name=name,
            build_program=build_program,
            constants=constants,
            query_param="reads",
            sample_shape=(read_length,),
            signature=servable_signature(
                name,
                (read_length,),
                {"table": bucket_table, "base_hvs": base_hvs},
                extra=f"dim={dim},k={kmer_length}",
            ),
            supported_targets=HOST_TARGETS,
            shard_spec=ShardSpec(param="table", build_partial=build_partial, reduce="argmin"),
            append_batch=append_batch,
            growable=("table",),
            rebuild=rebuild,
            append_row_shape=(append_length,),
            description=f"HD hash-table read search, D={dim}, k-mer={kmer_length}",
        )
