"""Shared result types and helpers for the HDC++ applications."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.backends.base import ExecutionReport

__all__ = ["AppResult", "merge_reports", "bipolar_random", "corrective_class_update"]


@dataclass
class AppResult:
    """The outcome of running one application end to end on one target.

    Attributes:
        app: Application name (e.g. ``"hd-classification"``).
        target: Hardware target the application was compiled for.
        quality: Application-level quality of service (accuracy, recall,
            purity, ... — higher is better).
        quality_metric: Name of the quality metric.
        wall_seconds: Measured end-to-end wall-clock time of the HDC work.
        report: Merged execution report across all compiled-program calls.
        outputs: Application-specific extra outputs (predictions, trained
            class hypervectors, ...).
    """

    app: str
    target: str
    quality: float
    quality_metric: str
    wall_seconds: float
    report: ExecutionReport
    outputs: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"AppResult({self.app}, target={self.target}, "
            f"{self.quality_metric}={self.quality:.3f}, wall={self.wall_seconds * 1e3:.1f}ms)"
        )


def merge_reports(target: str, reports: list[ExecutionReport]) -> ExecutionReport:
    """Accumulate the execution reports of several compiled-program calls."""
    merged = ExecutionReport(target=target)
    for report in reports:
        merged.wall_seconds += report.wall_seconds
        merged.device_seconds += report.device_seconds
        merged.transfer_seconds += report.transfer_seconds
        merged.bytes_to_device += report.bytes_to_device
        merged.bytes_from_device += report.bytes_from_device
        merged.kernel_launches += report.kernel_launches
        merged.energy_joules += report.energy_joules
        for key, value in report.notes.items():
            if isinstance(value, (int, float)) and key in merged.notes:
                merged.notes[key] += value
            else:
                merged.notes[key] = value
    return merged


def bipolar_random(rows: int, cols: int, seed: int) -> np.ndarray:
    """A deterministic bipolar {+1, -1} matrix (random projection / item memory)."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 2, size=(rows, cols)) * 2 - 1).astype(np.float32)


def corrective_class_update(
    class_hvs: np.ndarray,
    encoded: np.ndarray,
    labels: np.ndarray,
    predicted: np.ndarray,
    name: str = "update",
) -> np.ndarray:
    """The shared HDC corrective training rule over a mini-batch.

    Bundle each encoding into its labelled class accumulator and subtract
    it from the class it was mistaken for — the single definition used by
    the online ``update_batch`` rules (classification, RelHD), so the
    corrective arithmetic stays bit-identical across applications.

    Args:
        class_hvs: ``(n_classes, D)`` class memories (not modified).
        encoded: ``(n, D)`` encodings to bundle.
        labels: ``(n,)`` true class indices (validated against n_classes).
        predicted: ``(n,)`` classes the serving path would have predicted.
        name: Model name for error messages.
    """
    class_hvs = np.asarray(class_hvs, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.size and int(labels.max()) >= class_hvs.shape[0]:
        raise ValueError(
            f"{name}: update label {int(labels.max())} out of range for "
            f"{class_hvs.shape[0]} classes"
        )
    updated = np.array(class_hvs, copy=True)
    np.add.at(updated, labels, encoded)
    wrong = np.asarray(predicted) != labels
    np.add.at(updated, np.asarray(predicted)[wrong], -encoded[wrong])
    return updated.astype(np.float32)
