"""HD-Clustering written in HDC++ (Table 2 of the paper).

HD-Clustering is k-means in hyperdimensional space (HDCluster): samples are
random-projection encoded once, cluster hypervectors are initialized from
encoded samples, and every iteration (1) assigns each sample to its most
similar cluster hypervector and (2) rebuilds every cluster hypervector by
bundling the encodings assigned to it.

The computationally intensive part — encoding and the per-iteration
assignment (which is exactly HDC inference) — is expressed with the
``encoding_loop`` / ``inference_loop`` stage primitives and therefore maps
onto the HDC accelerators, while the ancillary cluster-update step and the
initial random-projection generation stay on the host.  This partitioning
is the example the paper itself gives for why the stage primitives are
composable with host code (Section 3.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import hdcpp as H
from repro.apps.common import AppResult, bipolar_random, merge_reports
from repro.backends import compile as hdc_compile
from repro.datasets.isolet import IsoletLike
from repro.serving.servable import ALL_TARGETS, Servable, ShardSpec, servable_signature
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["HDClustering"]


@dataclass
class HDClustering:
    """HDC k-means clustering."""

    dimension: int = 2048
    n_clusters: int = 26
    iterations: int = 8
    seed: int = 3

    # ------------------------------------------------------------------ programs --
    def build_encode_program(self, n_samples: int, n_features: int) -> H.Program:
        """Program that random-projection encodes the whole dataset."""
        dim = self.dimension
        prog = H.Program("hd_clustering_encode")

        @prog.define(H.hv(n_features), H.hm(dim, n_features))
        def encode(features, rp_matrix):
            return H.sign(H.matmul(features, rp_matrix))

        @prog.entry(H.hm(n_samples, n_features), H.hm(dim, n_features))
        def main(samples, rp_matrix):
            return H.encoding_loop(encode, samples, rp_matrix)

        return prog

    def build_assign_program(self, n_samples: int) -> H.Program:
        """Program that assigns every encoded sample to its closest cluster.

        Samples are encoded once by the encoding program; each k-means
        iteration therefore only exercises the similarity search (HDC
        inference), on the GPU as one batched similarity call and on the
        accelerators through their Hamming units over the pre-encoded
        hypervectors.
        """
        dim, n_clusters = self.dimension, self.n_clusters
        prog = H.Program("hd_clustering_assign")

        @prog.define(H.hv(dim), H.hm(n_clusters, dim))
        def assign_one(encoded, clusters):
            distances = H.hamming_distance(H.sign(encoded), H.sign(clusters))
            return H.arg_min(distances)

        @prog.entry(H.hm(n_samples, dim), H.hm(n_clusters, dim))
        def main(encoded_samples, clusters):
            return H.inference_loop(assign_one, encoded_samples, clusters)

        return prog

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        dataset: IsoletLike,
        target: str = "cpu",
        config: Optional[ApproximationConfig] = None,
        samples: Optional[np.ndarray] = None,
        true_labels: Optional[np.ndarray] = None,
    ) -> AppResult:
        """Cluster the dataset on one hardware target.

        Quality is reported as *purity* against the ground-truth class
        labels (the standard external metric for HDCluster-style
        evaluations).
        """
        features = dataset.train_features if samples is None else samples
        labels = dataset.train_labels if true_labels is None else true_labels
        n_samples, n_features = features.shape

        encode_prog = self.build_encode_program(n_samples, n_features)
        assign_prog = self.build_assign_program(n_samples)
        encode_compiled = hdc_compile(encode_prog, target=target, config=config)
        assign_compiled = hdc_compile(assign_prog, target=target, config=config)

        rp_matrix = bipolar_random(self.dimension, n_features, seed=self.seed)
        rng = np.random.default_rng(self.seed)

        reports = []
        start = time.perf_counter()

        encode_result = encode_compiled.run(samples=features, rp_matrix=rp_matrix)
        reports.append(encode_result.report)
        encoded = np.asarray(encode_result.output, dtype=np.float32)

        # Initialize cluster hypervectors from encoded samples with a
        # k-means++-style farthest-first sweep (host-side ancillary work).
        clusters = _farthest_first_init(encoded, self.n_clusters, rng)

        assignments = np.zeros(n_samples, dtype=np.int64)
        iterations_run = 0
        for _ in range(self.iterations):
            iterations_run += 1
            assign_result = assign_compiled.run(encoded_samples=encoded, clusters=clusters)
            reports.append(assign_result.report)
            new_assignments = np.asarray(assign_result.output, dtype=np.int64)

            # Ancillary cluster update on the host: bundle the encodings
            # assigned to each cluster and re-binarize.
            for cluster in range(self.n_clusters):
                members = encoded[new_assignments == cluster]
                if members.shape[0] > 0:
                    clusters[cluster] = np.sign(members.sum(axis=0))
            if np.array_equal(new_assignments, assignments):
                assignments = new_assignments
                break
            assignments = new_assignments

        wall = time.perf_counter() - start
        purity = clustering_purity(assignments, labels, self.n_clusters)
        return AppResult(
            app="hd-clustering",
            target=target,
            quality=purity,
            quality_metric="purity",
            wall_seconds=wall,
            report=merge_reports(target, reports),
            outputs={
                "assignments": assignments,
                "clusters": clusters,
                "iterations_run": iterations_run,
            },
        )

    # ------------------------------------------------------------------ serving --
    def as_servable(
        self, rp_matrix: np.ndarray, clusters: np.ndarray, name: str = "hd-clustering"
    ) -> Servable:
        """Serve converged clusters (e.g. ``run(...)``'s ``clusters`` output).

        The served program encodes each raw feature vector and assigns it
        to its nearest cluster hypervector — the streaming "which cluster
        does this new sample belong to" query, with the k-means iterations
        left to offline fitting.  Both traced stages auto-vectorize on the
        batched execution plane (encoding as one GEMM + sign, assignment
        as one pairwise-Hamming + arg-min), gated per batch on boundary-row
        bit identity against the per-sample reference.
        """
        rp_matrix = np.asarray(rp_matrix, dtype=np.float32)
        clusters = np.asarray(clusters, dtype=np.float32)
        dim = self.dimension
        n_features = rp_matrix.shape[1]
        n_clusters = clusters.shape[0]

        def build_program(batch_size: int) -> H.Program:
            prog = H.Program(f"{name}_serve_b{batch_size}")

            @prog.define(H.hv(n_features), H.hm(dim, n_features))
            def encode(features, rp):
                return H.sign(H.matmul(features, rp))

            @prog.define(H.hv(dim), H.hm(n_clusters, dim))
            def assign_one(encoded, cluster_hvs):
                distances = H.hamming_distance(H.sign(encoded), H.sign(cluster_hvs))
                return H.arg_min(distances)

            @prog.entry(H.hm(batch_size, n_features), H.hm(dim, n_features), H.hm(n_clusters, dim))
            def main(samples, rp, cluster_hvs):
                encoded = H.encoding_loop(encode, samples, rp)
                return H.inference_loop(assign_one, encoded, cluster_hvs)

            return prog

        def build_partial(batch_size: int, n_rows: int) -> H.Program:
            """Partial Hamming distances against ``n_rows`` cluster rows."""
            prog = H.Program(f"{name}_shard{n_rows}_b{batch_size}")

            @prog.entry(H.hm(batch_size, n_features), H.hm(dim, n_features), H.hm(n_rows, dim))
            def main(samples, rp, cluster_hvs):
                encoded = H.sign(H.matmul(samples, rp))
                return H.hamming_distance(H.sign(encoded), H.sign(cluster_hvs))

            return prog

        def append_batch(bound: dict, rows: np.ndarray) -> dict:
            # Rows are new cluster hypervectors (dim,), e.g. centroids
            # promoted from an offline fit of fresh data; appending them is
            # exactly how the offline path would extend the cluster bank.
            new_hvs = np.asarray(rows, dtype=np.float32)
            grown = dict(bound)
            grown["cluster_hvs"] = np.concatenate(
                [np.asarray(bound["cluster_hvs"]), new_hvs], axis=0
            )
            return grown

        def rebuild(grown: dict) -> Servable:
            return self.as_servable(
                np.asarray(grown["rp"]), np.asarray(grown["cluster_hvs"]), name=name
            )

        constants = {"rp": rp_matrix, "cluster_hvs": clusters}
        return Servable(
            name=name,
            build_program=build_program,
            constants=constants,
            query_param="samples",
            sample_shape=(n_features,),
            signature=servable_signature(name, (n_features,), constants, extra=f"dim={dim}"),
            supported_targets=ALL_TARGETS,
            shard_spec=ShardSpec(param="cluster_hvs", build_partial=build_partial, reduce="argmin"),
            append_batch=append_batch,
            growable=("cluster_hvs",),
            rebuild=rebuild,
            append_row_shape=(dim,),
            description=f"HDC cluster assignment, D={dim}, k={n_clusters}",
        )


def _farthest_first_init(
    encoded: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Pick initial cluster hypervectors that are mutually far apart."""
    n_samples = encoded.shape[0]
    chosen = [int(rng.integers(0, n_samples))]
    # Hamming distance between bipolar vectors is proportional to -dot.
    min_similarity = encoded @ encoded[chosen[0]]
    for _ in range(1, n_clusters):
        candidate = int(np.argmin(min_similarity))
        chosen.append(candidate)
        min_similarity = np.maximum(min_similarity, encoded @ encoded[candidate])
    return encoded[chosen].copy()


def clustering_purity(assignments: np.ndarray, labels: np.ndarray, n_clusters: int) -> float:
    """Cluster purity: fraction of samples in their cluster's majority class."""
    total = 0
    for cluster in range(n_clusters):
        members = labels[assignments == cluster]
        if members.size:
            total += np.bincount(members).max()
    return float(total) / float(labels.size)
