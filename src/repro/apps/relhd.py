"""RelHD written in HDC++ (Table 2 of the paper).

RelHD performs GNN-style learning with HDC: every node of a citation graph
is represented by the combination of its own encoded features and the
bundled encodings of its graph neighbourhood ("graph neighbour encoding"),
and node labels are learned with the usual HDC class-hypervector training.

The pipeline is split exactly as the paper describes for applications that
only partially map to HDC primitives:

* feature encoding of all nodes uses the ``encoding_loop`` stage primitive
  (random projection + sign);
* the sparse, graph-dependent neighbour aggregation is ancillary host code;
* class training and test-node inference use the ``training_loop`` /
  ``inference_loop`` stage primitives over the aggregated node
  hypervectors.

RelHD runs on the CPU and GPU targets only (its neighbour encoding is not a
coarse-grain operation of the HDC accelerators), matching the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import hdcpp as H
from repro.apps.common import (
    AppResult,
    bipolar_random,
    corrective_class_update,
    merge_reports,
)
from repro.backends import compile as hdc_compile
from repro.datasets.cora import CitationGraph
from repro.serving.servable import HOST_TARGETS, Servable, ShardSpec
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["RelHD"]


@dataclass
class RelHD:
    """Graph node classification with HDC (RelHD)."""

    dimension: int = 4096
    epochs: int = 3
    #: Weight of a node's own encoding relative to one neighbour's.
    self_weight: float = 2.0
    seed: int = 17

    # ------------------------------------------------------------------ programs --
    def build_encode_program(self, n_nodes: int, n_features: int) -> H.Program:
        dim = self.dimension
        prog = H.Program("relhd_encode")

        @prog.define(H.hv(n_features), H.hm(dim, n_features))
        def encode(features, rp_matrix):
            return H.sign(H.matmul(features, rp_matrix))

        @prog.entry(H.hm(n_nodes, n_features), H.hm(dim, n_features))
        def main(node_features, rp_matrix):
            return H.encoding_loop(encode, node_features, rp_matrix)

        return prog

    def build_classify_program(self, n_train: int, n_test: int, n_classes: int) -> H.Program:
        dim, epochs = self.dimension, self.epochs
        prog = H.Program("relhd_classify")

        @prog.define(H.hv(dim), H.hm(n_classes, dim))
        def infer_one(node_encoding, classes):
            distances = H.hamming_distance(H.sign(node_encoding), H.sign(classes))
            return H.arg_min(distances)

        def train_one(node_encoding, label, classes):
            encoded = np.sign(np.asarray(node_encoding))
            bipolar_classes = np.sign(np.asarray(classes))
            distances = np.count_nonzero(bipolar_classes != encoded[None, :], axis=1)
            predicted = int(distances.argmin())
            updated = np.array(classes, copy=True)
            updated[label] += encoded
            if predicted != label:
                updated[predicted] -= encoded
            return updated

        def train_batch(node_encodings, labels, classes):
            """Mini-batched form of the same update rule (used by the GPU)."""
            encoded = np.sign(np.asarray(node_encodings, dtype=np.float32))
            distances = np.asarray(H.hamming_distance(encoded, H.sign(classes)))
            predicted = distances.argmin(axis=1)
            updated = np.array(classes, copy=True)
            np.add.at(updated, np.asarray(labels), encoded)
            wrong = predicted != np.asarray(labels)
            np.add.at(updated, predicted[wrong], -encoded[wrong])
            return updated

        @prog.entry(
            H.hm(n_train, dim),
            H.IndexVectorType(n_train),
            H.hm(n_test, dim),
            H.hm(n_classes, dim),
        )
        def main(train_encodings, train_labels, test_encodings, classes):
            trained = H.training_loop(
                train_one, train_encodings, train_labels, classes, epochs=epochs, batch_impl=train_batch
            )
            predictions = H.inference_loop(infer_one, test_encodings, trained)
            return predictions, trained

        return prog

    # ----------------------------------------------------------- host aggregation --
    def aggregate_neighbours(self, encoded: np.ndarray, graph: CitationGraph) -> np.ndarray:
        """Graph-neighbour encoding: bundle a node with its neighbourhood."""
        aggregated = self.self_weight * encoded.astype(np.float32)
        for node, neighbours in enumerate(graph.adjacency_lists()):
            if neighbours:
                aggregated[node] += encoded[neighbours].sum(axis=0)
        return np.where(aggregated >= 0, 1.0, -1.0).astype(np.float32)

    # ------------------------------------------------------------------ driver --
    def run(
        self,
        graph: CitationGraph,
        target: str = "cpu",
        config: Optional[ApproximationConfig] = None,
    ) -> AppResult:
        """Train on the labelled nodes and classify the held-out nodes."""
        encode_prog = self.build_encode_program(graph.n_nodes, graph.n_features)
        classify_prog = self.build_classify_program(
            graph.train_nodes.size, graph.test_nodes.size, graph.n_classes
        )
        encode_compiled = hdc_compile(encode_prog, target=target, config=config)
        classify_compiled = hdc_compile(classify_prog, target=target, config=config)

        rp_matrix = bipolar_random(self.dimension, graph.n_features, seed=self.seed)
        initial_classes = np.zeros((graph.n_classes, self.dimension), dtype=np.float32)

        reports = []
        start = time.perf_counter()

        encode_result = encode_compiled.run(node_features=graph.features, rp_matrix=rp_matrix)
        reports.append(encode_result.report)
        encoded = np.asarray(encode_result.output, dtype=np.float32)

        aggregated = self.aggregate_neighbours(encoded, graph)

        classify_result = classify_compiled.run(
            train_encodings=aggregated[graph.train_nodes],
            train_labels=graph.labels[graph.train_nodes],
            test_encodings=aggregated[graph.test_nodes],
            classes=initial_classes,
        )
        reports.append(classify_result.report)
        wall = time.perf_counter() - start

        entry = classify_prog.entry_function
        predictions = np.asarray(classify_result.outputs[entry.results[0].name], dtype=np.int64)
        accuracy = float((predictions == graph.labels[graph.test_nodes]).mean())
        return AppResult(
            app="relhd",
            target=target,
            quality=accuracy,
            quality_metric="accuracy",
            wall_seconds=wall,
            report=merge_reports(target, reports),
            outputs={"predictions": predictions},
        )

    # ------------------------------------------------------------------ serving --
    def as_servable(self, classes: np.ndarray, name: str = "relhd") -> Servable:
        """Serve trained node classification over aggregated encodings.

        Requests carry graph-neighbour-aggregated node hypervectors (the
        output of :meth:`aggregate_neighbours`, the sparse host-side step);
        the served program performs the Hamming similarity search against
        the trained class memories.  CPU/GPU only, matching the paper.
        The traced search auto-vectorizes on the batched execution plane
        (one pairwise-Hamming + arg-min over the whole micro-batch), gated
        per batch on boundary-row bit identity against the per-node
        reference.

        The servable is **online-updatable**: its ``update_batch`` rule is
        the mini-batched form of the RelHD training step (bundle each
        signed encoding into its labelled class, subtract it from a
        mistaken prediction), so ``InferenceServer.update`` hot-swaps in
        continued training on newly labelled nodes with zero downtime.
        """
        classes = np.asarray(classes, dtype=np.float32)
        dim = self.dimension
        n_classes = classes.shape[0]

        def build_program(batch_size: int) -> H.Program:
            prog = H.Program(f"{name}_serve_b{batch_size}")

            @prog.define(H.hv(dim), H.hm(n_classes, dim))
            def infer_one(node_encoding, class_hvs):
                distances = H.hamming_distance(H.sign(node_encoding), H.sign(class_hvs))
                return H.arg_min(distances)

            @prog.entry(H.hm(batch_size, dim), H.hm(n_classes, dim))
            def main(node_encodings, class_hvs):
                return H.inference_loop(infer_one, node_encodings, class_hvs)

            return prog

        def build_partial(batch_size: int, n_rows: int) -> H.Program:
            """Partial Hamming distances against ``n_rows`` class rows."""
            prog = H.Program(f"{name}_shard{n_rows}_b{batch_size}")

            @prog.entry(H.hm(batch_size, dim), H.hm(n_rows, dim))
            def main(node_encodings, class_hvs):
                return H.hamming_distance(H.sign(node_encodings), H.sign(class_hvs))

            return prog

        def update_batch(constants: dict, node_encodings: np.ndarray, labels: np.ndarray) -> dict:
            """Mini-batched RelHD training step over the bound class memories.

            The corrective prediction uses ``H.sign`` (zero maps to +1),
            matching the *served* inference path exactly — aggregated
            neighbour encodings routinely contain exact zeros, and the
            class a correction targets must be the class the deployment
            would actually have predicted.
            """
            class_hvs = np.asarray(constants["class_hvs"], dtype=np.float32)
            encoded = np.asarray(
                H.sign(np.asarray(node_encodings, dtype=np.float32)), dtype=np.float32
            )
            distances = np.asarray(H.hamming_distance(encoded, H.sign(class_hvs)))
            predicted = distances.argmin(axis=1)
            updated = corrective_class_update(class_hvs, encoded, labels, predicted, name=name)
            return {**constants, "class_hvs": updated}

        constants = {"class_hvs": classes}
        return Servable(
            name=name,
            build_program=build_program,
            constants=constants,
            query_param="node_encodings",
            sample_shape=(dim,),
            # signature_extra (not an explicit signature) so online updates
            # re-derive a collision-free identity from the new constants.
            signature_extra=f"dim={dim}",
            supported_targets=HOST_TARGETS,
            shard_spec=ShardSpec(param="class_hvs", build_partial=build_partial, reduce="argmin"),
            update_batch=update_batch,
            description=f"RelHD node classification, D={dim}",
        )
