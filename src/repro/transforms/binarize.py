"""Automatic binarization propagation (Algorithm 1 of the paper).

HDC is robust to severe quantization: mapping hypervector elements to
bipolar ``{+1, -1}`` values barely affects application quality while
shrinking data movement by 32x and turning similarity computations into
bit-wise operations.  Doing this by hand requires rewriting every affected
allocation and operation; HPVM-HDC instead performs an inter-procedural
taint analysis seeded at ``hdc.sign`` operations and rewrites everything
the taint reaches.

The transform follows Algorithm 1:

1. the work list is initialised with every ``sign`` operation;
2. an operation popped from the work list joins the *tainted* set;
3. for element-wise operations both inputs and outputs are tainted; for
   reduction operations only the output is tainted unless
   ``binarize_reduce`` is set, in which case inputs are tainted as well
   (at ``reduce_input_type`` precision, mirroring configuration IV of
   Table 3 which casts input features to 32-bit integers);
4. tainting a value schedules its producer and users onto the work list;
5. finally every tainted operation/allocation is rewritten to the reduced
   bit-width representation.

One clarification relative to the paper's prose: the *outputs* of the
similarity reductions (``hamming_distance``, ``cossim``) and of ``l2norm``
are similarity/score vectors, not hypervectors, so they are never
binarized — the taint stops there (this matches configuration III, whose
binarized values are the class and encoded hypervectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdcpp.program import Operation, Program, Value
from repro.hdcpp.types import (
    ElementType,
    HyperMatrixType,
    HyperVectorType,
    binary,
    int32,
)
from repro.ir.ops import OP_INFO, Opcode, infer_result_type

__all__ = ["AutomaticBinarization", "BinarizationReport"]

#: Reduce primitives whose outputs are similarity scores and therefore are
#: never binarized by the taint propagation.
_SCORE_OUTPUT_OPS = {Opcode.COSSIM, Opcode.HAMMING_DISTANCE, Opcode.L2NORM}

#: Initialization opcodes whose ``element`` attribute must track binarized
#: results (the "allocation updates" of Algorithm 1).
_INIT_OPS = {
    Opcode.EMPTY_HYPERVECTOR,
    Opcode.EMPTY_HYPERMATRIX,
    Opcode.CREATE_HYPERVECTOR,
    Opcode.CREATE_HYPERMATRIX,
    Opcode.RANDOM_HYPERVECTOR,
    Opcode.RANDOM_HYPERMATRIX,
    Opcode.GAUSSIAN_HYPERVECTOR,
    Opcode.GAUSSIAN_HYPERMATRIX,
}


@dataclass
class BinarizationReport:
    """Summary of one automatic-binarization run."""

    tainted_ops: int = 0
    binarized_values: int = 0
    binarized_params: list[str] = field(default_factory=list)
    bytes_before: float = 0.0
    bytes_after: float = 0.0

    @property
    def data_movement_reduction(self) -> float:
        """Ratio of logical bytes before vs. after binarization."""
        if self.bytes_after == 0:
            return 1.0
        return self.bytes_before / self.bytes_after

    def __repr__(self) -> str:
        return (
            f"BinarizationReport(tainted_ops={self.tainted_ops}, "
            f"binarized_values={self.binarized_values}, "
            f"data_movement_reduction={self.data_movement_reduction:.1f}x)"
        )


def _is_hyper(value: Value) -> bool:
    return isinstance(value.type, (HyperVectorType, HyperMatrixType))


class AutomaticBinarization:
    """The automatic binarization pass (Algorithm 1).

    Args:
        binarized_type: Element type tainted hypervectors are rewritten to
            (1-bit bipolar by default).
        binarize_reduce: Also reduce the precision of the *inputs* of
            reduction primitives ("more aggressive binarization").
        reduce_input_type: Element type used for reduce-op inputs when
            ``binarize_reduce`` is enabled.
    """

    name = "automatic-binarization"

    def __init__(
        self,
        binarized_type: ElementType = binary,
        binarize_reduce: bool = False,
        reduce_input_type: ElementType = int32,
    ):
        self.binarized_type = binarized_type
        self.binarize_reduce = binarize_reduce
        self.reduce_input_type = reduce_input_type

    # -- the public pass entry point ------------------------------------------------
    def run(self, program: Program) -> BinarizationReport:
        """Run the taint analysis and rewrite ``program`` in place."""
        report = BinarizationReport()

        uses = self._build_use_map(program)
        retype: dict[int, ElementType] = {}
        values_by_id: dict[int, Value] = {}
        worklist: list[Operation] = [
            op for op in program.all_operations() if op.opcode == Opcode.SIGN
        ]
        tainted: set[int] = set()

        def taint_value(value: Value, element: ElementType) -> None:
            if not _is_hyper(value):
                return
            if value.type.element.is_binary and element.is_binary:
                return
            previous = retype.get(value.id)
            if previous is not None and previous.bits <= element.bits:
                return
            retype[value.id] = element
            values_by_id[value.id] = value
            producer = value.producer
            if producer is not None and id(producer) not in {id(o) for o in worklist}:
                worklist.append(producer)
            for user in uses.get(value.id, []):
                worklist.append(user)

        def drain_worklist() -> None:
            while worklist:
                op = worklist.pop()
                if id(op) in tainted:
                    continue
                tainted.add(id(op))
                info = OP_INFO.get(op.opcode)
                if info is None or not info.binarizable:
                    continue
                self._process_op(op, retype, taint_value)

        drain_worklist()
        # Inter-procedural propagation: stage primitives and parallel maps
        # reference implementation functions whose parameters correspond to
        # the stage operands; keep both sides consistent until a fixpoint.
        while self._sync_interprocedural(program, retype, taint_value):
            drain_worklist()

        report.tainted_ops = len(tainted)
        report.binarized_values = len(retype)
        report.bytes_before = sum(values_by_id[vid].type.num_bytes for vid in retype)

        self._rewrite(program, retype, report)

        report.bytes_after = sum(values_by_id[vid].type.num_bytes for vid in retype)
        return report

    def _process_op(self, op: Operation, retype: dict, taint_value) -> None:
        """Apply the Algorithm 1 taint rules to one tainted operation."""
        info = OP_INFO[op.opcode]
        if info.is_reduce:
            if self.binarize_reduce:
                for operand in op.operands:
                    taint_value(operand, self.reduce_input_type)
            elif op.opcode in (Opcode.COSSIM, Opcode.HAMMING_DISTANCE) and any(
                retype.get(v.id, v.type.element).is_binary for v in op.operands
            ):
                # A similarity between a binarized and a full-precision
                # operand is meaningless; once one side of the comparison
                # is 1-bit, the other side (e.g. the class hypermatrix of
                # configuration III) is binarized as well so the packed
                # Hamming kernel applies to both.
                for operand in op.operands:
                    taint_value(operand, self.binarized_type)
            if op.opcode not in _SCORE_OUTPUT_OPS and op.result is not None:
                taint_value(op.result, self.binarized_type)
        else:
            for operand in op.operands:
                taint_value(operand, self.binarized_type)
            if op.result is not None:
                taint_value(op.result, self.binarized_type)

    # Stage / parallel-map opcodes and the index of the first operand that
    # corresponds to the implementation function's first parameter.
    _CROSS_PROCEDURE_OPS = (
        Opcode.ENCODING_LOOP,
        Opcode.INFERENCE_LOOP,
        Opcode.TRAINING_LOOP,
        Opcode.PARALLEL_MAP,
    )

    def _sync_interprocedural(self, program: Program, retype: dict, taint_value) -> bool:
        """Propagate taint between stage operands and implementation params.

        The stage primitives reference user implementation functions; the
        stage's operands are passed (row-wise for the queries operand) as the
        implementation's parameters, so a binarized parameter implies the
        corresponding whole-dataset operand is binarized and vice versa.
        Returns ``True`` when any new value was tainted.
        """
        changed = False
        before = dict(retype)
        for op in program.all_operations():
            if op.opcode not in self._CROSS_PROCEDURE_OPS:
                continue
            impl_name = op.attrs.get("impl")
            if impl_name is None:
                continue
            impl = program.function(impl_name)
            pairs = list(zip(op.operands, impl.params))
            if op.result is not None and impl.results:
                pairs.append((op.result, impl.results[0]))
            for outer, inner in pairs:
                if inner.id in retype and outer.id not in retype:
                    taint_value(outer, retype[inner.id])
                elif outer.id in retype and inner.id not in retype:
                    taint_value(inner, retype[outer.id])
        if retype != before:
            changed = True
        return changed

    # -- helpers ----------------------------------------------------------------------
    @staticmethod
    def _build_use_map(program: Program) -> dict[int, list[Operation]]:
        uses: dict[int, list[Operation]] = {}
        for op in program.all_operations():
            for operand in op.operands:
                uses.setdefault(operand.id, []).append(op)
        return uses

    def _rewrite(
        self,
        program: Program,
        retype: dict[int, ElementType],
        report: BinarizationReport,
    ) -> None:
        """Apply the element-type rewrites and fix up derived types."""
        # 1. Rewrite the element type of every tainted value.
        for fn in program.functions.values():
            for param in fn.params:
                if param.id in retype:
                    param.type = param.type.with_element(retype[param.id])
                    report.binarized_params.append(f"{fn.name}.{param.name}")
            for op in fn.ops:
                if op.result is not None and op.result.id in retype:
                    op.result.type = op.result.type.with_element(retype[op.result.id])

        # 2. Update allocation attributes (Algorithm 1's allocation rewrites)
        #    and re-infer result types so shapes/elements stay consistent.
        for fn in program.functions.values():
            for op in fn.ops:
                if op.result is None:
                    continue
                if op.opcode in _INIT_OPS and op.result.id in retype:
                    op.attrs["element"] = retype[op.result.id]
                if op.opcode == Opcode.TYPE_CAST and op.result.id in retype:
                    op.attrs["element"] = retype[op.result.id]
                inferred = infer_result_type(op.opcode, op.operand_types(), op.attrs)
                if op.result.id in retype:
                    op.result.type = inferred.with_element(retype[op.result.id])
                else:
                    op.result.type = inferred
