"""Reduction perforation (Section 4.2 of the paper).

Reduction operators — ``matmul`` (random projection encoding),
``hamming_distance`` / ``cossim`` (similarity search) and ``l2norm`` — are
the dominant cost of HDC applications.  Because HDC is error resilient it is
often sufficient to compute them approximately by skipping elements along
the reduction axis, either as a *segmented* reduction (a contiguous
sub-range) or a *strided* reduction (every ``stride``-th element), or both.

Programmers request perforation with the ``red_perf(result, begin, end,
stride)`` directive; this pass folds the directive's parameters into the
producing reduction operation (as ``perf_begin`` / ``perf_end`` /
``perf_stride`` attributes consumed by the back ends) and removes the
directive.  Perforation can also be requested *externally* through
:class:`PerforationSpec` entries in the approximation configuration — this
is how the Table 3 / Figure 7 sweeps explore configurations with "1–2 lines
of code" changes without touching the application source at all.

Scaling semantics follow the paper: ``hamming_distance`` and ``cossim``
results are left unscaled (only relative magnitudes matter), while
``matmul`` and ``l2norm`` results are rescaled by the inverse of the
visited fraction (their absolute magnitudes matter).  The scaling itself is
implemented inside the kernels; this pass only records the perforation
window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hdcpp.program import Operation, Program
from repro.ir.ops import OP_INFO, Opcode

__all__ = ["PerforationSpec", "ReductionPerforation", "PerforationReport"]

_PERFORATABLE = {op for op, info in OP_INFO.items() if info.is_reduce}

_OPCODE_BY_NAME = {
    "matmul": Opcode.MATMUL,
    "cossim": Opcode.COSSIM,
    "hamming_distance": Opcode.HAMMING_DISTANCE,
    "l2norm": Opcode.L2NORM,
}


@dataclass(frozen=True)
class PerforationSpec:
    """An externally supplied perforation request.

    Attributes:
        opcode: Which reduction primitive to perforate (``"matmul"``,
            ``"cossim"``, ``"hamming_distance"`` or ``"l2norm"``, or the
            corresponding :class:`Opcode`).
        begin: First element of the reduction range (inclusive).
        end: Last element of the reduction range (exclusive); ``None``
            means the full hypervector length.
        stride: Step between sampled elements.
        function: Restrict the spec to operations inside this traced
            function (``None`` applies everywhere).
    """

    opcode: object
    begin: int = 0
    end: Optional[int] = None
    stride: int = 1
    function: Optional[str] = None

    def resolved_opcode(self) -> Opcode:
        if isinstance(self.opcode, Opcode):
            return self.opcode
        return _OPCODE_BY_NAME[str(self.opcode)]


@dataclass
class PerforationReport:
    """Summary of one reduction-perforation run."""

    folded_directives: int = 0
    applied_specs: int = 0
    perforated_ops: list[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"PerforationReport(directives={self.folded_directives}, "
            f"specs={self.applied_specs}, ops={self.perforated_ops})"
        )


class ReductionPerforation:
    """Fold ``red_perf`` directives and external specs into reduce ops."""

    name = "reduction-perforation"

    def __init__(self, specs: Optional[list[PerforationSpec]] = None):
        self.specs = list(specs or [])

    def run(self, program: Program) -> PerforationReport:
        report = PerforationReport()
        for fn_name, fn in program.functions.items():
            kept_ops: list[Operation] = []
            for op in fn.ops:
                if op.opcode != Opcode.RED_PERF:
                    kept_ops.append(op)
                    continue
                target = op.operands[0]
                producer = target.producer
                if producer is None or producer.opcode not in _PERFORATABLE:
                    raise ValueError(
                        f"{fn_name}: red_perf annotates %{target.name}, which is not produced "
                        "by a perforatable reduction primitive"
                    )
                self._apply(producer, op.attrs["begin"], op.attrs["end"], op.attrs["stride"])
                report.folded_directives += 1
                report.perforated_ops.append(f"{fn_name}:{producer.opcode.value}")
            fn.ops = kept_ops

        for spec in self.specs:
            opcode = spec.resolved_opcode()
            for fn_name, fn in program.functions.items():
                if spec.function is not None and fn_name != spec.function:
                    continue
                for op in fn.ops:
                    if op.opcode != opcode:
                        continue
                    self._apply(op, spec.begin, spec.end, spec.stride)
                    report.applied_specs += 1
                    report.perforated_ops.append(f"{fn_name}:{op.opcode.value}")
        return report

    @staticmethod
    def _apply(op: Operation, begin: int, end: Optional[int], stride: int) -> None:
        op.attrs["perf_begin"] = int(begin)
        op.attrs["perf_end"] = None if end is None else int(end)
        op.attrs["perf_stride"] = int(stride)
