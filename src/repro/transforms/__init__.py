"""HDC approximation optimizations of HPVM-HDC (Section 4.2 of the paper).

Two domain-specific, approximation-based transforms are provided:

* :mod:`repro.transforms.binarize` — **automatic binarization**: a
  work-list taint analysis seeded at ``sign`` operations that rewrites
  tainted hypervectors, hypermatrices and operations to a reduced
  bit-width (1-bit bipolar by default), as described by Algorithm 1.
* :mod:`repro.transforms.perforation` — **reduction perforation**: folds
  ``red_perf`` directives (and externally supplied perforation
  specifications) into the reduction primitives they annotate, producing
  segmented / strided reductions.

Both transforms operate on the HPVM-HDC operation stream of a (cloned)
program before it is lowered to the dataflow graph; the
:class:`~repro.transforms.pipeline.PassPipeline` orchestrates them and
re-verifies the IR after every pass.
"""

from repro.transforms.binarize import AutomaticBinarization, BinarizationReport
from repro.transforms.perforation import PerforationSpec, ReductionPerforation, PerforationReport
from repro.transforms.pipeline import ApproximationConfig, PassPipeline, PassReport

__all__ = [
    "AutomaticBinarization",
    "BinarizationReport",
    "ReductionPerforation",
    "PerforationSpec",
    "PerforationReport",
    "ApproximationConfig",
    "PassPipeline",
    "PassReport",
]
