"""Pass management and approximation configuration.

The HPVM-HDC compilation workflow (Figure 4 of the paper) optionally runs
the HDC approximation transforms between frontend lowering and back-end
code generation.  :class:`ApproximationConfig` captures the user-facing
knobs — the automatic-binarization compiler flag and any reduction
perforation requests — and :class:`PassPipeline` executes the corresponding
passes in order, verifying the IR after each one.

Approximation configurations are deliberately tiny value objects: the
Figure 7 sweep builds ten of them (Table 3) and compiles the *same* traced
application under each, which is exactly the "seconds instead of hours"
programmability argument of Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.hdcpp.program import Program
from repro.hdcpp.types import ElementType, binary, int32
from repro.ir.verifier import verify_program
from repro.transforms.binarize import AutomaticBinarization
from repro.transforms.perforation import PerforationSpec, ReductionPerforation

__all__ = ["ApproximationConfig", "PassPipeline", "PassReport"]


@dataclass(frozen=True)
class ApproximationConfig:
    """User-facing approximation knobs for one compilation.

    Attributes:
        binarize: Enable automatic binarization (the ``-hdc-binarize``
            compiler flag of the paper).
        binarize_reduce: More aggressive variant that also reduces the
            precision of reduce-op inputs (configuration IV of Table 3).
        binarized_type: Element type used for binarized values.
        reduce_input_type: Element type used for reduce-op inputs under
            ``binarize_reduce``.
        perforations: External reduction-perforation requests applied on
            top of any ``red_perf`` directives present in the source.
    """

    binarize: bool = False
    binarize_reduce: bool = False
    binarized_type: ElementType = binary
    reduce_input_type: ElementType = int32
    perforations: tuple[PerforationSpec, ...] = ()

    @staticmethod
    def none() -> "ApproximationConfig":
        """The identity configuration (no approximation)."""
        return ApproximationConfig()

    def with_perforation(self, *specs: PerforationSpec) -> "ApproximationConfig":
        """Return a copy with additional perforation specs appended."""
        return ApproximationConfig(
            binarize=self.binarize,
            binarize_reduce=self.binarize_reduce,
            binarized_type=self.binarized_type,
            reduce_input_type=self.reduce_input_type,
            perforations=tuple(self.perforations) + tuple(specs),
        )

    @property
    def is_identity(self) -> bool:
        return not self.binarize and not self.perforations

    def build_passes(self) -> list:
        """Instantiate the transform passes implied by this configuration."""
        passes: list = []
        # Perforation directives present in the source must be folded even
        # when the configuration itself requests nothing.
        passes.append(ReductionPerforation(list(self.perforations)))
        if self.binarize:
            passes.append(
                AutomaticBinarization(
                    binarized_type=self.binarized_type,
                    binarize_reduce=self.binarize_reduce,
                    reduce_input_type=self.reduce_input_type,
                )
            )
        return passes


@dataclass
class PassReport:
    """Reports produced by each executed pass, keyed by pass name."""

    reports: dict[str, object] = field(default_factory=dict)

    def __getitem__(self, name: str):
        return self.reports[name]

    def __contains__(self, name: str) -> bool:
        return name in self.reports


class PassPipeline:
    """Run a sequence of IR transforms over a program, verifying after each."""

    def __init__(self, passes: Optional[Sequence] = None, verify: bool = True):
        self.passes = list(passes or [])
        self.verify = verify

    @classmethod
    def from_config(cls, config: ApproximationConfig, verify: bool = True) -> "PassPipeline":
        return cls(config.build_passes(), verify=verify)

    def run(self, program: Program) -> PassReport:
        """Run every pass in order, mutating ``program`` in place."""
        report = PassReport()
        if self.verify:
            verify_program(program)
        for pass_ in self.passes:
            report.reports[pass_.name] = pass_.run(program)
            if self.verify:
                verify_program(program)
        return report
