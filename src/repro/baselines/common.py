"""Shared result type for the baseline implementations."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BaselineResult"]


@dataclass
class BaselineResult:
    """Outcome of one baseline run (quality + measured wall-clock time)."""

    app: str
    style: str
    quality: float
    quality_metric: str
    wall_seconds: float
    outputs: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"BaselineResult({self.app}/{self.style}, "
            f"{self.quality_metric}={self.quality:.3f}, wall={self.wall_seconds * 1e3:.1f}ms)"
        )
