"""HD-Classification — optimized "CUDA-style" GPU baseline.

The original GPU baseline is hand-written CUDA C++: encoding is one large
GEMM, similarity search is a batched matrix product followed by a parallel
arg-reduction, and training updates are applied with scatter-add kernels.
Offline that structure is reproduced with fully vectorized NumPy — each
statement below corresponds to one CUDA kernel / cuBLAS call of the
original, which is what makes it the appropriate comparison point for the
HPVM-HDC GPU back end in Figure 5.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _encode_batch(samples: np.ndarray, rp_matrix: np.ndarray) -> np.ndarray:
    # cuBLAS GEMM + sign kernel
    return np.sign(samples @ rp_matrix.T).astype(np.float32)


def _hamming_batch(encoded: np.ndarray, classes: np.ndarray) -> np.ndarray:
    # One GEMM against the bipolar class matrix; for bipolar data
    # hamming = (D - dot) / 2, the same trick the CUDA kernel uses.
    bipolar = np.sign(classes)
    bipolar[bipolar == 0] = 1.0
    dots = encoded @ bipolar.T
    return (encoded.shape[1] - dots) / 2.0


def run(dataset, dimension: int = 2048, epochs: int = 5, seed: int = 1, batch_size: int = 256) -> BaselineResult:
    """Train and evaluate the batched baseline HDC classifier."""
    rng = np.random.default_rng(seed)
    rp_matrix = (rng.integers(0, 2, size=(dimension, dataset.n_features)) * 2 - 1).astype(np.float32)
    classes = np.zeros((dataset.n_classes, dimension), dtype=np.float32)

    start = time.perf_counter()

    train_encoded = _encode_batch(dataset.train_features, rp_matrix)
    for _ in range(epochs):
        # Mini-batched training: predictions for the whole batch are computed
        # with one GEMM, then the class updates are applied with scatter-adds.
        for begin in range(0, train_encoded.shape[0], batch_size):
            batch = train_encoded[begin : begin + batch_size]
            labels = dataset.train_labels[begin : begin + batch_size]
            predicted = _hamming_batch(batch, classes).argmin(axis=1)
            np.add.at(classes, labels, batch)
            wrong = predicted != labels
            np.add.at(classes, predicted[wrong], -batch[wrong])

    test_encoded = _encode_batch(dataset.test_features, rp_matrix)
    predictions = _hamming_batch(test_encoded, classes).argmin(axis=1)

    wall = time.perf_counter() - start
    accuracy = float((predictions == dataset.test_labels).mean())
    return BaselineResult(
        app="hd-classification",
        style="cuda",
        quality=accuracy,
        quality_metric="accuracy",
        wall_seconds=wall,
        outputs={"predictions": predictions},
    )
