"""RelHD — Python/NumPy CPU baseline.

Per-node loop implementation of RelHD's graph-neighbour encoding, training
and inference, standing in for the interpreted Python CPU baseline.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _encode_node(features, rp_matrix):
    projected = np.zeros(rp_matrix.shape[0], dtype=np.float32)
    for row in range(rp_matrix.shape[0]):
        projected[row] = np.dot(rp_matrix[row], features)
    return np.where(projected >= 0, 1.0, -1.0)


def _predict(encoding, classes):
    best_class, best_distance = 0, None
    bipolar = np.where(classes >= 0, 1.0, -1.0)
    for idx in range(classes.shape[0]):
        distance = float(np.count_nonzero(encoding != bipolar[idx]))
        if best_distance is None or distance < best_distance:
            best_class, best_distance = idx, distance
    return best_class


def run(graph, dimension: int = 4096, epochs: int = 3, self_weight: float = 2.0, seed: int = 17) -> BaselineResult:
    """Train on labelled nodes and classify held-out nodes."""
    rng = np.random.default_rng(seed)
    rp_matrix = (rng.integers(0, 2, size=(dimension, graph.n_features)) * 2 - 1).astype(np.float32)

    start = time.perf_counter()

    encoded = np.zeros((graph.n_nodes, dimension), dtype=np.float32)
    for node in range(graph.n_nodes):
        encoded[node] = _encode_node(graph.features[node], rp_matrix)

    aggregated = np.zeros_like(encoded)
    for node in range(graph.n_nodes):
        combined = self_weight * encoded[node]
        for neighbour in graph.neighbors(node):
            combined = combined + encoded[neighbour]
        aggregated[node] = np.where(combined >= 0, 1.0, -1.0)

    classes = np.zeros((graph.n_classes, dimension), dtype=np.float32)
    for _ in range(epochs):
        for node in graph.train_nodes:
            label = graph.labels[node]
            predicted = _predict(aggregated[node], classes)
            classes[label] += aggregated[node]
            if predicted != label:
                classes[predicted] -= aggregated[node]

    predictions = np.zeros(graph.test_nodes.size, dtype=np.int64)
    for index, node in enumerate(graph.test_nodes):
        predictions[index] = _predict(aggregated[node], classes)

    wall = time.perf_counter() - start
    accuracy = float((predictions == graph.labels[graph.test_nodes]).mean())
    return BaselineResult(
        app="relhd",
        style="python",
        quality=accuracy,
        quality_metric="accuracy",
        wall_seconds=wall,
        outputs={"predictions": predictions},
    )
