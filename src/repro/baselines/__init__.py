"""Hand-written per-target baseline implementations of the five applications.

Figure 5 and Table 4 of the paper compare the single portable HDC++
implementation against the *baseline codes* each application shipped with:
Python/NumPy scripts for the CPU and hand-optimized CUDA C++ (or CuPy) for
the GPU.  Neither CUDA nor a GPU is available offline, so the reproduction
mirrors the split in programming style instead:

* ``*_python`` modules are deliberately straightforward scripts — per-sample
  and per-class loops, exactly how the published research prototypes are
  written — and stand in for the interpreted CPU baselines;
* ``*_cuda`` modules are fully vectorized batched implementations operating
  on whole matrices, standing in for the optimized CUDA C++ baselines (the
  batched structure is what the CUDA kernels/cuBLAS calls implement).

Per the paper, HyperOMS has no CPU baseline, and HD-Hashtable uses a single
Python/CuPy program for both targets.
"""

from repro.baselines.common import BaselineResult

__all__ = ["BaselineResult"]
