"""HD-Clustering — Python/NumPy CPU baseline.

Per-sample / per-cluster loop implementation of HDCluster, standing in for
the interpreted Python CPU baseline of Figure 5 and Table 4.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _encode_sample(sample, rp_matrix):
    projected = np.zeros(rp_matrix.shape[0], dtype=np.float32)
    for row in range(rp_matrix.shape[0]):
        projected[row] = np.dot(rp_matrix[row], sample)
    return np.where(projected >= 0, 1.0, -1.0)


def _closest_cluster(encoded, clusters):
    best_cluster, best_distance = 0, None
    for idx in range(clusters.shape[0]):
        distance = float(np.count_nonzero(encoded != clusters[idx]))
        if best_distance is None or distance < best_distance:
            best_cluster, best_distance = idx, distance
    return best_cluster


def _purity(assignments, labels, n_clusters):
    total = 0
    for cluster in range(n_clusters):
        members = labels[assignments == cluster]
        if members.size:
            total += np.bincount(members).max()
    return float(total) / float(labels.size)


def run(dataset, dimension: int = 2048, n_clusters: int = 26, iterations: int = 8, seed: int = 3) -> BaselineResult:
    """Cluster the training partition of the dataset."""
    rng = np.random.default_rng(seed)
    features = dataset.train_features
    labels = dataset.train_labels
    rp_matrix = (rng.integers(0, 2, size=(dimension, features.shape[1])) * 2 - 1).astype(np.float32)

    start = time.perf_counter()

    encoded = np.zeros((features.shape[0], dimension), dtype=np.float32)
    for index in range(features.shape[0]):
        encoded[index] = _encode_sample(features[index], rp_matrix)

    initial = rng.choice(features.shape[0], size=n_clusters, replace=False)
    clusters = encoded[initial].copy()
    assignments = np.zeros(features.shape[0], dtype=np.int64)

    for _ in range(iterations):
        new_assignments = np.zeros_like(assignments)
        for index in range(encoded.shape[0]):
            new_assignments[index] = _closest_cluster(encoded[index], clusters)
        for cluster in range(n_clusters):
            members = encoded[new_assignments == cluster]
            if members.shape[0] > 0:
                clusters[cluster] = np.where(members.sum(axis=0) >= 0, 1.0, -1.0)
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments

    wall = time.perf_counter() - start
    return BaselineResult(
        app="hd-clustering",
        style="python",
        quality=_purity(assignments, labels, n_clusters),
        quality_metric="purity",
        wall_seconds=wall,
        outputs={"assignments": assignments},
    )
