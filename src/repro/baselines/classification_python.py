"""HD-Classification — Python/NumPy CPU baseline.

This is the per-sample, per-class loop style in which the original research
prototype (HD2FPGA's Python reference) is written: every sample is encoded
on its own, every class distance is computed in its own loop iteration, and
training walks the dataset one sample at a time.  It serves as the CPU
baseline of Figure 5 and the CPU lines-of-code entry of Table 4.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _encode_sample(sample, rp_matrix):
    projected = np.zeros(rp_matrix.shape[0], dtype=np.float32)
    for row in range(rp_matrix.shape[0]):
        projected[row] = np.dot(rp_matrix[row], sample)
    return np.where(projected >= 0, 1.0, -1.0)


def _hamming(encoded, class_hv):
    return float(np.count_nonzero(encoded != np.where(class_hv >= 0, 1.0, -1.0)))


def _predict(encoded, classes):
    best_class, best_distance = 0, None
    for idx in range(classes.shape[0]):
        distance = _hamming(encoded, classes[idx])
        if best_distance is None or distance < best_distance:
            best_class, best_distance = idx, distance
    return best_class


def run(dataset, dimension: int = 2048, epochs: int = 5, seed: int = 1) -> BaselineResult:
    """Train and evaluate the baseline HDC classifier."""
    rng = np.random.default_rng(seed)
    rp_matrix = (rng.integers(0, 2, size=(dimension, dataset.n_features)) * 2 - 1).astype(np.float32)
    classes = np.zeros((dataset.n_classes, dimension), dtype=np.float32)

    start = time.perf_counter()

    for _ in range(epochs):
        for sample, label in zip(dataset.train_features, dataset.train_labels):
            encoded = _encode_sample(sample, rp_matrix)
            predicted = _predict(encoded, classes)
            classes[label] += encoded
            if predicted != label:
                classes[predicted] -= encoded

    predictions = np.zeros(dataset.test_features.shape[0], dtype=np.int64)
    for index, sample in enumerate(dataset.test_features):
        encoded = _encode_sample(sample, rp_matrix)
        predictions[index] = _predict(encoded, classes)

    wall = time.perf_counter() - start
    accuracy = float((predictions == dataset.test_labels).mean())
    return BaselineResult(
        app="hd-classification",
        style="python",
        quality=accuracy,
        quality_metric="accuracy",
        wall_seconds=wall,
        outputs={"predictions": predictions},
    )
