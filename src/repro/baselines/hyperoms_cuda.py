"""HyperOMS — optimized "CUDA-style" GPU baseline.

The published HyperOMS implementation is GPU-only CUDA C++: level-ID
encoding runs as a custom kernel over spectra (with warp-level primitives)
and the library search is a batched similarity matrix plus an
arg-reduction.  This module reproduces that batched structure with
vectorized NumPy; there is no CPU baseline for HyperOMS, matching the
paper (the Figure 5 CPU bar for HyperOMS is N/A).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _make_level_hvs(n_levels: int, dimension: int, rng: np.random.Generator) -> np.ndarray:
    levels = np.empty((n_levels, dimension), dtype=np.float32)
    levels[0] = (rng.integers(0, 2, size=dimension) * 2 - 1).astype(np.float32)
    flip = max(1, dimension // (2 * max(1, n_levels - 1)))
    for level in range(1, n_levels):
        levels[level] = levels[level - 1]
        positions = rng.choice(dimension, size=flip, replace=False)
        levels[level, positions] = -levels[level, positions]
    return levels


def _encode(binned: np.ndarray, id_hvs: np.ndarray, level_hvs: np.ndarray, n_levels: int) -> np.ndarray:
    # One fused "encoding kernel" launch per spectrum in the CUDA original;
    # here each spectrum is a masked gather + elementwise product + reduce.
    levels = np.clip((binned * (n_levels - 1)).round().astype(np.int64), 0, n_levels - 1)
    encoded = np.zeros((binned.shape[0], id_hvs.shape[1]), dtype=np.float32)
    for index in range(binned.shape[0]):
        active = np.nonzero(binned[index] > 0)[0]
        if active.size:
            encoded[index] = (id_hvs[active] * level_hvs[levels[index, active]]).sum(axis=0)
    return np.sign(encoded)


def run(dataset, dimension: int = 4096, n_levels: int = 16, seed: int = 11) -> BaselineResult:
    """Encode the library and queries, then search (recall@1)."""
    rng = np.random.default_rng(seed)
    n_bins = dataset.config.n_bins
    id_hvs = (rng.integers(0, 2, size=(n_bins, dimension)) * 2 - 1).astype(np.float32)
    level_hvs = _make_level_hvs(n_levels, dimension, rng)

    start = time.perf_counter()

    library_encoded = _encode(dataset.library_matrix, id_hvs, level_hvs, n_levels)
    query_encoded = _encode(dataset.query_matrix, id_hvs, level_hvs, n_levels)
    # Batched similarity (one GEMM) + row-wise argmax, as in the CUDA search kernel.
    dots = query_encoded @ library_encoded.T
    matches = dots.argmax(axis=1)

    wall = time.perf_counter() - start
    recall = float((matches == dataset.query_truth).mean())
    return BaselineResult(
        app="hyperoms",
        style="cuda",
        quality=recall,
        quality_metric="recall@1",
        wall_seconds=wall,
        outputs={"matches": matches},
    )
