"""RelHD — optimized "CUDA-style" GPU baseline.

Batched implementation of RelHD: encoding is one GEMM, the neighbour
aggregation is a sparse-matrix product against the adjacency matrix, and
training/inference run on whole batches — the structure of the CUDA
baseline used by the paper on the GPU.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def run(graph, dimension: int = 4096, epochs: int = 3, self_weight: float = 2.0, seed: int = 17, batch_size: int = 256) -> BaselineResult:
    """Train on labelled nodes and classify held-out nodes (batched)."""
    rng = np.random.default_rng(seed)
    rp_matrix = (rng.integers(0, 2, size=(dimension, graph.n_features)) * 2 - 1).astype(np.float32)

    start = time.perf_counter()

    encoded = np.sign(graph.features @ rp_matrix.T).astype(np.float32)

    # Neighbour aggregation as one adjacency-matrix product (cuSPARSE SpMM).
    adjacency = np.zeros((graph.n_nodes, graph.n_nodes), dtype=np.float32)
    for node, neighbours in enumerate(graph.adjacency_lists()):
        adjacency[node, neighbours] = 1.0
    aggregated = np.sign(self_weight * encoded + adjacency @ encoded).astype(np.float32)

    classes = np.zeros((graph.n_classes, dimension), dtype=np.float32)
    train_encodings = aggregated[graph.train_nodes]
    train_labels = graph.labels[graph.train_nodes]
    for _ in range(epochs):
        for begin in range(0, train_encodings.shape[0], batch_size):
            batch = train_encodings[begin : begin + batch_size]
            labels = train_labels[begin : begin + batch_size]
            bipolar = np.sign(classes)
            bipolar[bipolar == 0] = 1.0
            predicted = (batch @ bipolar.T).argmax(axis=1)
            np.add.at(classes, labels, batch)
            wrong = predicted != labels
            np.add.at(classes, predicted[wrong], -batch[wrong])

    bipolar = np.sign(classes)
    bipolar[bipolar == 0] = 1.0
    predictions = (aggregated[graph.test_nodes] @ bipolar.T).argmax(axis=1)

    wall = time.perf_counter() - start
    accuracy = float((predictions == graph.labels[graph.test_nodes]).mean())
    return BaselineResult(
        app="relhd",
        style="cuda",
        quality=accuracy,
        quality_metric="accuracy",
        wall_seconds=wall,
        outputs={"predictions": predictions},
    )
