"""HD-Hashtable — Python baseline (used for both CPU and GPU rows).

The original HD-Hashtable code is a single Python program executed with
NumPy on the CPU and CuPy on the GPU (Table 4 counts the same file for both
targets).  This module reproduces that program: k-mer encoding with
positionally-rotated base hypervectors, bucket hypervectors bundled over the
reference genome, and a similarity search of every read against the bucket
table.  ``use_batched_search=True`` corresponds to the CuPy execution (the
whole search as one matrix product), ``False`` to the plain NumPy loop.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult
from repro.datasets.genomics import base_indices

__all__ = ["run"]


def _encode_sequence(bases: np.ndarray, base_hvs: np.ndarray, kmer_length: int) -> np.ndarray:
    dimension = base_hvs.shape[1]
    positions = bases.shape[0] - kmer_length + 1
    if positions <= 0:
        return np.zeros(dimension, dtype=np.float32)
    shifted = [np.roll(base_hvs, offset, axis=1) for offset in range(kmer_length)]
    encoding = np.zeros(dimension, dtype=np.float32)
    for start in range(positions):
        kmer = np.ones(dimension, dtype=np.float32)
        for offset in range(kmer_length):
            kmer = kmer * shifted[offset][bases[start + offset]]
        encoding += kmer
    return encoding


def run(dataset, dimension: int = 4096, seed: int = 23, use_batched_search: bool = False) -> BaselineResult:
    """Build the bucket table, encode the reads, and search."""
    rng = np.random.default_rng(seed)
    base_hvs = (rng.integers(0, 2, size=(4, dimension)) * 2 - 1).astype(np.float32)
    kmer_length = dataset.config.kmer_length

    start = time.perf_counter()

    bucket_table = np.zeros((dataset.n_buckets, dimension), dtype=np.float32)
    for bucket in range(dataset.n_buckets):
        sequence = dataset.bucket_sequence(bucket)
        if len(sequence) >= kmer_length:
            bucket_table[bucket] = _encode_sequence(base_indices(sequence), base_hvs, kmer_length)
    bucket_table = np.sign(bucket_table)

    read_encodings = np.zeros((len(dataset.reads), dimension), dtype=np.float32)
    for index, read in enumerate(dataset.reads):
        read_encodings[index] = _encode_sequence(base_indices(read), base_hvs, kmer_length)
    read_encodings = np.sign(read_encodings)

    if use_batched_search:
        matches = (read_encodings @ bucket_table.T).argmax(axis=1)
    else:
        matches = np.zeros(read_encodings.shape[0], dtype=np.int64)
        for index in range(read_encodings.shape[0]):
            best_bucket, best_score = 0, None
            for bucket in range(bucket_table.shape[0]):
                score = float(np.dot(read_encodings[index], bucket_table[bucket]))
                if best_score is None or score > best_score:
                    best_bucket, best_score = bucket, score
            matches[index] = best_bucket

    wall = time.perf_counter() - start
    accuracy = float((matches == dataset.read_buckets).mean())
    return BaselineResult(
        app="hd-hashtable",
        style="python" if not use_batched_search else "python-cupy",
        quality=accuracy,
        quality_metric="bucket accuracy",
        wall_seconds=wall,
        outputs={"matches": matches},
    )
