"""HD-Clustering — optimized "CUDA-style" GPU baseline.

Fully batched implementation of HDCluster: encoding is one GEMM, every
assignment step is one GEMM + row-wise arg-reduction, and the cluster
update is a segmented sum — the structure of the hand-written CUDA baseline
the paper compares against on the GPU.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.common import BaselineResult

__all__ = ["run"]


def _purity(assignments, labels, n_clusters):
    total = 0
    for cluster in range(n_clusters):
        members = labels[assignments == cluster]
        if members.size:
            total += np.bincount(members).max()
    return float(total) / float(labels.size)


def run(dataset, dimension: int = 2048, n_clusters: int = 26, iterations: int = 8, seed: int = 3) -> BaselineResult:
    """Cluster the training partition of the dataset (batched)."""
    rng = np.random.default_rng(seed)
    features = dataset.train_features
    labels = dataset.train_labels
    rp_matrix = (rng.integers(0, 2, size=(dimension, features.shape[1])) * 2 - 1).astype(np.float32)

    start = time.perf_counter()

    encoded = np.sign(features @ rp_matrix.T).astype(np.float32)
    initial = rng.choice(features.shape[0], size=n_clusters, replace=False)
    clusters = encoded[initial].copy()
    assignments = np.zeros(features.shape[0], dtype=np.int64)

    for _ in range(iterations):
        # hamming = (D - dot) / 2 for bipolar vectors: one GEMM per iteration.
        dots = encoded @ clusters.T
        new_assignments = dots.argmax(axis=1)
        for cluster in range(n_clusters):
            members = encoded[new_assignments == cluster]
            if members.shape[0] > 0:
                clusters[cluster] = np.sign(members.sum(axis=0))
        if np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments

    wall = time.perf_counter() - start
    return BaselineResult(
        app="hd-clustering",
        style="cuda",
        quality=_purity(assignments, labels, n_clusters),
        quality_metric="purity",
        wall_seconds=wall,
        outputs={"assignments": assignments},
    )
