"""Blocking socket client for the serving transport.

:class:`ServingClient` mirrors the in-process request API over TCP::

    from repro.serving.transport import ServingClient

    with ServingClient(host, port) as client:
        label = client.infer("hd-classification", features)
        labels = client.infer_batch("hd-classification", feature_matrix)
        print(client.stats()["latency_p99_ms"], client.list_models())

One client holds one connection and serializes its requests on it
(request/response framing), so it is thread-safe but not concurrent —
open one client per thread (or process) to generate concurrent load,
exactly as the multi-client throughput benchmark does.  Server-side
errors come back typed: a shed deadline re-raises
:class:`~repro.serving.batching.DeadlineExceeded`, anything else raises
:class:`RemoteServingError` carrying the remote type name and message.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Tuple

import numpy as np

from repro.serving.batching import DeadlineExceeded
from repro.serving.transport.protocol import (
    PROTOCOL_VERSION,
    decode_array,
    encode_array_header,
    encode_frame,
    read_frame_sync,
)

__all__ = ["ServingClient", "RemoteServingError"]


class RemoteServingError(RuntimeError):
    """A server-side failure reported over the wire.

    Attributes:
        error_type: The remote exception's class name (e.g. ``KeyError``
            for an unknown model).
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _raise_remote(header: dict) -> None:
    error_type = header.get("error_type", "RuntimeError")
    message = header.get("error", "")
    if error_type == "DeadlineExceeded":
        raise DeadlineExceeded(message)
    raise RemoteServingError(error_type, message)


class ServingClient:
    """A blocking, thread-safe client for :class:`TransportServer`.

    Args:
        host / port: The transport server's bound address (as returned by
            :meth:`TransportServer.start`).
        timeout: Socket timeout in seconds for connect and for each
            response (``None`` blocks indefinitely).
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = None):
        self.address: Tuple[str, int] = (host, int(port))
        self._sock = socket.create_connection(self.address, timeout=timeout)
        self._sock.settimeout(timeout)
        self._stream = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._broken = False

    # -- plumbing -----------------------------------------------------------------
    def _request(self, header: dict, payload: bytes = b"") -> Tuple[dict, bytes]:
        with self._lock:
            if self._broken:
                raise ConnectionError(
                    "connection is no longer usable after a transport failure; "
                    "open a new ServingClient"
                )
            try:
                self._sock.sendall(encode_frame(header, payload))
                response, response_payload = read_frame_sync(self._stream)
            except (OSError, ConnectionError):
                # A timeout or truncated read leaves request/response
                # framing desynchronized — a later request would read this
                # one's late reply as its own.  There is no per-request id
                # to re-correlate, so the connection is dead from here on.
                self._broken = True
                self._close_locked()
                raise
        if not response.get("ok"):
            _raise_remote(response)  # stream still in sync: server replied
        return response, response_payload

    # -- request API --------------------------------------------------------------
    def infer(
        self,
        model: str,
        sample: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """One sample through the remote micro-batching queue."""
        fields, payload = encode_array_header(np.asarray(sample))
        header = {
            "op": "infer",
            "model": model,
            "priority": int(priority),
            "deadline_ms": deadline_ms,
            **fields,
        }
        response, response_payload = self._request(header, payload)
        return decode_array(response, response_payload)

    def infer_batch(
        self,
        model: str,
        samples: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """A whole batch in one frame; results come back row-aligned."""
        fields, payload = encode_array_header(np.asarray(samples))
        header = {
            "op": "infer_batch",
            "model": model,
            "priority": int(priority),
            "deadline_ms": deadline_ms,
            **fields,
        }
        response, response_payload = self._request(header, payload)
        return decode_array(response, response_payload)

    def stats(self) -> dict:
        """The server's :class:`ServerStats` snapshot as a plain dict."""
        response, _ = self._request({"op": "stats"})
        return response["stats"]

    def list_models(self) -> list:
        """Names of the deployments registered on the server."""
        response, _ = self._request({"op": "list_models"})
        return response["models"]

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every request submitted to the server has resolved."""
        self._request({"op": "drain", "timeout": timeout})

    def ping(self) -> bool:
        """Round-trip liveness probe; returns whether the broker runs."""
        response, _ = self._request({"op": "ping"})
        return bool(response.get("running"))

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServingClient({self.address[0]}:{self.address[1]}, v{PROTOCOL_VERSION})"
