"""Blocking socket client for the serving transport.

:class:`ServingClient` mirrors the in-process request API over TCP::

    from repro.serving.transport import ServingClient

    with ServingClient(host, port) as client:
        label = client.infer("hd-classification", features)
        labels = client.infer_batch("hd-classification", feature_matrix)
        print(client.stats()["latency_p99_ms"], client.list_models())

One client holds one connection and serializes its requests on it
(request/response framing), so it is thread-safe but not concurrent —
open one client per thread (or process) to generate concurrent load,
exactly as the multi-client throughput benchmark does.  Server-side
errors come back typed: a shed deadline re-raises
:class:`~repro.serving.batching.DeadlineExceeded`, anything else raises
:class:`RemoteServingError` carrying the remote type name and message.

With ``max_retries > 0`` the client survives transport failures: a
``ConnectionError`` / ``EOFError`` during any request tears the dead
connection down, reconnects with capped exponential backoff and resends
the request — so a server restart mid-session costs the caller latency,
not an exception.  Retries resend the whole request; inference is safe
to resend (a duplicate execution of the same sample yields the same
result), but a request that died *after* the server acted and *before*
the reply landed will be executed twice, so keep retries off for
non-idempotent extensions.
"""

from __future__ import annotations

import random
import socket
import threading
from typing import Optional, Tuple

import numpy as np

from repro.serving.batching import DeadlineExceeded
from repro.serving.registry import StaleVersionError
from repro.serving.transport.protocol import (
    PROTOCOL_VERSION,
    ProtocolVersionError,
    decode_array,
    encode_array_header,
    encode_frame,
    read_frame_sync,
)

__all__ = ["ServingClient", "RemoteServingError", "RetryBudget"]


class RetryBudget:
    """A token-bucket retry budget shared across pooled clients.

    Unbounded per-client retries compose badly: when a replica dies, every
    pooled connection starts burning its own full retry budget against the
    same dead address, multiplying the reconnect storm by the pool size.
    A shared budget bounds the *aggregate*: each backoff attempt spends
    one token, each successful request refunds ``refund`` tokens (capped
    at ``tokens``), so a healthy pool regains headroom while a pool
    hammering a dead replica runs dry and fails fast.

    Thread-safe; hand one instance to every client in a pool via the
    ``retry_budget`` constructor argument.
    """

    def __init__(self, tokens: float = 10.0, refund: float = 0.1):
        self.capacity = float(tokens)
        self.refund_tokens = float(refund)
        self._tokens = float(tokens)
        self._lock = threading.Lock()
        #: Backoff attempts refused because the bucket was empty.
        self.exhausted = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        """Take one token; ``False`` (and counted) when the bucket is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.exhausted += 1
            return False

    def refund(self) -> None:
        """Credit one successful request back into the bucket."""
        with self._lock:
            self._tokens = min(self.capacity, self._tokens + self.refund_tokens)


class RemoteServingError(RuntimeError):
    """A server-side failure reported over the wire.

    Attributes:
        error_type: The remote exception's class name (e.g. ``KeyError``
            for an unknown model).
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


def _raise_remote(header: dict) -> None:
    error_type = header.get("error_type", "RuntimeError")
    message = header.get("error", "")
    if error_type == "DeadlineExceeded":
        raise DeadlineExceeded(message)
    if error_type == "ProtocolVersionError":
        raise ProtocolVersionError(message)
    if error_type == "StaleVersionError" and "min_version" in header:
        raise StaleVersionError(
            str(header.get("model", "")),
            int(header.get("model_version", 0)),
            int(header["min_version"]),
        )
    raise RemoteServingError(error_type, message)


class ServingClient:
    """A blocking, thread-safe client for :class:`TransportServer`.

    Args:
        host / port: The transport server's bound address (as returned by
            :meth:`TransportServer.start`).
        timeout: Socket timeout in seconds for connect and for each
            response (``None`` blocks indefinitely).
        max_retries: Transport-failure retries per request (and for the
            initial connection in the constructor).  On a
            ``ConnectionError`` / ``EOFError`` of an established
            connection — or *any* ``OSError`` while (re)connecting, where
            nothing can be in flight — the client reconnects and resends,
            sleeping a **decorrelated-jitter** backoff between attempts,
            outside the request lock.  The default 0 keeps the fail-fast
            behaviour: the first transport failure marks the connection
            dead and the error propagates.
        backoff_seconds: Backoff floor.  Each sleep is drawn uniformly
            from ``[backoff_seconds, 3 * previous_sleep]`` and capped at
            ``max_backoff_seconds`` (AWS-style decorrelated jitter), so N
            clients reconnecting after the same replica restart spread
            out instead of thundering the listener in lockstep; the
            previous-sleep state resets on every successful connection.
        max_backoff_seconds: Upper bound on one backoff sleep.
        retry_budget: Optional :class:`RetryBudget` shared across pooled
            clients; when it runs dry, backoff attempts fail fast even
            with ``max_retries`` remaining.  Successful requests refund
            it.
    """

    #: Transport failures that are safe to heal with reconnect + resend:
    #: the request/response stream is dead, so no late reply can ever be
    #: misattributed to the resent request.  (FrameError subclasses
    #: ConnectionError, covering truncated frames from a dying server.)
    _RETRYABLE_ERRORS = (ConnectionError, EOFError)

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        backoff_seconds: float = 0.05,
        max_backoff_seconds: float = 1.0,
        retry_budget: Optional[RetryBudget] = None,
    ):
        self.address: Tuple[str, int] = (host, int(port))
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.backoff_seconds = float(backoff_seconds)
        self.max_backoff_seconds = float(max_backoff_seconds)
        self.retry_budget = retry_budget
        self.reconnects = 0
        # Decorrelated-jitter state: the previous sleep, seeded at the
        # floor.  Per-client RNG — pooled clients must not share a
        # sequence, or their "jitter" would correlate right back.
        self._rng = random.Random()
        self._backoff_delay = self.backoff_seconds
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._stream = None
        self._broken = False
        # Set by close(): interrupts backoff sleeps and aborts further
        # reconnect attempts, so a supervisor can stop a client that is
        # mid-way through its retry budget.
        self._closing = threading.Event()
        # The retry budget covers the initial connection too, so a client
        # constructed while the server is still (re)starting rides out
        # the gap instead of dying on the doorstep.
        attempt = 0
        while True:
            try:
                with self._lock:
                    self._connect_locked()
                break
            except OSError:
                attempt = self._backoff_or_raise(attempt)

    # -- plumbing -----------------------------------------------------------------
    def _connect_locked(self) -> None:
        self._sock = socket.create_connection(self.address, timeout=self.timeout)
        self._sock.settimeout(self.timeout)
        self._stream = self._sock.makefile("rb")
        self._broken = False
        self._handshake_locked()
        self._backoff_delay = self.backoff_seconds

    def _handshake_locked(self) -> None:
        """Open the connection with the mandatory version handshake.

        Every (re)connection sends ``hello`` carrying this client's
        protocol version before any operation.  A server rejection raises
        the typed :class:`ProtocolVersionError` — *not* retried by the
        reconnect machinery, because a version mismatch is deterministic.
        Transport failures mid-handshake surface as ``OSError`` and take
        the normal connect-phase retry path.
        """
        self._sock.sendall(encode_frame({"op": "hello", "version": PROTOCOL_VERSION}))
        response, _ = read_frame_sync(self._stream)
        if not response.get("ok"):
            self._broken = True
            self._close_locked()
            _raise_remote(response)

    def _backoff_or_raise(self, attempt: int) -> int:
        """Sleep one decorrelated-jitter step; re-raise when the budget is
        spent or the client is closing.  Called outside the lock."""
        if attempt >= self.max_retries:
            raise
        if self.retry_budget is not None and not self.retry_budget.try_spend():
            raise
        # Decorrelated jitter: uniform over [floor, 3 * previous sleep],
        # capped.  Deterministic exponential backoff synchronizes every
        # client that observed the same failure instant — after a replica
        # restart the whole pool would reconnect in lockstep waves; the
        # jittered draw spreads the herd across the interval while the
        # 3x growth still backs a persistent outage off exponentially.
        self._backoff_delay = min(
            self.max_backoff_seconds,
            self._rng.uniform(self.backoff_seconds, max(self._backoff_delay, self.backoff_seconds) * 3.0),
        )
        # Event-based sleep: close() interrupts the backoff instead of
        # waiting out the whole retry budget.
        if self._closing.wait(self._backoff_delay):
            raise ConnectionError("client closed while retrying")
        return attempt + 1

    def _request(
        self, header: dict, payload: bytes = b"", resend: bool = True
    ) -> Tuple[dict, bytes]:
        """One framed request/response exchange, with retries.

        ``resend=False`` marks a **non-idempotent** request (the
        stats-with-reset and reset ops): reconnect attempts still use the
        retry budget — nothing was sent on a fresh connection — but a
        failure *after* the frame went out is never resent, because the
        server may have acted before the reply was lost and a resend
        would apply the side effect twice.
        """
        frame = encode_frame(header, payload)
        attempt = 0
        while True:
            if self._closing.is_set():
                raise ConnectionError("client closed while retrying")
            phase = "exchange"
            try:
                with self._lock:
                    if self._broken or self._sock is None:
                        if self.max_retries == 0:
                            raise ConnectionError(
                                "connection is no longer usable after a transport failure; "
                                "open a new ServingClient (or construct with max_retries > 0)"
                            )
                        phase = "connect"
                        self._connect_locked()
                        self.reconnects += 1
                        phase = "exchange"
                    try:
                        self._sock.sendall(frame)
                        response, response_payload = read_frame_sync(self._stream)
                    except (OSError, EOFError):
                        self._broken = True
                        self._close_locked()
                        raise
                break
            except (OSError, EOFError) as exc:
                if phase == "connect":
                    # Nothing was in flight on a fresh connect, so *any*
                    # failure here (refused, timed out, unresolvable) is
                    # safe to retry.
                    retryable = True
                else:
                    # On an established connection, only a dead stream is
                    # retryable: the request/response framing is
                    # desynchronized and no late reply can be
                    # misattributed after a fresh connection + resend.
                    # Timeouts keep the fail-fast contract — the reply
                    # may still be in flight, so a blind resend could
                    # desynchronize more than it heals.  Non-idempotent
                    # requests are never resent once the frame went out.
                    retryable = resend and isinstance(exc, self._RETRYABLE_ERRORS)
                if not retryable:
                    raise
                # Backoff happens outside the lock, so other threads
                # sharing the client fail fast on the (broken) connection
                # instead of queueing behind the sleeper's retry budget.
                attempt = self._backoff_or_raise(attempt)
        if self.retry_budget is not None:
            self.retry_budget.refund()
        if not response.get("ok"):
            _raise_remote(response)  # stream still in sync: server replied
        return response, response_payload

    # -- request API --------------------------------------------------------------
    def infer(
        self,
        model: str,
        sample: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        min_version: Optional[int] = None,
    ) -> np.ndarray:
        """One sample through the remote micro-batching queue.

        ``min_version`` pins the read: the server refuses with a typed
        :class:`~repro.serving.registry.StaleVersionError` if the model's
        deployment is older — the read-your-writes contract after a
        group-wide update.  Omitted from the wire when ``None``, so
        un-pinned requests stay byte-compatible with older servers.
        """
        fields, payload = encode_array_header(np.asarray(sample))
        header = {
            "op": "infer",
            "model": model,
            "priority": int(priority),
            "deadline_ms": deadline_ms,
            **fields,
        }
        if min_version is not None:
            header["min_version"] = int(min_version)
        response, response_payload = self._request(header, payload)
        return decode_array(response, response_payload)

    def infer_batch(
        self,
        model: str,
        samples: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        min_version: Optional[int] = None,
    ) -> np.ndarray:
        """A whole batch in one frame; results come back row-aligned."""
        fields, payload = encode_array_header(np.asarray(samples))
        header = {
            "op": "infer_batch",
            "model": model,
            "priority": int(priority),
            "deadline_ms": deadline_ms,
            **fields,
        }
        if min_version is not None:
            header["min_version"] = int(min_version)
        response, response_payload = self._request(header, payload)
        return decode_array(response, response_payload)

    def update(self, model: str, samples: np.ndarray, labels) -> int:
        """One online re-training round on the server; returns the new
        monotonic model version.

        The labelled mini-batch crosses the wire as one frame: samples
        and int64 labels are concatenated in the binary payload (arrays
        never ride the JSON header — same rationale as inference), with
        the labels' metadata under the header's ``"labels"`` field.  The
        server applies the servable's ``update_batch`` rule, warms the
        re-trained deployment and hot-swaps it with zero downtime.
        **Never resent** on transport failure: a round that died after
        the frame went out may have landed, and blindly resending would
        train on the same batch twice.  Check :meth:`model_versions` to
        disambiguate.

        Raises:
            RemoteServingError: With ``error_type == "NotUpdatableError"``
                when the model's servable carries no update rule.
        """
        labels = np.asarray(labels)
        if labels.size and not np.issubdtype(labels.dtype, np.integer):
            # Same contract as the local path (Servable.updated): casting
            # 1.7 -> 1 on the wire would train on wrong labels silently.
            raise ValueError(f"update labels must be integers, got dtype {labels.dtype}")
        sample_fields, sample_payload = encode_array_header(np.asarray(samples))
        label_fields, label_payload = encode_array_header(
            np.ascontiguousarray(labels, dtype=np.int64)
        )
        header = {"op": "update", "model": model, "labels": label_fields, **sample_fields}
        response, _ = self._request(header, sample_payload + label_payload, resend=False)
        return int(response["model_version"])

    def append(self, model: str, rows: np.ndarray) -> int:
        """One shape-changing growth round on the server; returns the new
        monotonic model version.

        The raw rows (new bucket sequences, spectra, centroids — whatever
        the servable's ``append_batch`` rule consumes) cross the wire as
        one frame's binary payload.  The server grows the designated
        constants, re-traces the program family for the new shapes, warms
        it and hot-swaps with zero downtime.  **Never resent** on
        transport failure — appending is non-idempotent (a blind resend
        would grow the index twice); check :meth:`model_versions` to
        disambiguate a round that died mid-flight.

        Raises:
            RemoteServingError: With ``error_type == "NotAppendableError"``
                when the model's servable carries no append rule.
        """
        fields, payload = encode_array_header(np.ascontiguousarray(rows))
        header = {"op": "append", "model": model, **fields}
        response, _ = self._request(header, payload, resend=False)
        return int(response["model_version"])

    def model_versions(self) -> dict:
        """``{name: version}`` for every deployment served by the peer."""
        response, _ = self._request({"op": "model_versions"})
        return {str(name): int(version) for name, version in response["models"].items()}

    def stats(self, reset: bool = False) -> dict:
        """The server's :class:`ServerStats` snapshot as a plain dict.

        ``reset=True`` atomically zeroes the metrics window with the same
        server-side lock acquisition that took the snapshot — the
        scrape-then-reset idiom without the between-frames gap in which
        concurrent requests would vanish from every interval.  Because
        the reset is a side effect, the request is never *resent* by the
        retry machinery: if the connection dies after the frame went out,
        the error propagates (the interval may or may not have been
        reset) instead of silently resetting twice.
        """
        response, _ = self._request(
            {"op": "stats", "reset": bool(reset)}, resend=not reset
        )
        return response["stats"]

    def reset_stats(self) -> None:
        """Zero the server's metrics window (per-interval reporting).

        Prefer ``stats(reset=True)`` when the snapshot is also needed:
        it is atomic server-side.  SLO thresholds survive either way.
        Never resent on transport failure (non-idempotent).
        """
        self._request({"op": "reset_stats"}, resend=False)

    def list_models(self) -> list:
        """Names of the deployments registered on the server."""
        response, _ = self._request({"op": "list_models"})
        return response["models"]

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every request submitted to the server has resolved."""
        self._request({"op": "drain", "timeout": timeout})

    def ping(self) -> bool:
        """Round-trip liveness probe; returns whether the broker runs."""
        response, _ = self._request({"op": "ping"})
        return bool(response.get("running"))

    def metrics_text(self, namespace: Optional[str] = None) -> str:
        """The server's Prometheus text exposition (format 0.0.4).

        Read-only server-side (no reset), so scrapes are idempotent and
        safe to resend.  ``namespace`` overrides the metric-name prefix
        (default ``hdc_serving``).
        """
        header = {"op": "metrics"}
        if namespace is not None:
            header["namespace"] = str(namespace)
        _, payload = self._request(header)
        return payload.decode("utf-8")

    def traces(self, limit: Optional[int] = None, clear: bool = False) -> list:
        """Retained request traces as JSON-safe dicts (oldest first).

        Empty unless the server's broker runs with ``tracing=True``.
        ``clear=True`` empties the server's trace rings after the read —
        a side effect, so that variant is never resent by the retry
        machinery (a dump that died mid-reply may already have cleared).
        """
        header = {"op": "traces", "clear": bool(clear)}
        if limit is not None:
            header["limit"] = int(limit)
        response, _ = self._request(header, resend=not clear)
        return response["traces"]

    # -- lifecycle ----------------------------------------------------------------
    def close(self) -> None:
        # Signal before taking the lock: a _request mid-retry wakes from
        # its backoff sleep and aborts, releasing the lock promptly (an
        # in-flight socket operation still bounds this by `timeout`).
        self._closing.set()
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        try:
            if self._stream is not None:
                self._stream.close()
        except OSError:
            pass
        finally:
            if self._sock is not None:
                self._sock.close()
            self._stream = None
            self._sock = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ServingClient({self.address[0]}:{self.address[1]}, v{PROTOCOL_VERSION})"
