"""Wire format of the socket transport: length-prefixed JSON/binary frames.

One frame is::

    +----------------+----------------+------------------+----------------+
    | header length  | payload length |   JSON header    |    payload     |
    |  uint32 (BE)   |  uint32 (BE)   |  header-length   | payload-length |
    |                |                |      bytes       |     bytes      |
    +----------------+----------------+------------------+----------------+

The **header** is UTF-8 JSON carrying the operation (requests) or the
outcome (responses) plus any array metadata; the **payload** is raw,
C-contiguous NumPy array bytes described by the header's ``dtype`` /
``shape`` fields (empty for array-free operations).  Keeping the bulk
data out of JSON means a feature vector crosses the wire at
``itemsize * size`` bytes with zero escaping or base64 overhead, while
the header stays debuggable with any JSON tool.

Every connection opens with a **version handshake**: the client's first
frame must be ``{"op": "hello", "version": PROTOCOL_VERSION}``, and the
server *enforces* the match — a mismatched (or missing) handshake is
answered with a typed :class:`ProtocolVersionError` frame carrying the
server's version, and the connection is closed.  The client raises the
same typed error instead of misparsing frames of an incompatible peer.

Request headers (post-handshake)::

    {"op": "infer",       "model": str, "priority": int,
     "deadline_ms": float|null, "dtype": str, "shape": [..]}   + sample
    {"op": "infer_batch", "model": str, "priority": int,
     "deadline_ms": float|null, "dtype": str, "shape": [n,..]} + samples
    {"op": "update",      "model": str, "dtype": str, "shape": [n,..],
     "labels": {"dtype": "int64", "shape": [n]}}   + samples ++ labels
    {"op": "append",      "model": str, "dtype": str, "shape": [n,..]} + rows
    {"op": "stats", "reset": bool} | {"op": "reset_stats"}
    {"op": "list_models"} | {"op": "model_versions"} | {"op": "ping"}
    {"op": "drain", "timeout": float|null}
    {"op": "metrics", "namespace": str|null}
    {"op": "traces", "limit": int|null, "clear": bool}

``update`` runs one online re-training round (the servable's
``update_batch`` rule) and hot-swaps the re-trained deployment; its
payload concatenates the sample matrix and the int64 label vector
(described by the header's top-level and ``"labels"`` array metadata —
labels are arrays, so like all arrays they stay out of the JSON), and
its response carries the new monotonic ``"model_version"``.
``append`` runs one shape-changing growth round (the servable's
``append_batch`` rule) and hot-swaps the grown deployment; its payload
is the raw row matrix alone.  Like ``update`` it is **non-idempotent**
— re-running it grows the index twice — so the client never resends it
on a dropped connection.
``model_versions`` returns the ``{name: version}`` map.  ``metrics``
returns the Prometheus text exposition in the response *payload* (the
header carries its ``"content_type"``); ``traces`` returns retained
request traces as JSON dicts in the header, optionally clearing the
server-side trace rings after the read.

Response headers carry ``"ok": true`` plus op-specific fields (array
metadata for inference results, a ``"stats"`` object, a ``"models"``
list, a ``"model_version"``), or ``"ok": false`` with ``"error"`` /
``"error_type"`` — the client re-raises
:class:`~repro.serving.batching.DeadlineExceeded` for typed sheds,
:class:`ProtocolVersionError` for handshake rejections and
:class:`~repro.serving.transport.client.RemoteServingError` for
everything else.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO, Tuple

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FrameError",
    "ProtocolVersionError",
    "encode_frame",
    "read_frame",
    "read_frame_sync",
    "encode_array_header",
    "decode_array",
]

#: Bumped on incompatible wire changes; servers reject mismatched clients
#: during the mandatory hello handshake.  v2 introduced the enforced
#: handshake itself plus the ``update`` / ``model_versions`` operations;
#: v3 added the shape-changing ``append`` operation.
PROTOCOL_VERSION = 3

#: Upper bound on either frame section, guarding both peers against
#: corrupt prefixes (a desynchronized stream would otherwise be read as a
#: multi-gigabyte allocation).
MAX_FRAME_BYTES = 256 * 1024 * 1024

_PREFIX = struct.Struct("!II")


class FrameError(ConnectionError):
    """Raised on malformed, oversized or truncated frames."""


class ProtocolVersionError(RuntimeError):
    """Raised when the hello handshake finds incompatible protocol versions.

    Deliberately *not* a :class:`ConnectionError`: the client's reconnect
    machinery retries dead connections, but a version mismatch is
    deterministic — retrying would loop forever against the same peer —
    so this propagates immediately with both versions in the message.
    """


def encode_frame(header: dict, payload: bytes = b"") -> bytes:
    """Serialize one frame (JSON header + binary payload)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(header_bytes) > MAX_FRAME_BYTES or len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame exceeds MAX_FRAME_BYTES ({len(header_bytes)}+{len(payload)} bytes)"
        )
    return _PREFIX.pack(len(header_bytes), len(payload)) + header_bytes + bytes(payload)


def _decode_prefix(prefix: bytes) -> Tuple[int, int]:
    header_len, payload_len = _PREFIX.unpack(prefix)
    if header_len > MAX_FRAME_BYTES or payload_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing frame with header={header_len} payload={payload_len} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt or hostile"
        )
    return header_len, payload_len


def _parse_header(header_bytes: bytes) -> dict:
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise FrameError(f"frame header must be a JSON object, got {type(header).__name__}")
    return header


async def read_frame(reader) -> Tuple[dict, bytes]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`asyncio.IncompleteReadError` on clean EOF between
    frames (empty ``.partial``) — callers treat that as disconnect.
    """
    header_len, payload_len = _decode_prefix(await reader.readexactly(_PREFIX.size))
    header_bytes = await reader.readexactly(header_len)
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return _parse_header(header_bytes), payload


def read_frame_sync(stream: BinaryIO) -> Tuple[dict, bytes]:
    """Read one frame from a blocking binary stream (``socket.makefile``)."""

    def exactly(n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = stream.read(remaining)
            if not chunk:
                raise FrameError(f"connection closed mid-frame ({remaining} bytes short)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    header_len, payload_len = _decode_prefix(exactly(_PREFIX.size))
    header_bytes = exactly(header_len)
    payload = exactly(payload_len) if payload_len else b""
    return _parse_header(header_bytes), payload


# ---------------------------------------------------------------------------
# Array payloads
# ---------------------------------------------------------------------------


def encode_array_header(array: np.ndarray) -> Tuple[dict, bytes]:
    """``(header fields, payload bytes)`` describing one array."""
    array = np.asarray(array)
    if not array.flags["C_CONTIGUOUS"]:
        # (ascontiguousarray unconditionally would promote 0-d scalars —
        # single-request results — to 1-d and change the reply shape.)
        array = np.ascontiguousarray(array)
    return {"dtype": str(array.dtype), "shape": list(array.shape)}, array.tobytes()


def decode_array(header: dict, payload: bytes) -> np.ndarray:
    """Rebuild the array described by a frame's ``dtype``/``shape`` fields."""
    try:
        dtype = np.dtype(header["dtype"])
        shape = tuple(int(dim) for dim in header["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise FrameError(f"frame carries no decodable array: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if len(payload) != expected:
        raise FrameError(
            f"array payload is {len(payload)} bytes, expected {expected} "
            f"for dtype={dtype} shape={shape}"
        )
    return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
