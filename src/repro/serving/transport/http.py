"""HTTP/JSON gateway over the frame protocol.

The native transport speaks length-prefixed JSON/binary frames — compact
and fast, but it requires the Python client.  :class:`HttpGateway`
translates plain REST calls into frame-protocol requests through a
client-side :class:`~repro.serving.replica.ClientPool`, so anything that
can POST JSON (curl, a browser, a load balancer health check) can reach
a replica group::

    POST /v1/models/<name>:infer        {"sample": [...], "min_version": 3}
    POST /v1/models/<name>:infer_batch  {"samples": [[...], ...]}
    POST /v1/models/<name>:update       {"samples": [[...]], "labels": [...]}
    POST /v1/models/<name>:append       {"rows": [[...]], "dtype": "int64"?}
    GET  /v1/models                     -> {"models": {...}}
    GET  /v1/versions                   -> per-replica version maps
    GET  /v1/stats[?reset=1]            -> per-replica ServerStats
    GET  /healthz                       -> {"ok": true, "replicas": N}

Each gateway worker thread drives its own pooled frame-protocol client
(the pool is per-(thread, replica)), so concurrent HTTP requests fan
into concurrent frame requests without a connection lock, and every
request rides the pool's rendezvous routing — the same model always
lands on the same replica's micro-batcher no matter which HTTP
connection carried it.

Typed serving errors map onto HTTP status codes instead of opaque 500s:

====================================  ======
:class:`StaleVersionError`            409 (body carries version / min_version)
:class:`DeadlineExceeded`             504
unknown model (``KeyError``)          404
bad request shape (``ValueError``)    400
anything else                         500
====================================  ======

The server is the stdlib ``ThreadingHTTPServer`` — no dependencies, one
daemon thread per connection — which is plenty for a gateway whose real
work happens behind the frame protocol.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.serving.batching import DeadlineExceeded
from repro.serving.registry import StaleVersionError
from repro.serving.transport.client import RemoteServingError

__all__ = ["HttpGateway"]

#: Remote error_type -> HTTP status, for errors that crossed the frame
#: protocol as :class:`RemoteServingError` rather than a typed class.
_REMOTE_STATUS = {
    "KeyError": 404,
    "ValueError": 400,
    "DeadlineExceeded": 504,
    "NotUpdatableError": 400,
    "NotAppendableError": 400,
    "StaleVersionError": 409,
}


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, StaleVersionError):
        return 409
    if isinstance(exc, DeadlineExceeded):
        return 504
    if isinstance(exc, RemoteServingError):
        return _REMOTE_STATUS.get(exc.error_type, 500)
    if isinstance(exc, KeyError):
        return 404
    if isinstance(exc, ValueError):
        return 400
    if isinstance(exc, (ConnectionError, OSError)):
        return 503
    return 500


def _error_body(exc: BaseException) -> dict:
    body = {"error_type": type(exc).__name__, "error": str(exc)}
    if isinstance(exc, RemoteServingError):
        body["error_type"] = exc.error_type
    if isinstance(exc, StaleVersionError):
        body.update(model=exc.model, version=exc.version, min_version=exc.min_version)
    return body


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The gateway binds loopback by default; allow quick restarts.
    allow_reuse_address = True

    def __init__(self, address, handler, pool):
        super().__init__(address, handler)
        self.pool = pool


class _GatewayHandler(BaseHTTPRequestHandler):
    # Keep stdlib request logging off the benchmark's stderr.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def pool(self):
        return self.server.pool

    # -- plumbing -----------------------------------------------------------------
    def _reply(self, status: int, body: dict) -> None:
        payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError(f"request body must be a JSON object, got {type(body).__name__}")
        return body

    @staticmethod
    def _array(body: dict, field: str, dtype_default: str = "float64") -> np.ndarray:
        if field not in body:
            raise ValueError(f"request body is missing the {field!r} field")
        # JSON numbers decode as float64; an explicit "dtype" pins the
        # wire dtype for models whose programs were traced for float32.
        return np.asarray(body[field], dtype=np.dtype(body.get("dtype", dtype_default)))

    @staticmethod
    def _infer_options(body: dict) -> dict:
        options = {}
        if body.get("min_version") is not None:
            options["min_version"] = int(body["min_version"])
        if body.get("priority") is not None:
            options["priority"] = int(body["priority"])
        if body.get("deadline_ms") is not None:
            options["deadline_ms"] = float(body["deadline_ms"])
        return options

    # -- routes -------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/healthz":
                versions = self.pool.model_versions()
                self._reply(
                    200,
                    {
                        "ok": any(v is not None for v in versions),
                        "replicas": len(versions),
                        "reachable": sum(1 for v in versions if v is not None),
                    },
                )
            elif parsed.path == "/v1/models":
                merged: dict = {}
                for versions in self.pool.model_versions():
                    for name, version in (versions or {}).items():
                        merged[name] = max(int(version), merged.get(name, 0))
                self._reply(200, {"models": merged})
            elif parsed.path == "/v1/versions":
                self._reply(200, {"replicas": self.pool.model_versions()})
            elif parsed.path == "/v1/stats":
                query = parse_qs(parsed.query)
                reset = query.get("reset", ["0"])[0] in ("1", "true", "yes")
                self._reply(200, {"replicas": self.pool.stats(reset=reset)})
            else:
                self._reply(404, {"error_type": "KeyError", "error": f"no route {parsed.path}"})
        except Exception as exc:  # noqa: BLE001 - mapped to a status code
            self._reply(_status_for(exc), _error_body(exc))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        parsed = urlparse(self.path)
        prefix = "/v1/models/"
        if not parsed.path.startswith(prefix) or ":" not in parsed.path:
            self._reply(404, {"error_type": "KeyError", "error": f"no route {parsed.path}"})
            return
        model, _, action = parsed.path[len(prefix):].rpartition(":")
        try:
            body = self._read_json()
            if action == "infer":
                sample = self._array(body, "sample")
                output = self.pool.infer(model, sample, **self._infer_options(body))
                self._reply(
                    200,
                    {
                        "model": model,
                        "output": np.asarray(output).tolist(),
                        "replica": self.pool.route_for(model),
                    },
                )
            elif action == "infer_batch":
                samples = self._array(body, "samples")
                output = self.pool.infer_batch(model, samples, **self._infer_options(body))
                self._reply(
                    200,
                    {
                        "model": model,
                        "outputs": np.asarray(output).tolist(),
                        "replica": self.pool.route_for(model),
                    },
                )
            elif action == "update":
                samples = self._array(body, "samples")
                labels = np.asarray(body.get("labels", []), dtype=np.int64)
                version = self.pool.update(model, samples, labels)
                self._reply(200, {"model": model, "model_version": int(version)})
            elif action == "append":
                # Shape-changing growth: rows for the servable's
                # append_batch rule (an explicit "dtype" pins e.g. int64
                # base indices for the hashtable).  Non-idempotent end to
                # end — the pool never resends it.
                rows = self._array(body, "rows")
                version = self.pool.append(model, rows)
                self._reply(200, {"model": model, "model_version": int(version)})
            else:
                self._reply(
                    404, {"error_type": "KeyError", "error": f"unknown action {action!r}"}
                )
        except json.JSONDecodeError as exc:
            self._reply(400, {"error_type": "ValueError", "error": f"bad JSON body: {exc}"})
        except Exception as exc:  # noqa: BLE001 - mapped to a status code
            self._reply(_status_for(exc), _error_body(exc))


class HttpGateway:
    """A REST front door for a replica group (or a single server).

    Args:
        pool: The :class:`~repro.serving.replica.ClientPool` to translate
            requests through — built from a
            :class:`~repro.serving.replica.ReplicaGroup` or from bare
            ``(host, port)`` transport addresses.
        host: Gateway bind address.
        port: Gateway TCP port (0 picks an ephemeral port).

    The gateway serves from a daemon thread; use as a context manager or
    call :meth:`start` / :meth:`stop`::

        pool = ClientPool(group)
        with HttpGateway(pool) as gateway:
            requests.post(f"http://{gateway.address[0]}:{gateway.address[1]}"
                          f"/v1/models/isolet:infer", json={"sample": [...]})
    """

    def __init__(self, pool, host: str = "127.0.0.1", port: int = 0):
        self.pool = pool
        self._httpd = _GatewayHTTPServer((host, port), _GatewayHandler, pool)
        self._thread: Optional[threading.Thread] = None
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        if self._thread is not None:
            return self.address
        self.address = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="hdc-http-gateway", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop accepting requests and join the serve thread (the pool's
        frame-protocol connections stay open — the caller owns the pool)."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join()
        self._httpd.server_close()
        self._thread = None
        self.address = None

    def __enter__(self) -> "HttpGateway":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = f"listening on {self.address}" if self.address else "stopped"
        return f"HttpGateway({self.pool!r}, {state})"
