"""Asyncio socket front end over the :class:`RequestBroker`.

:class:`TransportServer` listens on a TCP socket, decodes the frames of
:mod:`repro.serving.transport.protocol` and maps each operation onto the
broker's future contract: an ``infer`` submits one sample and awaits the
broker future via :func:`asyncio.wrap_future`, so one event-loop thread
multiplexes every connection while the actual inference runs on the
worker pool.  Because all front ends share one broker, samples arriving
from different sockets (and from in-process callers) coalesce into the
same micro-batches — concurrency across clients is what feeds the
batcher, which is why aggregate throughput scales with client count (see
``benchmarks/bench_serving.py``).

The event loop runs on a daemon background thread, so the transport
embeds in any host process::

    server = InferenceServer(workers=("cpu",))
    server.register(servable)
    server.start()
    transport = TransportServer(server)      # or TransportServer(broker)
    host, port = transport.start()
    ...
    transport.stop(); server.stop()

Lifecycle note: the transport accepts connections as soon as ``start()``
returns, but requests only settle while the underlying broker is started
— start the broker first (or use both context managers).
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Optional, Tuple

import numpy as np

from repro.serving.observability.prometheus import DEFAULT_NAMESPACE, render_prometheus
from repro.serving.registry import StaleVersionError
from repro.serving.transport.protocol import (
    FrameError,
    PROTOCOL_VERSION,
    ProtocolVersionError,
    decode_array,
    encode_array_header,
    encode_frame,
    read_frame,
)

__all__ = ["TransportServer"]


class TransportServer:
    """A length-prefixed-frame socket server over a request broker.

    Args:
        server: The serving core to expose — an
            :class:`~repro.serving.server.InferenceServer` (its broker is
            used) or a bare :class:`~repro.serving.broker.RequestBroker`.
        host: Bind address (default loopback; bind ``"0.0.0.0"``
            explicitly to serve remote machines).
        port: TCP port; the default 0 picks an ephemeral free port —
            read the bound address from :meth:`start`'s return value.
        reuse_port: Bind with ``SO_REUSEPORT`` so several transport
            servers (one per replica) can share one well-known port and
            let the kernel spread incoming connections across them.
            Requires a fixed ``port`` and a platform that supports the
            option; replica groups fall back to a userspace
            :class:`~repro.serving.replica.ConnectionRouter` where it is
            unavailable.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0, reuse_port: bool = False):
        self.broker = getattr(server, "broker", server)
        self.host = host
        self.port = port
        self.reuse_port = reuse_port
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------------
    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start accepting connections; returns the bound ``(host, port)``."""
        if self._thread is not None:
            return self.address
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(target=self._run, name="hdc-transport", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("transport server failed to start listening")
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self.address

    def stop(self) -> None:
        """Stop accepting connections and join the event-loop thread.

        In-flight broker requests still settle (their futures resolve on
        the worker pool); only the transport goes away.
        """
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join()
        self._thread = None
        self._loop = None
        self.address = None

    def __enter__(self) -> "TransportServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            kwargs = {"reuse_port": True} if self.reuse_port else {}
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port, **kwargs
            )
        except (OSError, ValueError) as exc:
            # ValueError: asyncio rejects reuse_port on platforms without
            # SO_REUSEPORT — surfaced as a startup error like a bind
            # failure, so callers can fall back to a userspace router.
            self._startup_error = exc
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._shutdown.wait()
        # Cancel the connection handlers still parked in read_frame so the
        # loop shuts down without orphaned tasks; their finally blocks
        # close the sockets.
        current = asyncio.current_task()
        handlers = [task for task in asyncio.all_tasks() if task is not current]
        for task in handlers:
            task.cancel()
        await asyncio.gather(*handlers, return_exceptions=True)

    # -- connection handling ------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handshaken = False
        try:
            while True:
                try:
                    header, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # client went away
                except FrameError as exc:
                    # The stream is desynchronized; report and hang up.
                    await self._send(writer, self._error_header(exc))
                    return
                if not handshaken:
                    # PROTOCOL_VERSION is *enforced*: the first frame must
                    # be a matching hello, or the client is rejected with
                    # a typed error frame and the connection closed.
                    response = self._handshake_response(header)
                    try:
                        await self._send(writer, response)
                    except (ConnectionError, OSError):
                        return
                    if not response.get("ok"):
                        return  # mismatched client: rejected, hang up
                    handshaken = True
                    continue
                response, response_payload = await self._dispatch(header, payload)
                try:
                    await self._send(writer, response, response_payload)
                except FrameError as exc:
                    # The *response* could not be framed (oversized array);
                    # report it as a request error so the client fails
                    # loudly instead of reconnect-and-resending a doomed
                    # request until its retry budget burns out.
                    try:
                        await self._send(writer, self._error_header(exc))
                    except (ConnectionError, OSError):
                        return
                except (ConnectionError, OSError):
                    return  # client went away mid-reply; nothing to tell it
        except asyncio.CancelledError:
            # Transport shutdown cancelled us mid-read; exiting normally
            # (instead of staying "cancelled") keeps asyncio.streams'
            # connection_made callback from logging a spurious traceback.
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, header: dict, payload: bytes = b"") -> None:
        writer.write(encode_frame(header, payload))
        await writer.drain()

    @staticmethod
    def _error_header(exc: BaseException) -> dict:
        header = {
            "ok": False,
            "version": PROTOCOL_VERSION,
            "error_type": type(exc).__name__,
            "error": str(exc),
        }
        if isinstance(exc, StaleVersionError):
            # Structured fields so the client rebuilds the typed error
            # (and the HTTP gateway can answer 409 with machine-readable
            # versions) instead of parsing the message string.
            header.update(model=exc.model, model_version=exc.version, min_version=exc.min_version)
        return header

    @staticmethod
    def _handshake_response(header: dict) -> dict:
        """Validate a connection's opening hello frame.

        Both failure modes — a ``hello`` carrying the wrong version, and
        a first frame that is not a ``hello`` at all (a pre-handshake
        client speaking an older protocol) — are answered with the same
        typed :class:`ProtocolVersionError` frame, which always carries
        the server's version so the peer can report both sides.
        """
        if header.get("op") != "hello":
            return TransportServer._error_header(
                ProtocolVersionError(
                    f"expected a hello handshake as the first frame, got "
                    f"op={header.get('op')!r}; this server speaks protocol "
                    f"version {PROTOCOL_VERSION}"
                )
            )
        client_version = header.get("version")
        if client_version != PROTOCOL_VERSION:
            return TransportServer._error_header(
                ProtocolVersionError(
                    f"protocol version mismatch: client speaks "
                    f"{client_version!r}, server speaks {PROTOCOL_VERSION}"
                )
            )
        return {"ok": True, "version": PROTOCOL_VERSION}

    # -- operations ---------------------------------------------------------------
    async def _dispatch(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        op = header.get("op")
        handler = self._OPS.get(op)
        if handler is None:
            return self._error_header(ValueError(f"unknown op {op!r}")), b""
        try:
            return await handler(self, header, payload)
        except Exception as exc:  # per-request failure, not a connection failure
            return self._error_header(exc), b""

    async def _op_infer(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        sample = decode_array(header, payload)
        # The transport owns the trace when the broker has tracing on:
        # minted here (so the chain starts at the socket front end) and
        # finished here, after the closing "transport" span — which lands
        # after the broker's settle step, so the top-level spans tile
        # request arrival to response encoding exactly.
        tracer = self.broker.tracer
        trace = tracer.begin(header["model"]) if tracer is not None else None
        try:
            future = self.broker.submit(
                header["model"],
                sample,
                priority=int(header.get("priority", 0)),
                deadline_ms=header.get("deadline_ms"),
                trace=trace,
                min_version=header.get("min_version"),
            )
            output = await asyncio.wrap_future(future)
            fields, out_payload = encode_array_header(output)
        except Exception as exc:
            if trace is not None:
                trace.fail(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            if trace is not None:
                trace.step("transport", op="infer")
                tracer.finish(trace)
        header_out = {"ok": True, "version": PROTOCOL_VERSION, **fields}
        if trace is not None:
            header_out["trace_id"] = trace.trace_id
        return header_out, out_payload

    async def _op_infer_batch(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        batch = decode_array(header, payload)
        if batch.ndim < 1 or batch.shape[0] == 0:
            raise ValueError(f"infer_batch needs a non-empty leading batch axis, got {batch.shape}")
        # One broker submission per row: the rows flow through the same
        # micro-batcher as everyone else's samples, preserving fairness
        # and deadline semantics, and come back in order.
        futures = [
            self.broker.submit(
                header["model"],
                row,
                priority=int(header.get("priority", 0)),
                deadline_ms=header.get("deadline_ms"),
                min_version=header.get("min_version"),
            )
            for row in batch
        ]
        outputs = await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
        stacked = np.stack([np.asarray(o) for o in outputs])
        fields, out_payload = encode_array_header(stacked)
        return {"ok": True, "version": PROTOCOL_VERSION, **fields}, out_payload

    async def _op_stats(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # ``reset`` snapshots and zeroes the window atomically (one lock
        # acquisition broker-side), so scrape-then-reset over the wire
        # never loses requests that land between two frames.
        stats = self.broker.stats(reset=bool(header.get("reset", False)))
        return {"ok": True, "version": PROTOCOL_VERSION, "stats": stats.to_dict()}, b""

    async def _op_reset_stats(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # The per-interval reporting idiom over the wire: scrape `stats`,
        # then `reset_stats`, so the next snapshot covers the new interval
        # only (SLO thresholds survive; see ServingMetrics.reset).
        self.broker.reset_stats()
        return {"ok": True, "version": PROTOCOL_VERSION}, b""

    async def _op_list_models(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "models": self.broker.registry.names(),
        }, b""

    async def _op_update(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # One online re-training round: retrain on the labelled samples,
        # warm, bump the version, hot-swap.  Blocking (training + compile
        # + swap), so it runs on the default executor — inference frames
        # on other connections keep flowing while the round lands.
        # The payload carries samples then int64 labels back to back; the
        # header's top-level dtype/shape describe the samples and its
        # "labels" object describes the labels.
        sample_dtype = np.dtype(header.get("dtype", "float64"))
        sample_count = int(np.prod([int(d) for d in header.get("shape", ())], dtype=np.int64))
        split = sample_dtype.itemsize * sample_count
        samples = decode_array(header, payload[:split])
        labels = decode_array(header.get("labels") or {}, payload[split:])
        loop = asyncio.get_running_loop()
        model_version = await loop.run_in_executor(
            None, functools.partial(self.broker.update, header["model"], samples, labels)
        )
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "model_version": int(model_version),
        }, b""

    async def _op_append(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # One shape-changing growth round: append the raw rows to the
        # model's growable constants, re-trace for the grown shapes, warm,
        # bump the version, hot-swap.  Blocking like update, so it runs on
        # the default executor — inference frames on other connections
        # keep flowing while the grown deployment cuts over.
        rows = decode_array(header, payload)
        loop = asyncio.get_running_loop()
        model_version = await loop.run_in_executor(
            None, functools.partial(self.broker.append, header["model"], rows)
        )
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "model_version": int(model_version),
        }, b""

    async def _op_model_versions(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "models": self.broker.model_versions(),
        }, b""

    async def _op_drain(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # drain() blocks, so it runs on the default executor — the event
        # loop keeps serving other connections meanwhile.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, functools.partial(self.broker.drain, header.get("timeout"))
        )
        return {"ok": True, "version": PROTOCOL_VERSION}, b""

    async def _op_ping(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        return {"ok": True, "version": PROTOCOL_VERSION, "running": self.broker.running}, b""

    async def _op_metrics(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # The Prometheus exposition: the current stats snapshot rendered
        # as text format 0.0.4 in the payload.  Read-only (no reset), so
        # scrapers never perturb the per-interval reporting idiom.
        stats = self.broker.stats()
        text = render_prometheus(
            stats.to_dict(), namespace=header.get("namespace") or DEFAULT_NAMESPACE
        )
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "content_type": "text/plain; version=0.0.4; charset=utf-8",
        }, text.encode("utf-8")

    async def _op_traces(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        # Retained request traces as JSON-safe dicts; ``clear`` empties
        # the rings after the read (the trace_dump scrape-then-clear
        # idiom).  Empty (with tracing=False) when tracing is disabled.
        limit = header.get("limit")
        traces = self.broker.traces(
            limit=None if limit is None else int(limit),
            clear=bool(header.get("clear", False)),
        )
        return {
            "ok": True,
            "version": PROTOCOL_VERSION,
            "tracing": self.broker.tracer is not None,
            "traces": traces,
        }, b""

    _OPS = {
        "infer": _op_infer,
        "infer_batch": _op_infer_batch,
        "update": _op_update,
        "append": _op_append,
        "model_versions": _op_model_versions,
        "stats": _op_stats,
        "reset_stats": _op_reset_stats,
        "list_models": _op_list_models,
        "drain": _op_drain,
        "ping": _op_ping,
        "metrics": _op_metrics,
        "traces": _op_traces,
    }

    def __repr__(self) -> str:
        state = f"listening on {self.address}" if self.address else "stopped"
        return f"TransportServer({self.broker!r}, {state})"
