"""repro.serving.transport — the network front end of the serving runtime.

The in-process :class:`~repro.serving.server.InferenceServer` and this
package are two front ends over the same
:class:`~repro.serving.broker.RequestBroker`: everything below the
submit boundary (micro-batching, fair scheduling, worker dispatch,
sharding, metrics) is shared, so network clients coalesce into the same
batches as local callers.

* :mod:`~repro.serving.transport.protocol` — the wire format: length-
  prefixed frames carrying a JSON header plus a raw binary payload
  (NumPy array bytes), opened by an **enforced version handshake**
  (mismatched clients are rejected with a typed
  :class:`~repro.serving.transport.protocol.ProtocolVersionError`
  frame), with ``infer`` / ``infer_batch`` / ``update`` /
  ``model_versions`` / ``stats`` / ``list_models`` / ``drain`` /
  ``ping`` operations.
* :class:`~repro.serving.transport.server.TransportServer` — an asyncio
  socket server running on a background thread; broker futures are
  bridged onto awaitables, so thousands of connections multiplex onto
  one event loop while inference stays on the worker pool.
* :class:`~repro.serving.transport.client.ServingClient` — a blocking,
  thread-safe client mirroring the in-process request API
  (``infer`` / ``infer_batch`` / ``stats`` / ``list_models`` /
  ``drain``), raising the same typed
  :class:`~repro.serving.batching.DeadlineExceeded` on sheds, with
  decorrelated-jitter reconnect backoff drawing from an optional shared
  :class:`~repro.serving.transport.client.RetryBudget`.
* :class:`~repro.serving.transport.http.HttpGateway` — a REST/JSON
  front door translating plain HTTP into frame-protocol calls through a
  pooled client (see ``tools/http_gateway.py`` for the CLI).
"""

from repro.serving.transport.client import RemoteServingError, RetryBudget, ServingClient
from repro.serving.transport.http import HttpGateway
from repro.serving.transport.protocol import (
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolVersionError,
    decode_array,
    encode_array_header,
    encode_frame,
    read_frame,
    read_frame_sync,
)
from repro.serving.transport.server import TransportServer

__all__ = [
    "TransportServer",
    "ServingClient",
    "RemoteServingError",
    "RetryBudget",
    "HttpGateway",
    "FrameError",
    "ProtocolVersionError",
    "encode_frame",
    "read_frame",
    "read_frame_sync",
    "encode_array_header",
    "decode_array",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
]
