"""Dynamic micro-batching of single-sample inference requests.

Single requests arrive one at a time; the batched kernel path wants whole
hypermatrices.  :class:`MicroBatcher` sits between the two: requests queue
up in **priority lanes** and are released as one batch when a watermark
trips —

* **size**: ``max_batch_size`` requests are waiting across all lanes,
* **time**: the oldest waiting request has aged ``max_wait_seconds``, or
* **deadline**: some request's deadline is within ``max_wait_seconds`` of
  expiring, so waiting any longer risks shedding it.

The size watermark bounds per-batch work, the time watermark bounds the
latency cost a lightly-loaded service pays for batching, and the deadline
watermark keeps tightly-deadlined requests from losing their whole budget
to coalescing.

Batches are assembled highest-priority-lane first and, within a lane,
**earliest-deadline-first** (requests without a deadline flush after
deadlined ones, in arrival order).  A request whose deadline has already
passed is never dispatched: it is *shed* — its future resolves to a typed
:class:`DeadlineExceeded` error and the shed is reported through
``on_expire`` so :class:`~repro.serving.metrics.ServerStats` can account
for it.

Because compiled programs are traced per batch shape, batches can be padded
up to a small set of bucket sizes (:func:`bucket_for` / :func:`pad_batch`)
so the program cache stays small while every batch size still executes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = [
    "BatcherClosed",
    "DeadlineExceeded",
    "InferenceRequest",
    "MicroBatcher",
    "bucket_for",
    "bucket_ladder",
    "pad_batch",
    "shed_expired",
]


class DeadlineExceeded(TimeoutError):
    """Typed result of a request shed because its deadline expired.

    Raised out of the request's future (``future.result()`` /
    ``InferenceServer.infer``); sheds are counted in
    ``ServerStats.deadline_exceeded``.
    """


class BatcherClosed(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` / :meth:`MicroBatcher.adopt`
    on a closed batcher.

    The typed error lets the broker distinguish "this batcher was just
    hot-swapped out from under me — refetch and retry" from any other
    submit-time failure (see :meth:`RequestBroker.submit`'s
    retry-on-closed loop).
    """


@dataclass
class InferenceRequest:
    """One queued single-sample request.

    Attributes:
        sample: The request payload (one sample of the servable's
            ``sample_shape``).
        priority: Lane selector; higher priorities flush first.  The
            default lane is 0 and negative priorities are allowed.
        deadline_ms: Optional latency budget in milliseconds, measured
            from enqueue.  Expired requests are shed with
            :class:`DeadlineExceeded` instead of executing.
        future: Resolves to the request's result (or error).
        enqueued_at: ``time.monotonic()`` timestamp at submission.
        trace: Optional :class:`~repro.serving.observability.TraceContext`
            riding the request through the pipeline.  The batcher only
            fails it on shed; the broker records the spans.
    """

    sample: np.ndarray
    priority: int = 0
    deadline_ms: Optional[float] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)
    trace: Optional[object] = None

    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute monotonic deadline, or ``None`` for no deadline."""
        if self.deadline_ms is None:
            return None
        return self.enqueued_at + self.deadline_ms / 1e3

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the request's deadline has passed."""
        deadline = self.deadline_at
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= deadline


def _flush_key(request: InferenceRequest) -> tuple:
    """Within-lane flush order: earliest deadline first, then FIFO."""
    deadline = request.deadline_at
    return (deadline if deadline is not None else float("inf"), request.enqueued_at)


def shed_expired(
    requests: List[InferenceRequest],
    now: Optional[float] = None,
    on_shed: Optional[Callable[[int], None]] = None,
) -> "tuple[List[InferenceRequest], int]":
    """Split requests into (live, n_shed), failing the expired ones.

    The single definition of shed semantics: every expired request's
    future resolves to a typed :class:`DeadlineExceeded` here, whether
    the shed happens in the batcher lanes or later in the dispatcher.

    ``on_shed`` (the stats-accounting hook) is invoked with the shed
    count **before** the futures resolve: a caller that observes a
    request's ``DeadlineExceeded`` is therefore guaranteed to see that
    shed in the next metrics snapshot, so the drain-then-stats idiom
    never undercounts.
    """
    now = time.monotonic() if now is None else now
    live: List[InferenceRequest] = []
    expired: List[InferenceRequest] = []
    for request in requests:
        (expired if request.expired(now) else live).append(request)
    if expired and on_shed is not None:
        on_shed(len(expired))
    for request in expired:
        if request.future.done():  # defensive: never die on a settled future
            continue
        message = (
            f"request shed after {(now - request.enqueued_at) * 1e3:.1f}ms "
            f"(deadline {request.deadline_ms}ms)"
        )
        trace = getattr(request, "trace", None)
        if trace is not None:
            trace.fail(f"DeadlineExceeded: {message}")
            trace.finish_owned()
        request.future.set_exception(DeadlineExceeded(message))
    return live, len(expired)


def bucket_for(size: int, max_batch_size: int) -> int:
    """Round a batch size up to the next power-of-two bucket.

    Buckets cap the number of compiled program variants at
    ``log2(max_batch_size) + 1`` while wasting at most 2x padding work.
    """
    if size <= 0:
        raise ValueError("batch size must be positive")
    bucket = 1
    while bucket < size:
        bucket *= 2
    return min(bucket, max_batch_size)


def bucket_ladder(max_batch_size: int, pad_to_buckets: bool = True, full: bool = True) -> list:
    """The warm-bucket set for one deployment, smallest first.

    The single definition of the warming policy (used by registration
    warming and by hot-swap warming, which must agree):

    * padded + ``full`` — the whole power-of-two ladder up to the batch
      watermark, so no batch shape ever compiles at request time;
    * padded, not ``full`` — just ``{1, top}``, the two shapes a fresh
      service meets first;
    * unpadded — ``{1, max_batch_size}``; exact batch shapes compile on
      demand anyway.
    """
    if not pad_to_buckets:
        return sorted({1, max_batch_size})
    buckets = {1, bucket_for(max_batch_size, max_batch_size)}
    if full:
        bucket = 1
        while bucket < max_batch_size:
            buckets.add(bucket)
            bucket *= 2
    return sorted(buckets)


def pad_batch(batch: np.ndarray, bucket: int) -> np.ndarray:
    """Pad a stacked batch up to ``bucket`` rows by repeating the last row.

    Repeating a real sample (rather than zero-filling) keeps the padding
    rows inside the data distribution, so approximated kernels see no
    out-of-range values; callers slice the first ``len(batch)`` results.
    """
    if batch.shape[0] > bucket:
        raise ValueError(f"batch of {batch.shape[0]} does not fit bucket {bucket}")
    if batch.shape[0] == bucket:
        return batch
    pad = np.repeat(batch[-1:], bucket - batch.shape[0], axis=0)
    return np.concatenate([batch, pad], axis=0)


class MicroBatcher:
    """Coalesce single-sample requests into batches under three watermarks.

    Requests land in per-priority lanes; :meth:`next_batch` drains the
    highest-priority lane first and orders each lane earliest-deadline-
    first.  Expired requests are shed (typed :class:`DeadlineExceeded` on
    their future) rather than dispatched.

    Args:
        max_batch_size: Size watermark — flush as soon as this many
            requests wait across all lanes.
        max_wait_seconds: Time watermark — flush once the oldest waiting
            request has aged this long; also the slack under which a
            pending deadline forces an early flush.
        on_expire: Optional callback ``(n_shed,)`` invoked (outside the
            batcher lock is NOT guaranteed; keep it cheap) whenever
            requests are shed, used by the server for stats accounting.
    """

    def __init__(
        self,
        max_batch_size: int = 64,
        max_wait_seconds: float = 0.002,
        on_expire: Optional[Callable[[int], None]] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.on_expire = on_expire
        #: Count of requests shed with :class:`DeadlineExceeded`.
        self.expired = 0
        self._lanes: Dict[int, List[InferenceRequest]] = {}
        self._cond = threading.Condition()
        self._closed = False

    # -- producer side ------------------------------------------------------------
    def submit(
        self,
        sample: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> Future:
        """Enqueue one sample; the returned future resolves to its result.

        Args:
            sample: One request sample.
            priority: Lane selector; higher flushes first (default 0).
            deadline_ms: Optional budget in milliseconds from now; the
                future raises :class:`DeadlineExceeded` if it expires
                before dispatch.
            trace: Optional trace context to ride along on the request.
        """
        request = InferenceRequest(
            np.asarray(sample), priority=int(priority), deadline_ms=deadline_ms, trace=trace
        )
        # Mark the future RUNNING so callers (notably asyncio.wrap_future
        # during a transport shutdown) cannot cancel it: a cancelled
        # future would make the worker's set_result raise
        # InvalidStateError and kill the worker thread mid-batch.
        # Shedding remains the only way a request dies early.
        request.future.set_running_or_notify_cancel()
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            self._lanes.setdefault(request.priority, []).append(request)
            self._cond.notify_all()
        return request.future

    def __len__(self) -> int:
        with self._cond:
            return sum(len(lane) for lane in self._lanes.values())

    @property
    def closed(self) -> bool:
        return self._closed

    # -- request hand-off ---------------------------------------------------------
    def drain_requests(self) -> List[InferenceRequest]:
        """Remove and return every queued request (for batcher hand-over).

        Used when a batcher is replaced while no feeder is draining it
        (e.g. re-registering a model on a stopped server): the successor
        batcher :meth:`adopt`\\ s the requests so none are orphaned.
        """
        with self._cond:
            requests = [
                request for lane in self._lanes.values() for request in lane
            ]
            self._lanes.clear()
            return requests

    def adopt(self, requests: List[InferenceRequest]) -> None:
        """Take over already-submitted requests, keeping their metadata.

        Enqueue timestamps, priorities and deadlines are preserved, so
        adopted requests age (and shed) as if they had never moved.
        """
        with self._cond:
            if self._closed:
                raise BatcherClosed("batcher is closed")
            for request in requests:
                self._lanes.setdefault(request.priority, []).append(request)
            if requests:
                self._cond.notify_all()

    # -- shedding -----------------------------------------------------------------
    def _shed_expired(self, now: float) -> None:
        """Drop expired requests, resolving their futures with the typed error.

        Caller must hold the lock.  Accounting (``expired`` counter and
        the ``on_expire`` callback) runs before the futures resolve — see
        :func:`shed_expired` — so stats reads taken after observing a
        shed never miss it.
        """

        def account(n_shed: int) -> None:
            self.expired += n_shed
            if self.on_expire is not None:
                self.on_expire(n_shed)

        for priority in list(self._lanes):
            live, _ = shed_expired(self._lanes[priority], now, on_shed=account)
            if live:
                self._lanes[priority] = live
            else:
                del self._lanes[priority]

    # -- consumer side ------------------------------------------------------------
    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[InferenceRequest]]:
        """Block until a batch is ready and return it.

        Returns ``None`` when ``timeout`` elapses with an empty queue, or
        when the batcher is closed and fully drained.  After ``close`` the
        remaining (unexpired) requests are still released in batches so
        shutdown never drops work.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                self._shed_expired(now)
                total = sum(len(lane) for lane in self._lanes.values())
                if total:
                    if total >= self.max_batch_size or self._closed:
                        return self._pop_batch()
                    oldest = min(
                        request.enqueued_at
                        for lane in self._lanes.values()
                        for request in lane
                    )
                    age = now - oldest
                    if age >= self.max_wait_seconds:
                        return self._pop_batch()
                    # Deadline watermark: flush early if waiting out the
                    # time watermark would eat a pending deadline's slack.
                    deadlines = [
                        request.deadline_at
                        for lane in self._lanes.values()
                        for request in lane
                        if request.deadline_at is not None
                    ]
                    if deadlines and min(deadlines) - now <= self.max_wait_seconds:
                        return self._pop_batch()
                    # Wake up when the time watermark for the oldest
                    # request trips (or earlier, if new requests arrive).
                    wake = self.max_wait_seconds - age
                    if deadlines:
                        wake = min(wake, max(0.0, min(deadlines) - now - self.max_wait_seconds))
                    self._cond.wait(max(wake, 1e-4))
                else:
                    if self._closed:
                        return None
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return None
                        self._cond.wait(remaining)

    def _pop_batch(self) -> List[InferenceRequest]:
        """Assemble one batch: priority lanes high-to-low, EDF within a lane.

        Caller must hold the lock and have shed expired requests.
        """
        batch: List[InferenceRequest] = []
        for priority in sorted(self._lanes, reverse=True):
            room = self.max_batch_size - len(batch)
            if room <= 0:
                break
            lane = sorted(self._lanes[priority], key=_flush_key)
            batch.extend(lane[:room])
            if room >= len(lane):
                del self._lanes[priority]
            else:
                self._lanes[priority] = lane[room:]
        return batch

    def close(self) -> None:
        """Stop accepting requests; queued work remains drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
