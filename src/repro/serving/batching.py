"""Dynamic micro-batching of single-sample inference requests.

Single requests arrive one at a time; the batched kernel path wants whole
hypermatrices.  :class:`MicroBatcher` sits between the two: requests queue
up and are released as one batch when either watermark trips —

* **size**: ``max_batch_size`` requests are waiting, or
* **time**: the oldest waiting request has aged ``max_wait_seconds``.

The first watermark bounds per-batch work, the second bounds the latency
cost a lightly-loaded service pays for batching.  Because compiled programs
are traced per batch shape, batches can be padded up to a small set of
bucket sizes (:func:`bucket_for` / :func:`pad_batch`) so the program cache
stays small while every batch size still executes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["InferenceRequest", "MicroBatcher", "bucket_for", "pad_batch"]


@dataclass
class InferenceRequest:
    """One queued single-sample request."""

    sample: np.ndarray
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)


def bucket_for(size: int, max_batch_size: int) -> int:
    """Round a batch size up to the next power-of-two bucket.

    Buckets cap the number of compiled program variants at
    ``log2(max_batch_size) + 1`` while wasting at most 2x padding work.
    """
    if size <= 0:
        raise ValueError("batch size must be positive")
    bucket = 1
    while bucket < size:
        bucket *= 2
    return min(bucket, max_batch_size)


def pad_batch(batch: np.ndarray, bucket: int) -> np.ndarray:
    """Pad a stacked batch up to ``bucket`` rows by repeating the last row.

    Repeating a real sample (rather than zero-filling) keeps the padding
    rows inside the data distribution, so approximated kernels see no
    out-of-range values; callers slice the first ``len(batch)`` results.
    """
    if batch.shape[0] > bucket:
        raise ValueError(f"batch of {batch.shape[0]} does not fit bucket {bucket}")
    if batch.shape[0] == bucket:
        return batch
    pad = np.repeat(batch[-1:], bucket - batch.shape[0], axis=0)
    return np.concatenate([batch, pad], axis=0)


class MicroBatcher:
    """Coalesce single-sample requests into batches under two watermarks."""

    def __init__(self, max_batch_size: int = 64, max_wait_seconds: float = 0.002):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self._queue: List[InferenceRequest] = []
        self._cond = threading.Condition()
        self._closed = False

    # -- producer side ------------------------------------------------------------
    def submit(self, sample: np.ndarray) -> Future:
        """Enqueue one sample; the returned future resolves to its result."""
        request = InferenceRequest(np.asarray(sample))
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(request)
            self._cond.notify_all()
        return request.future

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        return self._closed

    # -- consumer side ------------------------------------------------------------
    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[InferenceRequest]]:
        """Block until a batch is ready and return it.

        Returns ``None`` when ``timeout`` elapses with an empty queue, or
        when the batcher is closed and fully drained.  After ``close`` the
        remaining requests are still released (in batches) so shutdown
        never drops work.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._queue:
                    if len(self._queue) >= self.max_batch_size or self._closed:
                        return self._pop_batch()
                    age = time.monotonic() - self._queue[0].enqueued_at
                    if age >= self.max_wait_seconds:
                        return self._pop_batch()
                    # Wake up when the time watermark for the oldest
                    # request trips (or earlier, if new requests arrive).
                    self._cond.wait(self.max_wait_seconds - age)
                else:
                    if self._closed:
                        return None
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return None
                        self._cond.wait(remaining)

    def _pop_batch(self) -> List[InferenceRequest]:
        batch = self._queue[: self.max_batch_size]
        del self._queue[: len(batch)]
        return batch

    def close(self) -> None:
        """Stop accepting requests; queued work remains drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
