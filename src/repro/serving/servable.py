"""Servable model descriptions.

A :class:`Servable` packages everything the serving runtime needs to keep a
trained HDC application warm behind a request queue:

* a *program factory* that traces the inference program for an arbitrary
  micro-batch size (serving coalesces single-sample requests into
  hypermatrix batches, so one traced family yields one program per batch
  bucket);
* the *constants* — trained state such as class memories, random-projection
  encoders or reference tables — bound once per deployment through
  :meth:`repro.backends.CompiledProgram.bind`;
* a *signature* identifying the (program family, shapes, state) triple for
  the compiled-program cache; and
* the request-side contract: which entry parameter carries the batch and
  what shape one sample has.

Each of the five applications in :mod:`repro.apps` exposes an
``as_servable`` adapter producing one of these.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

import numpy as np

from repro.hdcpp.program import Program

__all__ = [
    "NotUpdatableError",
    "NotAppendableError",
    "Servable",
    "ShardSpec",
    "servable_signature",
    "ALL_TARGETS",
    "HOST_TARGETS",
]


class NotUpdatableError(TypeError):
    """Raised when online re-training is requested for a servable that
    carries no ``update_batch`` rule.

    Typed (rather than a bare ``TypeError`` message) so the transport can
    report it by name and clients can distinguish "this model cannot
    learn online" from transient serving failures.
    """


class NotAppendableError(TypeError):
    """Raised when append-style growth is requested for a servable that
    carries no ``append_batch`` rule (or no ``rebuild`` factory to
    re-derive its shape-dependent program family).

    Typed for the same reason as :class:`NotUpdatableError`: the
    transport reports it by name, so clients can tell "this index is
    frozen" from transient serving failures.
    """

#: Targets every fully stage-mapped application supports.
ALL_TARGETS = ("cpu", "gpu", "hdc_asic", "hdc_reram")
#: Targets for applications with host-only ancillary work (Table 4).
HOST_TARGETS = ("cpu", "gpu")


def servable_signature(
    name: str,
    sample_shape: tuple,
    constants: Mapping[str, np.ndarray],
    extra: str = "",
) -> str:
    """Fingerprint a servable from its name, shapes and bound state.

    Unlike :func:`repro.serving.cache.program_signature`, this hashes the
    *contents* of the constants, so re-registering re-trained weights is a
    cache miss while re-registering identical state is a hit.
    """
    digest = hashlib.sha1()
    digest.update(f"{name}|{tuple(sample_shape)}|{extra}".encode())
    for key in sorted(constants):
        value = np.ascontiguousarray(constants[key])
        digest.update(f"|{key}:{value.shape}:{value.dtype}".encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """How a servable's class memory splits across shard workers.

    A sharded deployment slices the constant named ``param`` into N
    contiguous row blocks along ``axis`` and compiles one *partial
    program* per shard via ``build_partial(batch_size, n_rows)``.  The
    partial program must return the raw per-row similarity scores of its
    shard — shape ``(batch_size, n_rows)`` — instead of the arg-reduced
    labels; the serving runtime concatenates the partials in shard order
    (restoring the original row indexing) and applies the ``reduce``
    (``"argmin"`` for distances, ``"argmax"`` for similarities, both with
    first-match tie-breaking, or their top-k forms) on the way back.

    Bit-identity with the unsharded path holds because every score is a
    function of one class-memory row and the query alone: splitting the
    rows changes neither the per-score arithmetic nor — after ordered
    concatenation — the arg-reduction input.

    Attributes:
        param: Name of the constant to split (e.g. ``"class_hvs"``).
        build_partial: ``(batch_size, n_rows) -> Program`` factory tracing
            the partial-score program for one shard size.
        reduce: ``"argmin"`` or ``"argmax"`` — how partial scores fold
            back into predictions.
        axis: Split axis of the constant (default 0: one row per class /
            bucket / library entry).
    """

    param: str
    build_partial: Callable[[int, int], "Program"]
    reduce: str = "argmin"
    axis: int = 0

    def __post_init__(self) -> None:
        if self.reduce not in ("argmin", "argmax"):
            raise ValueError(f"reduce must be 'argmin' or 'argmax', got {self.reduce!r}")


@dataclass
class Servable:
    """A trained model packaged for the serving runtime.

    Attributes:
        name: Model name used for registration and metrics.
        build_program: ``batch_size -> Program`` factory tracing the
            inference program for one micro-batch bucket.
        constants: Entry inputs frozen per deployment (trained state).
        query_param: Name of the entry parameter that carries the batch.
        sample_shape: Shape of a single request sample.
        signature: Stable identity for the compiled-program cache;
            derived from name/shapes/constants when omitted.
        signature_extra: Extra configuration folded into the derived
            signature (e.g. similarity mode) — state the constants alone
            do not capture.  Preserved by :meth:`updated`, so re-trained
            descendants of differently-configured servables never
            collide in the cache.
        supported_targets: Targets this application maps onto.
        postprocess: Optional callable applied to the batched program
            output before per-request results are sliced out.
        shard_spec: Optional :class:`ShardSpec` enabling sharded
            deployments (class memory split across N workers); ``None``
            means the servable only deploys unsharded.
        update_batch: Optional online-update rule
            ``(constants, samples, labels) -> new constants`` — the
            mini-batched training rule of the application applied to the
            deployment's bound state.  ``None`` means the model's state
            is frozen; :meth:`updated` then raises the typed
            :class:`NotUpdatableError`.
        append_batch: Optional append-style growth rule
            ``(constants, rows) -> new constants`` — how a batch of new
            index entries (centroids, reference sequences, spectra)
            grows the declared ``growable`` constants along axis 0.
            Unlike ``update_batch``, the resulting constants may
            *change shape*; :meth:`appended` verifies the growth is
            strictly append-only (old rows stay a bit-identical prefix).
            ``None`` means the index is frozen; :meth:`appended` then
            raises the typed :class:`NotAppendableError`.
        growable: Names of the constants ``append_batch`` may grow
            (axis 0).  Every other constant must pass through untouched.
        rebuild: ``new constants -> Servable`` factory re-deriving the
            whole servable for the grown shapes.  Required alongside
            ``append_batch``, because program factories close over row
            counts (``n_clusters`` / ``n_buckets`` / ``n_library``) —
            only the application adapter can re-trace the program family
            and re-derive the content-hashed signature for a new shape.
        append_row_shape: Shape of one append row as it crosses the
            request boundary (e.g. ``(sequence_length,)`` base indices
            for the hashtable) — validated by :meth:`appended`.  May
            differ from ``sample_shape``; ``None`` skips the check.
        description: Human-readable note for registries/dashboards.
    """

    name: str
    build_program: Callable[[int], Program]
    constants: dict = field(default_factory=dict)
    query_param: str = "queries"
    sample_shape: tuple = ()
    signature: str = ""
    signature_extra: str = ""
    supported_targets: tuple = ALL_TARGETS
    postprocess: Optional[Callable[[np.ndarray], np.ndarray]] = None
    shard_spec: Optional[ShardSpec] = None
    update_batch: Optional[Callable[[dict, np.ndarray, np.ndarray], dict]] = None
    append_batch: Optional[Callable[[dict, np.ndarray], dict]] = None
    growable: tuple = ()
    rebuild: Optional[Callable[[dict], "Servable"]] = None
    append_row_shape: Optional[tuple] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.signature:
            self.signature = servable_signature(
                self.name, self.sample_shape, self.constants, extra=self.signature_extra
            )

    @property
    def updatable(self) -> bool:
        """Whether this servable carries an online-update rule."""
        return self.update_batch is not None

    def updated(self, samples: np.ndarray, labels: np.ndarray) -> "Servable":
        """One online re-training step: a new servable with updated state.

        Applies ``update_batch`` — the application's mini-batched training
        rule — over *read-only views* of the bound constants (rules must
        build fresh arrays; in-place mutation raises) and returns a new
        :class:`Servable` identical except for the updated constants and
        a re-derived signature.  The same callable drives offline
        retraining, so serving an updated servable is bit-identical to
        retraining offline on the same data (same rule, same arithmetic,
        same resulting constants, hence the same compiled programs).

        Raises:
            NotUpdatableError: The servable has no ``update_batch`` rule.
        """
        if self.update_batch is None:
            raise NotUpdatableError(
                f"servable {self.name!r} is not updatable: it carries no "
                f"update_batch rule (its trained state is frozen)"
            )
        samples = np.asarray(samples)
        if samples.ndim < 1 or tuple(samples.shape[1:]) != tuple(self.sample_shape):
            raise ValueError(
                f"{self.name}: update samples have shape {samples.shape}, expected "
                f"(n, *{tuple(self.sample_shape)})"
            )
        labels = np.asarray(labels)
        if labels.shape != (samples.shape[0],):
            raise ValueError(
                f"{self.name}: update labels have shape {labels.shape}, expected "
                f"({samples.shape[0]},)"
            )
        if labels.size and not np.issubdtype(labels.dtype, np.integer):
            raise ValueError(
                f"{self.name}: update labels must be integers, got dtype {labels.dtype}"
            )
        if labels.size and int(labels.min()) < 0:
            # Negative labels would silently index class memories from the
            # end (numpy semantics) and corrupt the swapped-in state.
            raise ValueError(f"{self.name}: update labels must be >= 0, got {labels.min()}")
        # Read-only views, not copies: an update rule that tries to mutate
        # the bound constants in place fails loudly (ValueError) instead
        # of corrupting the state the *old* deployment is still serving
        # mid-swap — without paying a per-round copy of large constants
        # the rule never touches (e.g. the projection matrix).
        working = {}
        for key, value in self.constants.items():
            if isinstance(value, np.ndarray):
                view = value.view()
                view.flags.writeable = False
                working[key] = view
            else:
                working[key] = value
        new_constants = dict(self.update_batch(working, samples, labels))
        for key, value in list(new_constants.items()):
            if value is working.get(key):
                # Untouched key passed straight through: keep the original
                # (writeable) array instead of the guard view.
                new_constants[key] = self.constants[key]
        # signature="" re-derives from the new constants in __post_init__
        # (signature_extra rides along), so the compile cache treats the
        # re-trained state as a distinct program family.
        return dataclasses.replace(self, constants=dict(new_constants), signature="")

    @property
    def appendable(self) -> bool:
        """Whether this servable carries an append-style growth rule."""
        return self.append_batch is not None and self.rebuild is not None

    def appended(self, rows: np.ndarray) -> "Servable":
        """One append-style growth step: a new servable with grown state.

        Applies ``append_batch`` — the application's rule for turning a
        batch of new index entries into extra rows of its ``growable``
        constants — over *read-only views* of the bound constants, checks
        the growth is strictly append-only (every grown constant keeps
        the old rows as a bit-identical prefix; everything else passes
        through untouched), and hands the new constants to ``rebuild`` so
        the program family is re-traced for the grown shapes and the
        signature re-derived from the new contents.  The same rule and
        the same arithmetic drive an offline rebuild of the grown index,
        so serving the appended servable is bit-identical to rebuilding
        offline from the full entry set.

        Raises:
            NotAppendableError: The servable has no ``append_batch`` rule
                (or no ``rebuild`` factory).
        """
        if self.append_batch is None or self.rebuild is None:
            missing = "append_batch rule" if self.append_batch is None else "rebuild factory"
            raise NotAppendableError(
                f"servable {self.name!r} is not appendable: it carries no "
                f"{missing} (its index shape is frozen)"
            )
        rows = np.asarray(rows)
        if rows.ndim < 1 or rows.shape[0] == 0:
            raise ValueError(
                f"{self.name}: append needs a non-empty batch of rows, got shape {rows.shape}"
            )
        if self.append_row_shape is not None and tuple(rows.shape[1:]) != tuple(
            self.append_row_shape
        ):
            raise ValueError(
                f"{self.name}: append rows have shape {rows.shape}, expected "
                f"(n, *{tuple(self.append_row_shape)})"
            )
        # Same read-only-view guard as updated(): a growth rule that
        # mutates the bound constants in place fails loudly instead of
        # corrupting state the old deployment is still serving mid-swap.
        working = {}
        for key, value in self.constants.items():
            if isinstance(value, np.ndarray):
                view = value.view()
                view.flags.writeable = False
                working[key] = view
            else:
                working[key] = value
        new_constants = dict(self.append_batch(working, rows))
        for key, value in list(new_constants.items()):
            if value is working.get(key):
                new_constants[key] = self.constants[key]
        if set(new_constants) != set(self.constants):
            raise ValueError(
                f"{self.name}: append_batch changed the constant set "
                f"({sorted(self.constants)} -> {sorted(new_constants)})"
            )
        for key, value in new_constants.items():
            old = self.constants[key]
            if key in self.growable:
                old_arr, new_arr = np.asarray(old), np.asarray(value)
                if (
                    new_arr.ndim != old_arr.ndim
                    or new_arr.shape[1:] != old_arr.shape[1:]
                    or new_arr.shape[0] < old_arr.shape[0]
                    or not np.array_equal(new_arr[: old_arr.shape[0]], old_arr)
                ):
                    raise ValueError(
                        f"{self.name}: append_batch must grow {key!r} by appending rows "
                        f"(old rows bit-identical as a prefix); got "
                        f"{old_arr.shape} -> {new_arr.shape}"
                    )
            elif value is not old:
                raise ValueError(
                    f"{self.name}: append_batch touched non-growable constant {key!r} "
                    f"(growable: {tuple(self.growable)})"
                )
        fresh = self.rebuild(dict(new_constants))
        if fresh.name != self.name:
            raise ValueError(
                f"{self.name}: rebuild produced a servable named {fresh.name!r}; "
                f"growth must keep the served name"
            )
        return fresh

    def supports_target(self, target) -> bool:
        value = getattr(target, "value", target)
        return value in self.supported_targets

    def validate_sample(self, sample: np.ndarray) -> np.ndarray:
        """Check one request sample against the declared sample shape."""
        array = np.asarray(sample)
        if tuple(array.shape) != tuple(self.sample_shape):
            raise ValueError(
                f"{self.name}: sample has shape {array.shape}, expected {tuple(self.sample_shape)}"
            )
        return array

    def __repr__(self) -> str:
        return (
            f"Servable({self.name!r}, sample={tuple(self.sample_shape)}, "
            f"targets={self.supported_targets}, sig={self.signature[:8]})"
        )
