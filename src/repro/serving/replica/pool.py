"""Client-side connection pooling and routing for replica groups.

:class:`ClientPool` is what callers (benchmark drivers, the HTTP
gateway, application threads) hold instead of a bare
:class:`~repro.serving.transport.ServingClient`:

* **Per-(thread, replica) clients.**  The frame protocol is
  request/response per connection, so a connection serializes its
  callers; the pool gives every thread its own client per replica
  (``threading.local``), which is the idiom that lets N gateway threads
  drive N concurrent requests without a connection lock.
* **Rendezvous routing.**  Each model consistently routes to one live
  replica (:func:`~repro.serving.replica.routing.route`), so a model's
  traffic coalesces into one replica's micro-batches no matter how many
  threads or gateway processes are calling.  Dead replicas drop out of
  the candidate set; only models routed to them move.
* **Shared retry budget.**  All pooled clients draw reconnect-backoff
  tokens from one :class:`~repro.serving.transport.RetryBudget`, so a
  replica outage costs a bounded number of retries *per pool*, not per
  thread — a thundering herd of per-thread retries is exactly what the
  budget exists to prevent.
* **Group-wide writes.**  ``update`` fans out through the owning
  :class:`~repro.serving.replica.ReplicaGroup` when the pool wraps one
  (keeping the group's update log authoritative), or over the wire to
  every replica when the pool was built from bare addresses.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.replica.routing import route
from repro.serving.transport.client import RetryBudget, ServingClient

__all__ = ["ClientPool"]


class ClientPool:
    """Pooled, rendezvous-routed clients over a replica group.

    Args:
        group_or_addresses: A started
            :class:`~repro.serving.replica.ReplicaGroup` (liveness and
            addresses tracked through it; ``update`` delegates to the
            group) or a plain sequence of ``(host, port)`` transport
            addresses (all assumed live; ``update`` fans out over the
            wire).
        retry_budget: Shared reconnect budget; defaults to a fresh
            :class:`RetryBudget` so the pool is herd-safe out of the box.
        **client_options: Extra :class:`ServingClient` keyword arguments
            (``timeout``, ``max_retries``, backoff bounds, ...).
    """

    def __init__(
        self,
        group_or_addresses,
        retry_budget: Optional[RetryBudget] = None,
        **client_options,
    ):
        if hasattr(group_or_addresses, "alive_indices"):
            self._group = group_or_addresses
            self._addresses: List[Tuple[str, int]] = []
        else:
            self._group = None
            self._addresses = [(str(h), int(p)) for h, p in group_or_addresses]
            if not self._addresses:
                raise ValueError("ClientPool needs at least one replica address")
        self.retry_budget = retry_budget if retry_budget is not None else RetryBudget()
        self.client_options = dict(client_options)
        self._local = threading.local()
        # Every client ever created, across threads, so close() can
        # reach clients owned by threads that have since exited.
        self._all_clients: List[ServingClient] = []
        self._all_lock = threading.Lock()
        self._closed = False

    # -- membership ---------------------------------------------------------------
    def _live_indices(self) -> List[int]:
        if self._group is not None:
            return self._group.alive_indices()
        return list(range(len(self._addresses)))

    def _address_of(self, index: int) -> Tuple[str, int]:
        if self._group is not None:
            address = self._group.replicas[index].address
            if address is None:
                raise ConnectionError(f"replica {index} is down")
            return address
        return self._addresses[index]

    def route_for(self, model: str) -> int:
        """The live replica index ``model`` currently routes to."""
        return route(model, self._live_indices())

    # -- client management --------------------------------------------------------
    def _client(self, index: int) -> ServingClient:
        if self._closed:
            raise ConnectionError("client pool is closed")
        clients: Dict[int, ServingClient] = getattr(self._local, "clients", None)
        if clients is None:
            clients = {}
            self._local.clients = clients
        client = clients.get(index)
        if client is None:
            host, port = self._address_of(index)
            client = ServingClient(
                host, port, retry_budget=self.retry_budget, **self.client_options
            )
            clients[index] = client
            with self._all_lock:
                self._all_clients.append(client)
        elif client.address != self._address_of(index):
            # The replica came back on a new port after a resync: retire
            # the stale client and dial the new address.
            client.close()
            clients.pop(index)
            return self._client(index)
        return client

    def close(self) -> None:
        """Close every pooled connection (all threads' clients)."""
        self._closed = True
        with self._all_lock:
            clients, self._all_clients = self._all_clients, []
        for client in clients:
            client.close()

    def __enter__(self) -> "ClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads --------------------------------------------------------------------
    def infer(self, model: str, sample: np.ndarray, **kwargs) -> np.ndarray:
        """Single-sample inference on the replica ``model`` routes to.

        Accepts the :meth:`ServingClient.infer` keywords, including
        ``min_version=N`` for read-your-writes after :meth:`update`.
        """
        return self._client(self.route_for(model)).infer(model, sample, **kwargs)

    def infer_batch(self, model: str, samples: np.ndarray, **kwargs) -> np.ndarray:
        """Batch inference on the replica ``model`` routes to."""
        return self._client(self.route_for(model)).infer_batch(model, samples, **kwargs)

    # -- writes -------------------------------------------------------------------
    def update(self, model: str, samples: np.ndarray, labels) -> int:
        """Group-wide online update; returns the new model version.

        Through a wrapped group this is the group's own update (one
        log append, dead replicas skipped).  Over bare addresses it fans
        out to every replica and returns the maximum version — replicas
        apply the same pure update rule, so versions agree wherever the
        round landed.
        """
        if self._group is not None:
            return self._group.update(model, samples, labels)
        versions = []
        first_error: Optional[Exception] = None
        for index in self._live_indices():
            try:
                versions.append(self._client(index).update(model, samples, labels))
            except Exception as exc:  # noqa: BLE001 - collected, re-raised if total
                if first_error is None:
                    first_error = exc
        if not versions:
            raise first_error if first_error is not None else ConnectionError(
                "no replica accepted the update"
            )
        return max(versions)

    def append(self, model: str, rows: np.ndarray) -> int:
        """Group-wide shape-changing append; returns the new model version.

        Through a wrapped group this is the group's own append (one typed
        growth record in the log, dead replicas skipped).  Over bare
        addresses it fans out to every replica and returns the maximum
        version — the growth rule is pure, so versions agree wherever the
        round landed.  Never resent per replica (appending twice grows
        the index twice).
        """
        if self._group is not None:
            return self._group.append(model, rows)
        versions = []
        first_error: Optional[Exception] = None
        for index in self._live_indices():
            try:
                versions.append(self._client(index).append(model, rows))
            except Exception as exc:  # noqa: BLE001 - collected, re-raised if total
                if first_error is None:
                    first_error = exc
        if not versions:
            raise first_error if first_error is not None else ConnectionError(
                "no replica accepted the append"
            )
        return max(versions)

    # -- observability ------------------------------------------------------------
    def stats(self, reset: bool = False) -> List[Optional[dict]]:
        """Per-replica stats snapshots (``None`` for unreachable ones)."""
        snapshots: List[Optional[dict]] = []
        for index in self._live_indices():
            try:
                snapshots.append(self._client(index).stats(reset=reset))
            except (ConnectionError, OSError):
                snapshots.append(None)
        return snapshots

    def model_versions(self) -> List[Optional[dict]]:
        """Per-replica ``{name: version}`` maps (``None`` if unreachable)."""
        versions: List[Optional[dict]] = []
        for index in self._live_indices():
            try:
                versions.append(self._client(index).model_versions())
            except (ConnectionError, OSError):
                versions.append(None)
        return versions

    def __repr__(self) -> str:
        n = len(self._live_indices())
        backing = "group" if self._group is not None else "addresses"
        return f"ClientPool({n} live replicas via {backing})"
