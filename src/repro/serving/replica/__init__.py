"""Replica groups: horizontal scaling for the serving runtime.

One serving stack's throughput is capped by its batching cadence; a
replica group runs N complete stacks (each with its own registry,
broker and transport, sharing only the immutable compiled-program
cache) and spreads models across them with deterministic rendezvous
routing.  See :mod:`repro.serving.replica.group` for the group-wide
versioned hot-swap / read-your-writes contract, and
``docs/SERVING.md`` ("Replica groups & HTTP gateway") for the guided
tour.
"""

from repro.serving.replica.group import GroupUpdateError, Replica, ReplicaGroup
from repro.serving.replica.pool import ClientPool
from repro.serving.replica.router import ConnectionRouter
from repro.serving.replica.routing import rendezvous_rank, rendezvous_score, route

__all__ = [
    "ClientPool",
    "ConnectionRouter",
    "GroupUpdateError",
    "Replica",
    "ReplicaGroup",
    "rendezvous_rank",
    "rendezvous_score",
    "route",
]
