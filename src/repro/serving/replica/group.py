"""Replica groups: N serving replicas behind one versioned front door.

One :class:`~repro.serving.server.InferenceServer` saturates once its
batching cadence is the bottleneck — each micro-batch costs at most
``max_wait_seconds`` of coalescing delay regardless of how little CPU
the batch itself needs, so per-replica throughput is capped by cadence
long before the host core is.  A :class:`ReplicaGroup` runs N complete
serving stacks (registry + broker + worker pool + socket transport) in
one process, each with its own batching clock, so aggregate throughput
scales with the replica count while clients spread their models across
the group with rendezvous hashing (:mod:`repro.serving.replica.routing`).

Replicas deliberately share exactly one thing: the
:class:`~repro.serving.cache.CompiledProgramCache`.  Compiled programs
are immutable and content-addressed, so sharing the cache makes replica
N's warm-up free after replica 0 compiled, without coupling any mutable
serving state.

**Group-wide versioned hot-swap.**  :meth:`ReplicaGroup.update` applies
one labelled mini-batch to *every* live replica.  The update rule is a
pure function of (constants, samples, labels) (see
:meth:`Servable.updated`), so each replica independently derives the
bit-identical new model at the bit-identical new version — no state is
copied between replicas, ever.  The round is recorded **once** in the
group's :class:`~repro.serving.update_log.UpdateLog` after at least one
replica landed it; a replica that was down (or failed the round) is
marked dead and later repaired by :meth:`resync`, which re-registers the
baseline servables and replays the group log — rebuilding the exact
served versions from first principles.

**Read-your-writes.**  ``update`` returns the new version N; clients pin
follow-up reads with ``infer(..., min_version=N)``.  A replica that
missed the round refuses such reads with the typed
:class:`~repro.serving.registry.StaleVersionError` instead of silently
serving stale predictions — the client fails over or retries after
:meth:`resync` converges the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.cache import CompiledProgramCache
from repro.serving.registry import ModelRegistry
from repro.serving.replica.router import ConnectionRouter
from repro.serving.server import InferenceServer
from repro.serving.servable import Servable
from repro.serving.transport.server import TransportServer
from repro.serving.update_log import UpdateLog

__all__ = ["Replica", "ReplicaGroup", "GroupUpdateError"]


class GroupUpdateError(RuntimeError):
    """A group-wide update failed on every live replica (the versions
    did not advance anywhere, so nothing was logged)."""


@dataclass
class Replica:
    """One member of a :class:`ReplicaGroup`.

    Attributes:
        index: Stable position in the group — the identity rendezvous
            routing hashes against, unchanged by kill/resync cycles.
        server: The replica's serving stack (own registry and broker;
            compile cache shared group-wide).
        transport: The replica's socket front end.
        alive: Whether the replica is serving.  Dead replicas are
            skipped by updates and routing until :meth:`ReplicaGroup.resync`
            repairs them.
    """

    index: int
    server: InferenceServer
    transport: TransportServer
    alive: bool = True

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The transport's bound ``(host, port)`` (``None`` when down)."""
        return self.transport.address if self.alive else None


@dataclass
class _Registration:
    """A baseline registration, remembered so resync can rebuild it."""

    servable: Servable
    options: dict = field(default_factory=dict)


class ReplicaGroup:
    """N serving replicas with group-wide registration, update and repair.

    Args:
        replicas: Number of replicas to run.
        host: Bind address for every replica transport.
        port: Front-door port under ``share_port`` (0 picks one port and
            shares it); ignored otherwise (each replica gets an
            ephemeral port).
        share_port: Bind every replica transport to the *same* port with
            ``SO_REUSEPORT`` so the kernel spreads connections.  Falls
            back automatically to per-replica ports where the platform
            lacks the option — use :meth:`router` for a single front
            door there.
        update_log: Optional group-owned :class:`UpdateLog`.  Recorded
            once per successful group update (never per replica); the
            source of truth :meth:`resync` replays.
        server_options: Extra keyword arguments for every replica's
            :class:`InferenceServer` (workers, policy, batching
            watermarks, ...).  ``registry`` / ``update_log`` are owned
            by the group and may not be overridden.
    """

    def __init__(
        self,
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        share_port: bool = False,
        update_log: Optional[UpdateLog] = None,
        **server_options,
    ):
        if replicas < 1:
            raise ValueError(f"a replica group needs at least 1 replica, got {replicas}")
        for owned in ("registry", "update_log"):
            if owned in server_options:
                raise ValueError(
                    f"{owned!r} is owned by the group and cannot be passed per replica"
                )
        self.n_replicas = int(replicas)
        self.host = host
        self.port = int(port)
        self.share_port = bool(share_port)
        self.update_log = update_log
        self.server_options = dict(server_options)
        #: The one piece of state replicas share: the compiled-program
        #: cache.  Programs are immutable and content-addressed, so this
        #: makes warm-up O(1) per replica after the first.
        self.cache = CompiledProgramCache()
        self.replicas: List[Replica] = []
        self._registrations: Dict[str, _Registration] = {}
        self._started = False

    # -- construction helpers -----------------------------------------------------
    def _build_server(self, index: int) -> InferenceServer:
        # Each replica has its own registry (independent versions, so a
        # dead replica's staleness is observable) over the shared cache.
        # Replica brokers get NO update log: the group logs each round
        # exactly once, after it landed somewhere.
        options = dict(self.server_options)
        workers = options.get("workers")
        if callable(workers):
            # Worker *instances* hold a queue and an execution thread, so
            # they cannot be shared between replicas; a callable spec is
            # invoked once per replica (with its index) to build a private
            # worker set — also what resync uses to rebuild one.
            options["workers"] = workers(index)
        return InferenceServer(registry=ModelRegistry(cache=self.cache), **options)

    def _start_transport(self, server: InferenceServer) -> TransportServer:
        if self.share_port:
            transport = TransportServer(
                server, host=self.host, port=self.port, reuse_port=True
            )
            try:
                address = transport.start()
            except (ValueError, OSError):
                # No SO_REUSEPORT on this platform: degrade to
                # per-replica ephemeral ports; router() still provides a
                # single front door.
                self.share_port = False
            else:
                if self.port == 0:
                    # First replica picked the port; the rest share it.
                    self.port = int(address[1])
                return transport
        transport = TransportServer(server, host=self.host, port=0)
        transport.start()
        return transport

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "ReplicaGroup":
        """Start every replica (servers first, then their transports)."""
        if self._started:
            return self
        for index in range(self.n_replicas):
            server = self._build_server(index)
            for registration in self._registrations.values():
                server.register(registration.servable, **registration.options)
            server.start()
            transport = self._start_transport(server)
            self.replicas.append(Replica(index=index, server=server, transport=transport))
        self._started = True
        return self

    def stop(self) -> None:
        """Stop every live replica (transports first, then servers)."""
        for replica in self.replicas:
            if replica.alive:
                replica.transport.stop()
                replica.server.stop()
                replica.alive = False
        self.replicas = []
        self._started = False

    def __enter__(self) -> "ReplicaGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- membership ---------------------------------------------------------------
    def alive_indices(self) -> List[int]:
        """Indices of the replicas currently serving."""
        return [replica.index for replica in self.replicas if replica.alive]

    def addresses(self) -> List[Optional[Tuple[str, int]]]:
        """Per-replica transport addresses (``None`` for dead replicas)."""
        return [replica.address for replica in self.replicas]

    def kill(self, index: int) -> None:
        """Hard-stop one replica (transport and server), as a crash would.

        The replica stays in the group as a dead member: updates skip
        it, routing excludes it, and :meth:`resync` repairs it.
        """
        replica = self.replicas[index]
        if not replica.alive:
            return
        replica.transport.stop()
        replica.server.stop()
        replica.alive = False

    def resync(self, index: int) -> Replica:
        """Repair a dead replica from the baseline plus the group log.

        Builds a fresh server over the shared compile cache, re-registers
        every baseline servable, replays the group's update log through
        the ordinary ``update`` path — same rule, same arithmetic, hence
        bit-identical constants and the exact recorded versions
        (:meth:`UpdateLog.replay` verifies them) — and restarts the
        transport.  After resync the replica serves the same versions as
        the rest of the group and accepts pinned reads again.
        """
        replica = self.replicas[index]
        if replica.alive:
            return replica
        server = self._build_server(replica.index)
        for registration in self._registrations.values():
            server.register(registration.servable, **registration.options)
        server.start()
        if self.update_log is not None:
            self.update_log.replay(server)
        replica.server = server
        replica.transport = self._start_transport(server)
        replica.alive = True
        return replica

    # -- group-wide operations ----------------------------------------------------
    def register(self, servable: Servable, **options) -> str:
        """Register a servable on every live replica; returns its name.

        The registration (servable + options) is remembered as the
        baseline :meth:`resync` rebuilds dead replicas from, so register
        the *initial* model here and evolve it through :meth:`update` —
        that keeps baseline + log a complete description of the served
        state.
        """
        name = options.get("name") or servable.name
        self._registrations[name] = _Registration(servable=servable, options=dict(options))
        for replica in self.replicas:
            if replica.alive:
                replica.server.register(servable, **options)
        return name

    def update(self, model: str, samples: np.ndarray, labels: np.ndarray) -> int:
        """One group-wide online re-training round; returns the version.

        Every live replica applies the same mini-batch through its own
        ``update`` path; determinism of the update rule makes the
        resulting deployments bit-identical at the same version, so no
        replica-to-replica state transfer is needed.  Partial failure is
        tolerated: replicas whose round failed are marked dead (their
        versions no longer advance — serving pinned reads from them
        would violate read-your-writes) and are repaired by
        :meth:`resync`.  The round is appended to the group log exactly
        once, after at least one replica landed it.

        Raises:
            GroupUpdateError: No live replica landed the round (the
                first per-replica error is chained as the cause).
        """
        samples = np.asarray(samples)
        labels = np.asarray(labels)
        versions: Dict[int, int] = {}
        errors: Dict[int, Exception] = {}
        for replica in self.replicas:
            if not replica.alive:
                continue
            try:
                versions[replica.index] = replica.server.update(model, samples, labels)
            except Exception as exc:  # noqa: BLE001 - recorded per replica
                errors[replica.index] = exc
        if not versions:
            raise GroupUpdateError(
                f"group update of {model!r} failed on every live replica "
                f"({len(errors)} errors)"
            ) from (next(iter(errors.values())) if errors else None)
        if errors:
            # A replica that failed the round is stale from here on:
            # take it out of the group rather than let it serve old
            # versions as if nothing happened.
            for index in errors:
                self.kill(index)
        version = max(versions.values())
        if self.update_log is not None:
            self.update_log.append(model, samples, labels, version=version)
        return version

    def append(self, model: str, rows: np.ndarray) -> int:
        """One group-wide shape-changing growth round; returns the version.

        The append-side twin of :meth:`update`: every live replica grows
        the same rows through its own ``append`` path — determinism of
        the growth rule makes the grown deployments bit-identical at the
        same version — failed replicas are killed (stale shapes must not
        serve pinned reads), and the round lands in the group log exactly
        once as a typed growth record, which :meth:`resync`'s replay
        re-applies through ``append`` to rebuild byte-identical grown
        constants.

        Raises:
            GroupUpdateError: No live replica landed the round (the
                first per-replica error is chained as the cause).
        """
        rows = np.asarray(rows)
        versions: Dict[int, int] = {}
        errors: Dict[int, Exception] = {}
        for replica in self.replicas:
            if not replica.alive:
                continue
            try:
                versions[replica.index] = replica.server.append(model, rows)
            except Exception as exc:  # noqa: BLE001 - recorded per replica
                errors[replica.index] = exc
        if not versions:
            raise GroupUpdateError(
                f"group append to {model!r} failed on every live replica "
                f"({len(errors)} errors)"
            ) from (next(iter(errors.values())) if errors else None)
        if errors:
            for index in errors:
                self.kill(index)
        version = max(versions.values())
        if self.update_log is not None:
            self.update_log.append_rows(model, rows, version=version)
        return version

    # -- observability ------------------------------------------------------------
    def model_versions(self) -> List[Optional[dict]]:
        """Per-replica ``{name: version}`` maps (``None`` for dead ones)."""
        return [
            replica.server.model_versions() if replica.alive else None
            for replica in self.replicas
        ]

    def stats(self, reset: bool = False) -> List[Optional[dict]]:
        """Per-replica :class:`ServerStats` snapshots as dicts (``None``
        for dead replicas) — feed :func:`repro.serving.metrics.merge_server_stats`
        for the group-wide view."""
        return [
            replica.server.stats(reset=reset).to_dict() if replica.alive else None
            for replica in self.replicas
        ]

    def drain(self, timeout: Optional[float] = None) -> None:
        """Drain every live replica's request queue."""
        for replica in self.replicas:
            if replica.alive:
                replica.server.drain(timeout)

    # -- front doors ---------------------------------------------------------------
    def router(self, host: str = "127.0.0.1", port: int = 0) -> ConnectionRouter:
        """A started userspace front door over the live replicas.

        The caller owns the router's lifecycle (``stop()`` it before the
        group).  Under ``share_port`` the kernel already provides the
        single port; this is the fallback for platforms without
        ``SO_REUSEPORT`` and for spreading external clients that do not
        run rendezvous routing themselves.
        """
        backends = [address for address in self.addresses() if address is not None]
        router = ConnectionRouter(backends, host=host, port=port)
        router.start()
        return router

    def __repr__(self) -> str:
        alive = len(self.alive_indices())
        return (
            f"ReplicaGroup({alive}/{len(self.replicas) or self.n_replicas} alive, "
            f"models={sorted(self._registrations)}, share_port={self.share_port})"
        )
