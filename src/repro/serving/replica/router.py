"""A single-port front door for a replica group.

Where the platform supports ``SO_REUSEPORT`` a replica group binds every
replica's :class:`~repro.serving.transport.TransportServer` to the same
port and lets the kernel spread incoming connections.  Where it does not
(or where deterministic spreading is wanted), :class:`ConnectionRouter`
provides the same contract in userspace: it listens on one port and
splices each accepted connection to a backend replica, chosen
round-robin at **connect** time.

Routing whole connections (not individual frames) keeps the router
protocol-agnostic — it never parses frames, so handshakes, pipelining
and per-connection server state all behave exactly as with a direct
connection — and it keeps the model→replica affinity decision where it
belongs, in the client's rendezvous hash: a :class:`ClientPool` opens
one connection per (thread, replica) directly, while simple external
clients that just dial the front door still get spread across the
group.

The router reuses the transport's daemon-event-loop lifecycle: byte
pumps are asyncio tasks, so one thread multiplexes every spliced
connection.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Optional, Sequence, Tuple

__all__ = ["ConnectionRouter"]


class ConnectionRouter:
    """Round-robin TCP connection splicer in front of replica transports.

    Args:
        backends: ``(host, port)`` addresses of the replica transports.
        host: Bind address of the front-door listener.
        port: Front-door TCP port (0 picks an ephemeral port).
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if not backends:
            raise ValueError("ConnectionRouter needs at least one backend address")
        self.backends = [(str(h), int(p)) for h, p in backends]
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        #: Connections accepted per backend index (telemetry for tests
        #: and for eyeballing spread; mutated only on the loop thread).
        self.connections_routed = [0] * len(self.backends)
        self._next = itertools.count()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------------
    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        """Start the front-door listener; returns the bound ``(host, port)``."""
        if self._thread is not None:
            return self.address
        self._started.clear()
        self._startup_error = None
        self._thread = threading.Thread(target=self._run, name="hdc-conn-router", daemon=True)
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("connection router failed to start listening")
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self.address

    def stop(self) -> None:
        """Close the listener and every spliced connection."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)
        self._thread.join()
        self._thread = None
        self._loop = None
        self.address = None

    def __enter__(self) -> "ConnectionRouter":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._shutdown.wait()
        current = asyncio.current_task()
        pumps = [task for task in asyncio.all_tasks() if task is not current]
        for task in pumps:
            task.cancel()
        await asyncio.gather(*pumps, return_exceptions=True)

    # -- splicing -----------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = next(self._next) % len(self.backends)
        host, port = self.backends[index]
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(host, port)
        except OSError:
            # Backend refused (e.g. a killed replica): hang up so the
            # client's reconnect backoff re-dials and round-robin lands
            # it on the next backend.
            writer.close()
            return
        self.connections_routed[index] += 1
        try:
            await asyncio.gather(
                self._pump(reader, upstream_writer),
                self._pump(upstream_reader, writer),
            )
        except asyncio.CancelledError:
            return
        finally:
            for w in (writer, upstream_writer):
                w.close()
                try:
                    await w.wait_closed()
                except (ConnectionError, OSError):
                    pass

    @staticmethod
    async def _pump(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """Copy bytes one way until EOF or either peer resets."""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.write_eof()
            except (ConnectionError, OSError, RuntimeError):
                pass

    def __repr__(self) -> str:
        state = f"listening on {self.address}" if self.address else "stopped"
        return f"ConnectionRouter({len(self.backends)} backends, {state})"
