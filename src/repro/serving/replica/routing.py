"""Consistent model→replica routing via rendezvous (HRW) hashing.

A replica group wants two properties from its routing function:

* **Consistency** — every client (and every thread of every gateway)
  must route the same model to the same replica without coordinating,
  so that model's requests coalesce into one replica's micro-batches
  instead of fragmenting across the group.
* **Spread** — distinct models should land on distinct replicas with
  uniform probability, so the hot-model skew the matrix harness
  produces (one model taking most of the traffic) spreads the *other*
  models away from the hot replica instead of stacking behind it.

Rendezvous hashing gives both with no ring state: score every
(model, replica) pair with a deterministic hash and pick the replica
with the highest score.  When a replica dies, only the models that
ranked it first move (to their second choice) — every other assignment
is untouched, which is the property modulo hashing lacks.

The hash is SHA-256 over ``"model|replica_index"`` — deterministic
across processes, machines and Python versions (no ``PYTHONHASHSEED``
dependence), so a gateway fleet agrees on routes by construction.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

__all__ = ["rendezvous_score", "rendezvous_rank", "route"]


def rendezvous_score(model: str, replica: int) -> int:
    """The deterministic HRW score of one (model, replica) pair."""
    digest = hashlib.sha256(f"{model}|{int(replica)}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_rank(model: str, replicas: Sequence[int]) -> List[int]:
    """Replica indices ordered best-first for ``model``.

    The full preference order is what failover uses: when the top choice
    is dead, the model moves to its second choice — and *only* models
    whose top choice died move at all.
    """
    return sorted(replicas, key=lambda index: rendezvous_score(model, index), reverse=True)


def route(model: str, replicas: Sequence[int]) -> int:
    """The preferred replica index for ``model`` among ``replicas``.

    Raises:
        ValueError: ``replicas`` is empty (no live replica to route to).
    """
    if not replicas:
        raise ValueError(f"cannot route model {model!r}: no live replicas")
    return max(replicas, key=lambda index: rendezvous_score(model, index))
