"""The transport-agnostic request core of the serving runtime.

:class:`RequestBroker` owns the whole submit→batch→schedule→dispatch→settle
path and speaks **futures** at its boundary: :meth:`RequestBroker.submit`
enqueues one sample and returns a :class:`concurrent.futures.Future` that
resolves to the request's result (or error).  Everything above the broker
is a *front end* that adapts some caller interface onto that future
contract:

* :class:`repro.serving.server.InferenceServer` — the synchronous
  in-process API (``submit`` / ``infer`` / ``infer_many``), now a thin
  adapter over a broker it owns;
* :mod:`repro.serving.transport` — the asyncio socket front end, which
  bridges broker futures onto awaitables (``asyncio.wrap_future``) so many
  network clients coalesce into the same micro-batches.

Request flow: ``submit`` enqueues a single sample (optionally with a
``priority`` lane and a ``deadline_ms`` budget) into the model's
:class:`~repro.serving.batching.MicroBatcher`; a per-model *feeder* thread
releases batches when a watermark trips and offers them to the
:class:`~repro.serving.scheduler.FairScheduler`; one *dispatcher* thread
drains the scheduler under weighted round-robin with starvation aging —
holding batches back while every eligible worker is saturated, so a hot
model's backlog queues in the scheduler (where it can be interleaved)
instead of in worker FIFOs (where it cannot) — and routes each batch to a
worker under the pool's policy.  The worker pads the batch to a
power-of-two bucket, runs it through the deployment's warm
:class:`~repro.backends.BoundProgram` handle (compiled at most once per
bucket via the shared program cache), and resolves the per-request futures
with the sliced results.

Sharded deployments scatter instead of dispatching: one batch fans out to
N workers, each searching its slice of the class memory, and the last
shard to finish reduces the gathered partial scores back into predictions
(see :class:`~repro.serving.registry.ShardedDeployment`).

Requests whose deadline expires before execution are shed with a typed
:class:`~repro.serving.batching.DeadlineExceeded` error and counted in
``ServerStats.deadline_exceeded``.  Per deployment, the broker records the
queue-wait vs execute latency split and enforces the optional SLO
violation counter (see :mod:`repro.serving.metrics`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from typing import List, Optional

import numpy as np

from repro.serving.batching import (
    BatcherClosed,
    MicroBatcher,
    bucket_for,
    bucket_ladder,
    pad_batch,
    shed_expired,
)
from repro.serving.metrics import ServerStats, ServingMetrics
from repro.serving.observability.trace import (
    RequestTracer,
    TraceContext,
    record_child_shared,
    record_step_shared,
)
from repro.serving.registry import Deployment, ModelRegistry, ShardedDeployment, StaleVersionError
from repro.serving.scheduler import BatchWork, FairScheduler, ShardGather, Worker, WorkerPool

__all__ = ["RequestBroker"]

#: Sentinel for swap()'s "keep the current setting" defaults (None is a
#: meaningful value for slo_ms: it clears the SLO).
_KEEP = object()


class RequestBroker:
    """The futures-speaking submit→batch→schedule→dispatch→settle core.

    Args:
        registry: Deployment lookup (and the shared compile cache).
        pool: The worker pool executing dispatched batches.
        max_batch_size: Micro-batching size watermark.
        max_wait_seconds: Micro-batching time watermark.
        pad_to_buckets: Pad batches to power-of-two buckets so at most
            ``log2(max_batch_size) + 1`` program variants compile per
            (model, target); disable to compile exact batch shapes.
        latency_window: Retained latency samples for the percentiles.
        scheduler_aging_seconds: Starvation-aging constant of the
            :class:`FairScheduler` — the head-of-lane wait that earns one
            weighted-round-robin turn.
        worker_backlog_samples: Admission-control threshold: the
            dispatcher holds the next batch while every eligible worker
            has at least this many samples in flight.  Defaults to
            ``2 * max_batch_size`` (one executing batch plus one queued).
        tracing: Enable per-request tracing: every submitted request
            carries a :class:`~repro.serving.observability.TraceContext`
            whose contiguous spans (queue → batch → schedule → dispatch →
            execute → settle, with per-stage children) tile its lifetime;
            completed traces land in :attr:`tracer` under tail-based
            sampling.  Front ends may also pass their own ``trace`` into
            :meth:`submit` (they then own its completion).
        trace_capacity: Per-ring trace retention of the tracer.
        trace_sample_every: Keep 1-in-N healthy traces (errors and SLO
            violators are always retained).
        update_log: Optional :class:`~repro.serving.update_log.UpdateLog`;
            when set, every successful :meth:`update` round appends the
            labelled mini-batch it applied (and the version it produced),
            making served versions rebuildable by replaying the log into
            a freshly registered baseline.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        pool: WorkerPool,
        max_batch_size: int = 64,
        max_wait_seconds: float = 0.002,
        pad_to_buckets: bool = True,
        latency_window: int = 8192,
        scheduler_aging_seconds: float = 0.25,
        worker_backlog_samples: Optional[int] = None,
        tracing: bool = False,
        trace_capacity: int = 512,
        trace_sample_every: int = 1,
        update_log=None,
    ):
        self.registry = registry
        self.pool = pool
        #: Optional :class:`~repro.serving.update_log.UpdateLog`: every
        #: successful :meth:`update` round appends its mini-batch (after
        #: the hot-swap lands), so a restarted broker can
        #: :meth:`~repro.serving.update_log.UpdateLog.replay` the log and
        #: rebuild the exact served versions bit-identically.
        self.update_log = update_log
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.pad_to_buckets = pad_to_buckets
        self.scheduler_aging_seconds = scheduler_aging_seconds
        self.worker_backlog_samples = (
            worker_backlog_samples if worker_backlog_samples is not None else 2 * max_batch_size
        )
        self.metrics = ServingMetrics(latency_window=latency_window)
        #: The bounded trace ring (``None`` when tracing is disabled).
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(capacity=trace_capacity, sample_every=trace_sample_every)
            if tracing
            else None
        )
        self._scheduler: Optional[FairScheduler] = None
        self._batchers: dict = {}
        #: The deployment each live queue's feeder serves, pinned under the
        #: broker lock at install time — feeders never re-resolve the
        #: registry, so a queue's requests always execute against exactly
        #: the deployment that queue was installed for.
        self._deployments: dict = {}
        #: Pinned shard→worker plans, ``name -> ((version, n_shards),
        #: plan)``.  Touched only by the dispatcher thread, so unlocked.
        self._placements: dict = {}
        self._weights: dict = {}
        self._feeders: List[threading.Thread] = []
        self._dispatcher: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._running = False
        # Serializes whole online-update rounds (read state -> retrain ->
        # swap), so two concurrent update() calls of one model compose
        # instead of one clobbering the other's training step.
        self._update_lock = threading.Lock()
        # Outstanding-request accounting behind drain(): every submitted
        # future counts until it resolves (result, failure or shed).
        self._outstanding = 0
        self._drain_cond = threading.Condition()

    @property
    def running(self) -> bool:
        return self._running

    # -- model wiring -------------------------------------------------------------
    def add_model(
        self,
        deployment: Deployment,
        weight: float = 1.0,
        slo_ms: Optional[float] = None,
    ) -> None:
        """Set up (or replace) the request queue of one deployment.

        Re-adding under an existing name hot-swaps the model's queue.
        While running, closing the old batcher makes its feeder drain the
        queued requests (against the old deployment) and exit.  While
        stopped there is no feeder, so the new batcher adopts the queued
        requests instead — they resolve against the new deployment once
        the broker starts, never orphaned.

        Args:
            weight: Fair-scheduler share.  Under contention a deployment
                receives batches proportionally to its weight, with
                starvation aging protecting low-weight lanes.
            slo_ms: Optional end-to-end latency SLO; served requests
                exceeding it are counted per model in
                ``ServerStats.model_stats[name]["slo_violations"]``.
        """
        with self._lock:
            swapped = self._install_queue_locked(deployment, float(weight), slo_ms)
        if swapped:
            self.metrics.record_swap(deployment.name, deployment.version)
        # Recorded unconditionally: installing an unpacked deployment over
        # a packed one must clear the stale residency document.  Eagerly
        # materialized (ensure_packed, not residency) so the class-memory
        # gauges reflect the installed constant bytes immediately even for
        # an unwarmed deployment, not lazily at the next stats() pass.
        self.metrics.record_residency(deployment.name, deployment.ensure_packed())

    def swap(
        self,
        deployment: Deployment,
        weight=_KEEP,
        slo_ms=_KEEP,
    ) -> None:
        """Hot-swap a live model's queue onto a replacement deployment.

        The safe swap path: the replacement batcher is installed first
        (so :meth:`submit`'s locked fetch + retry-on-closed hands every
        new request to it), and only then is the old batcher closed —
        which never drops work: its feeder drains the queued requests
        into the scheduler, where they execute against the *old*
        deployment (each feeder pins the deployment it started with), and
        exits once the queue is empty.  The old deployment therefore
        quiesces exactly when its in-flight requests have settled, while
        the new one is already serving — zero downtime, zero drops.

        Call :meth:`ModelRegistry.swap` (which bumps the version) before
        this, so the replacement feeder resolves the new deployment; or
        use :meth:`update`, which orchestrates the whole round.

        Args:
            weight / slo_ms: Omitted values keep the model's current
                fair-scheduler share / SLO threshold (``slo_ms=None``
                explicitly clears the SLO).

        Raises:
            KeyError: The model has no live queue (use :meth:`add_model`).
        """
        name = deployment.name
        with self._lock:
            if name not in self._batchers:
                raise KeyError(
                    f"no model {name!r} to swap (have {sorted(self._batchers)})"
                )
            new_weight = self._weights.get(name, 1.0) if weight is _KEEP else float(weight)
            self._install_queue_locked(
                deployment, new_weight, self.metrics.slo_ms(name) if slo_ms is _KEEP else slo_ms
            )
        self.metrics.record_swap(name, deployment.version)
        # Eager: the swapped-in constants' packed bytes are gauged now, at
        # swap time, even if the replacement was never warmed.
        self.metrics.record_residency(name, deployment.ensure_packed())

    def _install_queue_locked(self, deployment: Deployment, weight: float, slo_ms) -> bool:
        """Install a fresh batcher for one deployment (caller holds the
        lock); returns whether an existing queue was replaced.

        Replace-then-close ordering: the new batcher is in the map before
        the old one closes, so a concurrent :meth:`submit` that loses the
        race against the close finds the replacement on its first retry.
        """
        name = deployment.name
        old = self._batchers.get(name)
        batcher = self._make_batcher()
        self._batchers[name] = batcher
        self._deployments[name] = deployment
        if old is not None:
            # Close BEFORE draining: a concurrent submit that already
            # fetched the old batcher now gets BatcherClosed and retries
            # into the replacement (installed above).  The reverse order
            # leaves a window — drain, racing enqueue succeeds, close —
            # that orphans the racing request in a batcher nothing will
            # ever feed or adopt again.
            old.close()
            if not self._running:
                batcher.adopt(old.drain_requests())
        self._weights[name] = float(weight)
        self.metrics.set_slo(name, slo_ms)
        if self._scheduler is not None:
            self._scheduler.ensure_lane(name, weight)
        if self._running:
            self._start_feeder(name)
        return old is not None

    def _make_batcher(self) -> MicroBatcher:
        return MicroBatcher(
            max_batch_size=self.max_batch_size,
            max_wait_seconds=self.max_wait_seconds,
            on_expire=self.metrics.record_expired,
        )

    # -- online re-training -------------------------------------------------------
    def update(self, model: str, samples: np.ndarray, labels: np.ndarray) -> int:
        """One online re-training round; returns the new model version.

        Orchestrates the whole streaming-retraining step:

        1. apply the servable's ``update_batch`` rule to the labelled
           mini-batch (:meth:`Servable.updated` — the same callable an
           offline retrain uses, so the resulting state is bit-identical);
        2. build a same-shaped replacement deployment and warm its
           serving buckets on every eligible worker, so the swap never
           compiles on the request path;
        3. bump the registry version (:meth:`ModelRegistry.swap`) and
           install the replacement queue (:meth:`swap`) — new requests
           cut over immediately, in-flight requests settle against the
           old version.

        Rounds are serialized per broker, so concurrent updates compose
        (each trains on top of the previous round's state) instead of
        clobbering one another.

        Raises:
            NotUpdatableError: The servable carries no update rule.
            KeyError: ``model`` is not registered (or has no live queue).
            RuntimeError: The model was re-registered concurrently during
                the round (the registry's compare-and-swap guard refused
                to clobber the newer deployment); re-issue the update.
        """
        with self._update_lock:
            with self._lock:
                # Checked before any registry mutation: a model known to
                # the registry but without a live queue here must fail
                # cleanly, not leave a bumped version no queue serves.
                if model not in self._batchers:
                    raise KeyError(
                        f"no model {model!r} with a live queue to update "
                        f"(have {sorted(self._batchers)})"
                    )
            deployment = self.registry.get(model)
            new_servable = deployment.servable.updated(samples, labels)
            replacement = deployment.with_servable(new_servable)
            buckets = self._swap_warm_buckets()
            for worker in self.pool.eligible(new_servable):
                replacement.warm(buckets, worker=worker)
            # Compare-and-swap against the deployment this round trained
            # from: a concurrent re-register under the same name refuses
            # the swap instead of being clobbered by a stale derivation.
            version = self.registry.swap(model, replacement, expected=deployment)
            self.swap(replacement)
            if self.update_log is not None:
                # Logged only after the swap landed, so the log never
                # describes a version that failed to serve.  (During
                # UpdateLog.replay the hook is a no-op — replayed rounds
                # are already in the log.)
                self.update_log.append(model, samples, labels, version=version)
            if deployment.servable.signature != new_servable.signature:
                # The replaced version's compiled programs can never hit
                # again (its content-hashed state is gone); reclaim them
                # so periodic updates don't grow the cache without bound.
                # In-flight batches of the old deployment are unaffected —
                # their handles are already bound.
                self.registry.cache.evict_signature(deployment.servable.signature)
            return version

    # -- append-style growth ------------------------------------------------------
    def append(self, model: str, rows: np.ndarray) -> int:
        """One shape-changing growth round; returns the new model version.

        The append-side twin of :meth:`update`, for servables whose online
        mutation is *growth* (new k-mer buckets, new reference spectra,
        new centroids) rather than re-training.  Same zero-downtime
        choreography — grow (:meth:`Servable.appended`), rebuild the
        deployment for the new shapes, warm the full bucket ladder on
        every eligible worker, version-bump + CAS, queue cutover — but the
        replacement's program family is re-traced for the grown shapes
        (the signature changes on every round, so the old family's cache
        entries are evicted, shard derivatives included), packed class
        memories are repacked from the grown constants and the residency
        gauges refreshed at swap time, and a sharded deployment whose
        grown constant crosses its ``shard_capacity`` re-partitions live
        (:meth:`ShardedDeployment.with_servable`).

        Raises:
            NotAppendableError: The servable carries no append rule.
            KeyError: ``model`` is not registered (or has no live queue).
            RuntimeError: The model was re-registered concurrently during
                the round (compare-and-swap refused); re-issue the append.
        """
        with self._update_lock:
            with self._lock:
                if model not in self._batchers:
                    raise KeyError(
                        f"no model {model!r} with a live queue to append to "
                        f"(have {sorted(self._batchers)})"
                    )
            deployment = self.registry.get(model)
            new_servable = deployment.servable.appended(rows)
            replacement = deployment.with_servable(new_servable)
            buckets = self._swap_warm_buckets()
            for worker in self.pool.eligible(new_servable):
                replacement.warm(buckets, worker=worker)
            version = self.registry.swap(model, replacement, expected=deployment)
            self.swap(replacement)
            if self.update_log is not None:
                self.update_log.append_rows(model, rows, version=version)
            # Growth always changes the content hash; reclaim the old
            # program family (evict_signature's prefix match also drops
            # the ":shardIofN" derivatives of a sharded deployment).
            if deployment.servable.signature != new_servable.signature:
                self.registry.cache.evict_signature(deployment.servable.signature)
            return version

    def _swap_warm_buckets(self) -> list:
        """Every bucket the swapped-in deployment can serve.

        The whole power-of-two ladder (not just ``{1, max}``): each update
        re-derives a content-hashed signature, so any unwarmed bucket
        would be a guaranteed compile *on the request path* after every
        swap — exactly the latency spike a zero-downtime swap must not
        introduce.
        """
        return bucket_ladder(self.max_batch_size, self.pad_to_buckets, full=True)

    def model_versions(self) -> dict:
        """``{name: version}`` for every deployment with a live queue."""
        with self._lock:
            names = sorted(self._batchers)
        return {name: self.registry.version(name) for name in names}

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "RequestBroker":
        """Start (or restart) workers, per-model feeders and the dispatcher."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            if self._scheduler is None or self._scheduler.closed:
                self._scheduler = FairScheduler(aging_seconds=self.scheduler_aging_seconds)
            for name in self._batchers:
                self._scheduler.ensure_lane(name, self._weights.get(name, 1.0))
            self.pool.start(self._execute)
            for name, batcher in list(self._batchers.items()):
                if batcher.closed:  # restarted after stop(): reopen the queue
                    reopened = self._make_batcher()
                    reopened.adopt(batcher.drain_requests())
                    self._batchers[name] = reopened
                self._start_feeder(name)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                args=(self._scheduler,),
                name="hdc-dispatch",
                daemon=True,
            )
            self._dispatcher.start()
        return self

    def _start_feeder(self, name: str) -> None:
        # The deployment is captured here, under the broker lock (every
        # caller holds it), NOT re-resolved from the registry on the
        # feeder thread — a registry write landing before the thread is
        # scheduled must not change which deployment this queue serves.
        thread = threading.Thread(
            target=self._feed_loop,
            args=(self._deployments[name], self._batchers[name], self._scheduler),
            name=f"hdc-feed-{name}",
            daemon=True,
        )
        # Prune feeders that already exited (each hot-swap retires one):
        # a long-running broker with periodic updates must not accumulate
        # dead Thread objects without bound.
        self._feeders = [t for t in self._feeders if t.is_alive()]
        self._feeders.append(thread)
        thread.start()

    def stop(self) -> None:
        """Drain queued requests, then stop feeders, dispatcher and workers."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            batchers = list(self._batchers.values())
            feeders = list(self._feeders)
            dispatcher = self._dispatcher
            scheduler = self._scheduler
            self._feeders = []
            self._dispatcher = None
        for batcher in batchers:
            batcher.close()
        for thread in feeders:  # feeders drain their batchers, then exit
            thread.join()
        if scheduler is not None:
            scheduler.close()  # dispatcher drains remaining lanes, then exits
        if dispatcher is not None:
            dispatcher.join()
        self.pool.stop()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted request has resolved.

        "Resolved" covers successful results, failures and deadline sheds
        alike.  This is the idiom for reading a consistent
        :class:`ServerStats` snapshot while the broker keeps running.

        Raises:
            TimeoutError: The queue did not empty within ``timeout``
                seconds (e.g. the broker was never started).
        """
        with self._drain_cond:
            if not self._drain_cond.wait_for(lambda: self._outstanding == 0, timeout):
                raise TimeoutError(
                    f"drain timed out with {self._outstanding} requests outstanding"
                )

    # -- request path -------------------------------------------------------------
    def submit(
        self,
        model: str,
        sample: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        trace=None,
        min_version: Optional[int] = None,
    ) -> Future:
        """Enqueue one sample; returns a future resolving to its result.

        Safe against concurrent hot-swaps: the batcher is fetched under
        the broker lock, and losing the fetch→enqueue race against a
        swap closing that batcher retries against the replacement — the
        request lands in the new queue instead of erroring out.  Only a
        batcher that closed *without* being replaced (a stopped broker)
        rejects, preserving the submit-after-stop contract.

        Drain accounting registers the request *before* it is enqueued
        (and rolls back if validation or the enqueue raises), so a
        concurrent :meth:`drain` can never return while a just-submitted
        request is still in flight.

        Args:
            priority: Batching lane; higher-priority requests flush first.
            deadline_ms: Latency budget from now, in milliseconds.  The
                future raises :class:`DeadlineExceeded` if the budget runs
                out before the request executes.
            trace: Optional caller-minted
                :class:`~repro.serving.observability.TraceContext`; the
                caller then owns its completion (``tracer.finish``).
                Omitted with tracing enabled, the broker mints one and
                finishes it when the request's future settles.
            min_version: Version pin (read-your-writes across replicas):
                raise :class:`~repro.serving.registry.StaleVersionError`
                instead of enqueueing when the deployment's version is
                older.  The check is made against the deployment the
                request would resolve on, before any drain accounting,
                so a refused request leaves no trace in the queues.
        """
        deployment = self.registry.get(model)
        if min_version is not None and deployment.version < int(min_version):
            raise StaleVersionError(deployment.name, deployment.version, int(min_version))
        if trace is None and self.tracer is not None:
            trace = self.tracer.begin(model)
            # Broker-minted traces are finished in-line wherever their
            # request terminally settles (_resolve, an exception site, or
            # a deadline shed) — cheaper than a future done-callback.
            trace.owner = self.tracer
        with self._drain_cond:
            self._outstanding += 1
        try:
            sample = deployment.servable.validate_sample(sample)
            future = self._enqueue(deployment.name, sample, priority, deadline_ms, trace)
        except BaseException as exc:
            self._request_settled()
            if trace is not None:
                trace.fail(f"{type(exc).__name__}: {exc}")
                trace.finish_owned()
            raise
        future.add_done_callback(self._on_request_done)
        return future

    def _enqueue(
        self,
        name: str,
        sample: np.ndarray,
        priority: int,
        deadline_ms: Optional[float],
        trace=None,
    ) -> Future:
        """Hand one validated sample to the model's live batcher, retrying
        when a concurrent hot-swap closes the fetched batcher."""
        while True:
            with self._lock:
                batcher = self._batchers[name]
            try:
                return batcher.submit(
                    sample, priority=priority, deadline_ms=deadline_ms, trace=trace
                )
            except BatcherClosed:
                with self._lock:
                    replaced = self._batchers.get(name) is not batcher
                if not replaced:
                    # Closed without replacement: the broker stopped (or
                    # the model was torn down) — reject, don't spin.
                    raise
                # Same trace id across the retry: the hot-swap rerouting
                # is part of this request's one causal story, visible as
                # a span rather than a fresh trace.
                if trace is not None:
                    trace.step("retry", reason="batcher closed by hot-swap")

    def _on_request_done(self, _future) -> None:
        self._request_settled()

    def _request_settled(self) -> None:
        with self._drain_cond:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._drain_cond.notify_all()

    # -- feed / dispatch ----------------------------------------------------------
    def _feed_loop(
        self, deployment: Deployment, batcher: MicroBatcher, scheduler: FairScheduler
    ) -> None:
        """Per-model feeder: batcher watermarks -> fair-scheduler lane.

        The deployment is pinned by the caller at queue-install time, so
        after a hot-swap the old queue's feeder keeps draining against the
        *old* deployment while the replacement feeder serves the new one.
        """
        while True:
            batch = batcher.next_batch(timeout=0.1)
            if batch is None:
                if batcher.closed:
                    return
                continue
            # One cheap comprehension per batch is the whole tracing-off
            # overhead of this loop; span recording only touches traced
            # requests.  Both steps land before the offer — after it, the
            # dispatcher may already own the batch on another thread.
            traced = [request.trace for request in batch if request.trace is not None]
            if traced:
                record_step_shared(traced, "queue", time.monotonic(), {"batch_size": len(batch)})
                record_step_shared(traced, "batch", time.monotonic(), {"model": deployment.name})
            scheduler.offer(deployment.name, BatchWork(deployment, batch))

    def _admissible(self, work: BatchWork) -> bool:
        """Admission control: some eligible worker has queue headroom.

        Applied per lane inside the scheduler's selection, so a model
        whose workers are saturated never head-of-line blocks a model
        whose workers are idle (heterogeneous pools).  Workers keep
        draining during shutdown (the pool stops after the dispatcher
        exits), so inadmissible batches always become admissible.
        """
        return self.pool.min_backlog(work.deployment.servable) < self.worker_backlog_samples

    def _dispatch_loop(self, scheduler: FairScheduler) -> None:
        """Single dispatcher: fair-scheduler -> worker pool, with admission
        control so backlogs queue where they can still be reordered."""
        while True:
            work = scheduler.next_ready(timeout=0.1, admissible=self._admissible)
            if work is None:
                if scheduler.closed and scheduler.pending() == 0:
                    return
                continue
            work.requests = self._shed_expired(work.requests)
            if not work.requests:
                continue
            servable = work.deployment.servable
            # The schedule span closes BEFORE the hand-off: a dispatched
            # worker may start executing (and stepping) immediately.
            traced = [request.trace for request in work.requests if request.trace is not None]
            if traced:
                record_step_shared(traced, "schedule", time.monotonic())
            try:
                if isinstance(work.deployment, ShardedDeployment):
                    gather = ShardGather(work.deployment.n_shards)
                    works = [
                        BatchWork(work.deployment, work.requests, shard=i, gather=gather)
                        for i in range(work.deployment.n_shards)
                    ]
                    self.pool.dispatch_scatter(
                        servable, works, placement=self._placement_for(work.deployment)
                    )
                else:
                    self.pool.dispatch(servable, work)
            except Exception as exc:  # no eligible worker — fail the batch
                self.metrics.record_failure(len(work.requests))
                for request in work.requests:
                    if not request.future.done():
                        if request.trace is not None:
                            request.trace.fail(f"{type(exc).__name__}: {exc}")
                            request.trace.finish_owned()
                        request.future.set_exception(exc)

    def _placement_for(self, deployment: ShardedDeployment) -> List[Worker]:
        """The deployment's pinned shard→worker plan, cached per version.

        Pinning is what makes sharding pay on accelerator workers: shard
        *i* always executes on the same worker, whose ``DeviceSession``
        keeps that slice of the class memory resident, so steady-state
        batches skip the constants transfer.  The plan itself
        (:meth:`WorkerPool.plan_scatter`) is deterministic, so the cache
        is purely to avoid re-sorting the pool on every batch; a hot-swap
        bumps ``deployment.version`` and naturally rolls the cache over
        to the replacement's (identical) plan.
        """
        key = (deployment.version, deployment.n_shards)
        cached = self._placements.get(deployment.name)
        if cached is None or cached[0] != key:
            plan = self.pool.plan_scatter(deployment.servable, deployment.n_shards)
            cached = (key, plan)
            self._placements[deployment.name] = cached
        return cached[1]

    def _shed_expired(self, requests: list) -> list:
        """Drop requests whose deadline lapsed while queued for dispatch.

        Sheds are recorded before their futures resolve (``on_shed``), so
        a caller that saw the ``DeadlineExceeded`` also sees the count."""
        live, _ = shed_expired(requests, on_shed=self.metrics.record_expired)
        return live

    def _bucket(self, size: int) -> int:
        if not self.pad_to_buckets:
            return size
        return bucket_for(size, self.max_batch_size)

    def _record_stage_counters(self, model: str, report, bucket: int) -> None:
        """Fold one execution report's batched-route accounting into the
        per-deployment metrics (vectorized vs per-row-fallback stages),
        plus the per-(stage, bucket) execute-time profile."""
        notes = report.notes
        self.metrics.record_stage_counters(
            model,
            notes.get("stage_vectorized", 0),
            notes.get("stage_fallbacks", 0),
            notes.get("stage_fallback_reasons"),
        )
        profile = notes.get("stage_profile")
        if profile:
            self.metrics.record_stage_profile(model, bucket, profile)

    # -- execution (worker threads) -----------------------------------------------
    def _execute(self, worker: Worker, work: BatchWork) -> None:
        """Run one work item on a worker (called on the worker thread)."""
        if work.gather is not None:
            self._execute_shard(worker, work)
            return
        deployment, requests = work.deployment, work.requests
        started = time.monotonic()
        traced = [request.trace for request in requests if request.trace is not None]
        if traced:
            record_step_shared(traced, "dispatch", started, {"worker": worker.name})
        try:
            servable = deployment.servable
            batch = np.stack([request.sample for request in requests])
            bucket = self._bucket(len(requests))
            handle = deployment.handle_for(bucket, worker=worker)
            result = handle.run(**{servable.query_param: pad_batch(batch, bucket)})
            self._record_stage_counters(deployment.name, result.report, bucket)
            outputs = np.asarray(result.output)
            if servable.postprocess is not None:
                outputs = servable.postprocess(outputs)
            outputs = outputs[: len(requests)]
        except Exception as exc:
            self.metrics.record_failure(len(requests))
            for request in requests:
                if not request.future.done():
                    if request.trace is not None:
                        request.trace.fail(f"{type(exc).__name__}: {exc}")
                        request.trace.finish_owned()
                    request.future.set_exception(exc)
            return
        executed = time.monotonic()
        if traced:
            # Per-stage child spans (executor profiling hooks share the
            # monotonic clock), nested inside the contiguous execute
            # step.  Every request in the batch ran the same stages, so
            # each stage records one shared mark.
            for entry in result.report.notes.get("stage_profile") or ():
                record_child_shared(
                    traced,
                    f"stage:{entry.get('stage', '?')}",
                    entry.get("start", started),
                    entry.get("end", started),
                    {
                        "route": entry.get("route"),
                        "gate_ms": round(float(entry.get("gate_seconds", 0.0)) * 1e3, 4),
                    },
                )
            record_step_shared(
                traced, "execute", executed, {"bucket": bucket, "batch": len(requests)}
            )
        self._resolve(deployment, requests, outputs, started)

    def _execute_shard(self, worker: Worker, work: BatchWork) -> None:
        """Run one shard's partial-score program; the last shard reduces."""
        deployment, requests, gather = work.deployment, work.requests, work.gather
        servable = deployment.servable
        started = time.monotonic()
        try:
            batch = np.stack([request.sample for request in requests])
            bucket = self._bucket(len(requests))
            handle = deployment.shard_handle_for(work.shard, bucket, worker=worker)
            result = handle.run(**{servable.query_param: pad_batch(batch, bucket)})
            self._record_stage_counters(deployment.name, result.report, bucket)
            partial = np.asarray(result.output)[: len(requests)]
        except Exception as exc:
            if gather.fail(exc):  # first failing shard resolves the batch
                self.metrics.record_failure(len(requests))
                for request in requests:
                    if not request.future.done():
                        if request.trace is not None:
                            request.trace.fail(f"{type(exc).__name__}: {exc}")
                            request.trace.finish_owned()
                        request.future.set_exception(exc)
            return
        if gather.complete(work.shard, partial):
            outputs = deployment.reduce(gather.partials)
            if servable.postprocess is not None:
                outputs = servable.postprocess(outputs)
            # The latency split attributes the reducing shard's execute
            # window; earlier shards overlap it, so "execute" is the
            # critical-path tail rather than summed shard time.
            # Tracing stays coarse on the sharded path: shard workers run
            # concurrently over the same requests, so only the reducing
            # shard (the sole surviving owner) touches the traces — one
            # scatter-to-reduce execute span instead of racy per-shard
            # steps.
            traced = [request.trace for request in requests if request.trace is not None]
            if traced:
                record_step_shared(
                    traced,
                    "execute",
                    time.monotonic(),
                    {"shards": deployment.n_shards, "bucket": bucket},
                )
            self._resolve(deployment, requests, outputs, started)

    def _resolve(
        self, deployment: Deployment, requests: list, outputs: np.ndarray, execute_started: float
    ) -> None:
        now = time.monotonic()
        execute_seconds = now - execute_started
        # Metrics are recorded *before* each future resolves (matching the
        # shed path's on_shed ordering), so a caller that drained on the
        # resolved futures reads a snapshot that already counts them.
        # Requests are attributed to the deployment *version* that served
        # them — after a hot-swap, the old version's in-flight tail and
        # the new version's traffic stay separable in the snapshot.
        self.metrics.record_batch(len(requests))
        # One shared settle mark for the whole batch: the step ends at
        # the resolve timestamp (the per-request skew inside the loop
        # below is sub-microsecond, and one tuple beats one method call
        # per request on the hot path).
        settle_mark = (TraceContext._STEP, "settle", None, now, None)
        for request, output in zip(requests, outputs):
            if request.future.done():  # defensive: never die on a settled future
                continue
            violated = self.metrics.record_request(
                now - request.enqueued_at,
                model=deployment.name,
                queue_wait_seconds=max(0.0, execute_started - request.enqueued_at),
                execute_seconds=execute_seconds,
                version=deployment.version,
            )
            # All trace mutation happens BEFORE the future resolves: the
            # moment set_result lands, the front end may resume on its own
            # thread and append its transport span.
            trace = request.trace
            if trace is not None:
                if violated:
                    trace.slo_violated = True
                trace._marks.append(settle_mark)
                owner = trace.owner
                if owner is not None:  # broker-owned: finish in-line
                    trace.owner = None
                    owner.finish(trace)
            request.future.set_result(output)

    # -- observability ------------------------------------------------------------
    def stats(self, reset: bool = False) -> ServerStats:
        """A :class:`ServerStats` snapshot (latency splits, throughput,
        cache, workers, deadline sheds, SLOs and fair-scheduler lanes).

        ``reset=True`` atomically zeroes the metrics window under the same
        lock that took the snapshot — the scrape-then-reset idiom without
        the gap in which concurrent requests would vanish from every
        interval.
        """
        # Packed-storage deployments pack constants lazily (on the first
        # handle compile), so refresh each live deployment's residency
        # document before the snapshot instead of trusting install time.
        with self._lock:
            deployments = dict(self._deployments)
        for name, deployment in deployments.items():
            self.metrics.record_residency(name, deployment.residency())
        return self.metrics.snapshot(
            cache=self.registry.cache,
            workers=self.pool.workers,
            scheduler=self._scheduler,
            reset=reset,
        )

    def reset_stats(self) -> None:
        """Zero the metrics window (per-interval reporting; SLOs survive)."""
        self.metrics.reset()

    def traces(self, limit: Optional[int] = None, clear: bool = False) -> list:
        """Retained request traces as JSON-safe dicts (oldest first).

        Empty when tracing is disabled.  ``clear=True`` empties the trace
        rings after the read (the scrape-then-clear idiom of
        ``tools/trace_dump.py``).
        """
        if self.tracer is None:
            return []
        return self.tracer.traces(limit=limit, clear=clear)

    def model_names(self) -> list:
        """Deployments with a live request queue, sorted by name."""
        with self._lock:
            return sorted(self._batchers)

    def __repr__(self) -> str:
        return (
            f"RequestBroker(models={self.model_names()}, pool={self.pool!r}, "
            f"max_batch={self.max_batch_size}, wait={self.max_wait_seconds * 1e3:.1f}ms, "
            f"running={self._running})"
        )
