"""Compiled-program caching for the serving runtime.

Compilation (clone → approximation passes → lowering → verification) is the
dominant fixed cost of putting an HDC++ program behind a service: the same
model re-registered, or the same model compiled for a new micro-batch
bucket, should never repeat that work.  :class:`CompiledProgramCache` is a
thread-safe LRU keyed on

``(program signature, target, approximation-config key, batch size, scope)``

where the *signature* identifies the traced program family plus its bound
state (see :func:`program_signature` and
:func:`repro.serving.servable.servable_signature`) and *scope* isolates
entries that cannot be shared — e.g. accelerator back ends whose compiled
programs are tied to one device's residency state.

The cache is **persistent**: :meth:`CompiledProgramCache.save` serializes
every artifact through its back end's serialization hook
(:meth:`repro.backends.Backend.serialize_compiled`) and
:meth:`CompiledProgramCache.load` restores them into a fresh process —
under the very same keys, so a restarted server's first registration hits
instead of re-running trace/transform/lower/verify.  Hits served from
loaded entries are additionally counted in ``CacheStats.warm_hits``,
which is how tests (and operators) assert that a warm restart really
skipped compilation.  Entries whose programs cannot be serialized (e.g.
eager implementation closures) are skipped at save time and simply
recompile on first use after a restart.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backends.base import Backend, CompiledProgram
from repro.hdcpp.program import Program
from repro.ir.dataflow import Target
from repro.transforms.pipeline import ApproximationConfig

__all__ = [
    "CacheKey",
    "CacheStats",
    "CompiledProgramCache",
    "config_key",
    "program_signature",
    "default_cache",
]

CacheKey = Tuple[str, str, str, int, str]


def config_key(config: Optional[ApproximationConfig]) -> str:
    """A stable, hashable token for an approximation configuration.

    ``ApproximationConfig`` is a frozen dataclass of value objects, so its
    ``repr`` is deterministic and distinguishes every knob the passes read.
    """
    config = config or ApproximationConfig.none()
    return repr(config)


def program_signature(program: Program) -> str:
    """Fingerprint a traced program from a normalized IR dump.

    The dump covers every operation, type, shape and static attribute but
    renames SSA values to function-local indices, so two traces of the
    same source at the same shapes hash identically while any structural
    difference changes the hash.  Implementation callables contribute
    their *name* only — when a closure carries model state (item memories,
    trained weights), supply an explicit signature instead (the
    ``Servable`` adapters do).
    """
    lines = [f"program {program.name} entry={program.entry_name}"]
    for fn in program.functions.values():
        local: dict = {}

        def name_of(value) -> str:
            if value.id not in local:
                local[value.id] = f"%{len(local)}"
            return local[value.id]

        params = ", ".join(f"{name_of(p)}: {p.type}" for p in fn.params)
        lines.append(f"func {fn.name}({params})")
        for op in fn.ops:
            attrs = {
                key: getattr(value, "__name__", None) or str(value)
                for key, value in op.attrs.items()
            }
            attr_text = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            result = f"{name_of(op.result)}: {op.result.type} = " if op.result is not None else ""
            operands = ", ".join(name_of(v) for v in op.operands)
            lines.append(f"  {result}{op.opcode}({operands}) {attr_text}")
        lines.append("  return " + ", ".join(name_of(r) for r in fn.results))
    return hashlib.sha1("\n".join(lines).encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance.

    ``warm_hits`` counts the subset of ``hits`` served by entries that
    were restored with :meth:`CompiledProgramCache.load` — i.e. lookups
    that would have been trace/lower/verify misses in a cold process.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    warm_hits: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: On-disk format version of :meth:`CompiledProgramCache.save` payloads.
PERSIST_FORMAT = 1


class CompiledProgramCache:
    """Thread-safe LRU cache of :class:`CompiledProgram` artifacts."""

    def __init__(self, capacity: Optional[int] = None):
        self._entries: "OrderedDict[CacheKey, CompiledProgram]" = OrderedDict()
        self._warm_keys: set = set()
        self._lock = threading.RLock()
        self.capacity = capacity
        self.stats = CacheStats()

    # -- keys ---------------------------------------------------------------------
    @staticmethod
    def make_key(
        signature: str,
        target: Union[str, Target],
        config: Optional[ApproximationConfig] = None,
        batch_size: int = 0,
        scope: str = "",
    ) -> CacheKey:
        target = Target(target) if not isinstance(target, Target) else target
        return (signature, target.value, config_key(config), int(batch_size), scope)

    # -- lookup / population ------------------------------------------------------
    def get_or_compile(
        self,
        key: CacheKey,
        backend: Backend,
        build: Callable[[], Program],
        config: Optional[ApproximationConfig] = None,
    ) -> CompiledProgram:
        """Return the cached artifact for ``key``, compiling it on a miss.

        ``build`` is only invoked on a miss, so callers can defer tracing
        itself (not just transform/lower/verify) behind the cache.  The
        lock is held across compilation: concurrent workers asking for the
        same key wait for one compile instead of duplicating it.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.stats.hits += 1
                if key in self._warm_keys:
                    self.stats.warm_hits += 1
                self._entries.move_to_end(key)
                return cached
            self.stats.misses += 1
            compiled = backend.compile(build(), config=config)
            self._entries[key] = compiled
            self._evict_over_capacity()
            return compiled

    def _evict_over_capacity(self) -> None:
        """Caller must hold the lock."""
        while self.capacity is not None and len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._warm_keys.discard(evicted)
            self.stats.evictions += 1

    # -- persistence --------------------------------------------------------------
    def save(self, path: Union[str, "os.PathLike"]) -> int:
        """Serialize the cached artifacts to ``path``; returns entries saved.

        Each artifact is serialized through its back end's
        :meth:`~repro.backends.Backend.serialize_compiled` hook.  Entries
        that refuse serialization (programs closing over Python callables,
        back ends with unserializable device state) are skipped — they
        recompile on first use after a restart, exactly as before this
        feature existed.
        """
        with self._lock:
            entries = list(self._entries.items())
        payloads: Dict[CacheKey, bytes] = {}
        for key, compiled in entries:
            try:
                payloads[key] = compiled.backend.serialize_compiled(compiled)
            except Exception:
                continue  # unserializable entry: recompiles after restart
        blob = pickle.dumps({"format": PERSIST_FORMAT, "entries": payloads})
        tmp = f"{os.fspath(path)}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)  # readers never observe a half-written cache
        return len(payloads)

    def load(
        self,
        path: Union[str, "os.PathLike"],
        backend_factory: Optional[Callable[[Target], "Backend"]] = None,
    ) -> int:
        """Restore artifacts saved with :meth:`save`; returns entries loaded.

        Restoration deserializes through
        :meth:`~repro.backends.Backend.deserialize_compiled`, which redoes
        back-end preparation (kernel selection, device setup) but **not**
        tracing, transforms, lowering or verification — the dominant fixed
        cost the cache exists to avoid.  Keys already present in the cache
        are kept (a live compile beats a stale disk entry), and loaded
        entries count their subsequent hits in ``stats.warm_hits``.

        Args:
            backend_factory: ``Target -> Backend`` used to re-create the
                executing back ends.  Defaults to the serving-default back
                end per target (batched CPU kernels, warm accelerator
                sessions), one shared instance per target.
        """
        with open(path, "rb") as handle:
            data = pickle.load(handle)
        if not isinstance(data, dict) or data.get("format") != PERSIST_FORMAT:
            raise ValueError(
                f"{os.fspath(path)} is not a compiled-program cache save "
                f"(format {data.get('format') if isinstance(data, dict) else None!r})"
            )
        if backend_factory is None:
            from repro.serving.scheduler import default_worker_backend

            shared: Dict[Target, "Backend"] = {}

            def backend_factory(target: Target) -> "Backend":
                if target not in shared:
                    shared[target] = default_worker_backend(target)
                return shared[target]

        loaded = 0
        for key, payload in data["entries"].items():
            if key in self:  # cheap pre-check: a live compile beats the
                continue     # disk entry, so skip the whole restore cost
            try:
                backend = backend_factory(Target(key[1]))
                compiled = backend.deserialize_compiled(payload)
            except Exception:
                continue  # skip entries this process cannot restore
            with self._lock:
                if key in self._entries:  # raced with a concurrent compile
                    continue
                self._entries[key] = compiled
                self._warm_keys.add(key)
                self._evict_over_capacity()
            loaded += 1
        return loaded

    # -- maintenance --------------------------------------------------------------
    def evict_signature(self, signature: str) -> int:
        """Drop every entry compiled for one program-family signature.

        Covers the signature itself and its scoped derivatives (shard
        slices sign as ``"<signature>:shardIofN"``).  This is how the
        hot-swap path reclaims a replaced deployment's artifacts: each
        online update re-derives a content-hashed signature, so without
        eviction a streaming-retraining service would leak one warmed
        bucket ladder per round, forever.  Evicting is always safe —
        already-bound handles keep executing (they never go back through
        the cache), and a late lookup simply recompiles.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key[0] == signature or key[0].startswith(signature + ":")
            ]
            for key in doomed:
                del self._entries[key]
                self._warm_keys.discard(key)
            self.stats.evictions += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._warm_keys.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    def __repr__(self) -> str:
        return (
            f"CompiledProgramCache(size={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )


_DEFAULT_CACHE = CompiledProgramCache()


def default_cache() -> CompiledProgramCache:
    """The process-wide cache used by :func:`repro.backends.compile_cached`."""
    return _DEFAULT_CACHE
