"""Replayable update logs: persist the mini-batches behind served versions.

Online re-training (:meth:`RequestBroker.update`) derives each served model
version from the previous one plus a labelled mini-batch.  That derivation
is deterministic — the update rule is a pure function of (constants,
samples, labels) — so persisting the mini-batches *is* persisting the
model: a restarted server replays the log into a freshly registered
baseline and rebuilds the exact served version, bit-identically, without
snapshotting any trained state.

:class:`UpdateLog` is that persistence.  It is an append-only single file;
each record is one JSON header line (model name, sequence number, array
dtypes/shapes, the registry version the update produced) followed by the
raw bytes of the samples and labels arrays::

    {"model": "isolet", "seq": 1, "version": 2, "samples": {...}, ...}\\n
    <samples bytes><labels bytes>
    {"model": "isolet", "seq": 2, ...}\\n
    ...

No pickle anywhere — headers are JSON, payloads are raw C-order array
bytes — so a log is safe to read from untrusted storage and stable across
Python versions.

Two consumers:

* **Serving** — pass ``update_log=UpdateLog(path)`` to
  :class:`~repro.serving.broker.RequestBroker` (or
  :class:`~repro.serving.server.InferenceServer`): every successful
  ``update`` round appends its mini-batch after the hot-swap lands, so the
  log always describes versions that actually served.  After a restart,
  :meth:`replay` applies the records through the same ``update`` path —
  same rule, same arithmetic, same constants, hence the same versions and
  bit-identical predictions.
* **Benchmarking** — :mod:`repro.bench` feeds serve-while-retraining load
  cells from a pre-materialized log, so online-training scenarios are
  reproducible from a file rather than live RNG.

Alongside re-training records the log holds **append records**
(``{"op": "append", ...}`` headers followed by the raw row bytes): the
shape-changing growth rounds of :meth:`RequestBroker.append`.  Growth is
deterministic too — ``append_batch`` is a pure function of (constants,
rows) — so replaying a growth log through ``target.append`` rebuilds
byte-identical grown constants (packed and unpacked) at the exact
recorded versions.

Crash safety: each record is one buffered write + fsync, so a crash can
only tear the *final* record.  Reads recover from a torn tail — they
warn and stop at the last valid record instead of raising — and the next
append truncates the torn bytes before writing.  The typed
:class:`UpdateLogError` is reserved for genuine mid-file corruption
(malformed complete headers, bad dtypes).
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import warnings
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

__all__ = ["UpdateLog", "UpdateRecord", "AppendRecord", "UpdateLogError"]


class UpdateLogError(RuntimeError):
    """A corrupt or unreadable update log (malformed header, unsupported
    dtype, unknown record op).  Typed so callers can distinguish a bad
    log file from the serving errors a replay might surface.  A *torn
    final record* (crash mid-append) is not corruption — reads recover
    by stopping at the last valid record with a warning."""


def _array_header(array: np.ndarray) -> dict:
    return {"dtype": array.dtype.str, "shape": list(array.shape)}


@dataclass(frozen=True)
class UpdateRecord:
    """One logged re-training round: the labelled mini-batch that produced
    a served version.

    Attributes:
        model: Deployment name the update applied to.
        seq: 1-based position in the log (append order).
        samples / labels: The mini-batch, exactly as passed to ``update``.
        version: The registry version the round produced when it was
            logged live (``None`` for pre-materialized benchmark logs
            whose records have not been applied yet).
    """

    model: str
    seq: int
    samples: np.ndarray
    labels: np.ndarray
    version: Optional[int] = None


@dataclass(frozen=True)
class AppendRecord:
    """One logged growth round: the raw rows appended to a served model's
    growable constants (new bucket sequences, spectra, centroids).

    Attributes:
        model: Deployment name the append applied to.
        seq: 1-based position in the log (append order, shared with
            re-training records).
        rows: The appended rows, exactly as passed to ``append``.
        version: The registry version the round produced when it was
            logged live.
    """

    model: str
    seq: int
    rows: np.ndarray
    version: Optional[int] = None


LogRecord = Union[UpdateRecord, AppendRecord]


class UpdateLog:
    """Append-only, replayable log of online-update mini-batches.

    Args:
        path: Log file location.  Created (parents included) on first
            append; reading a nonexistent log yields zero records.

    Thread safety: appends are serialized under an internal lock (the
    broker calls :meth:`append` from update rounds, which are themselves
    serialized, but a shared log between brokers stays consistent).
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        # While replay() drives a broker that has this same log attached,
        # the broker's post-update append hook must not re-log the very
        # records being replayed (the log would double on every restart).
        self._replaying = False

    # -- writing ------------------------------------------------------------------
    def append(
        self,
        model: str,
        samples: np.ndarray,
        labels: np.ndarray,
        version: Optional[int] = None,
    ) -> int:
        """Append one mini-batch record; returns its sequence number.

        The record is written with a single buffered write and flushed to
        the OS before returning, so a crash mid-serving loses at most the
        round being written, never an earlier one.
        """
        if self._replaying:
            return len(self)
        samples = np.ascontiguousarray(samples)
        labels = np.ascontiguousarray(labels)
        with self._lock:
            seq = self._repair_locked() + 1
            header = {
                "model": str(model),
                "seq": seq,
                "version": None if version is None else int(version),
                "samples": _array_header(samples),
                "labels": _array_header(labels),
            }
            self._write_locked(header, samples.tobytes() + labels.tobytes())
        return seq

    def append_rows(
        self,
        model: str,
        rows: np.ndarray,
        version: Optional[int] = None,
    ) -> int:
        """Append one growth record (raw appended rows); returns its seq.

        The payload is the raw C-order bytes of ``rows`` exactly as passed
        to the broker's ``append`` — replay re-applies the same pure
        growth rule to rebuild byte-identical grown constants.
        """
        if self._replaying:
            return len(self)
        rows = np.ascontiguousarray(rows)
        with self._lock:
            seq = self._repair_locked() + 1
            header = {
                "op": "append",
                "model": str(model),
                "seq": seq,
                "version": None if version is None else int(version),
                "rows": _array_header(rows),
            }
            self._write_locked(header, rows.tobytes())
        return seq

    def _write_locked(self, header: dict, payload: bytes) -> None:
        """One buffered write + fsync (caller holds the lock), so a crash
        mid-serving loses at most the record being written — as a torn,
        recoverable tail — never an earlier one."""
        blob = json.dumps(header, separators=(",", ":")).encode("utf-8") + b"\n" + payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("ab") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())

    def _repair_locked(self) -> int:
        """Truncate a torn final record if present (caller holds the
        lock); returns the count of valid records."""
        if not self.path.exists():
            return 0
        count, end = 0, 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for _, offset in self._scan():
                count += 1
                end = offset
        actual = self.path.stat().st_size
        if actual > end:
            warnings.warn(
                f"update log {self.path} ends with a torn record (crash "
                f"mid-append); truncating {actual - end} trailing bytes to "
                f"the last valid record before appending",
                RuntimeWarning,
                stacklevel=3,
            )
            with self.path.open("r+b") as handle:
                handle.truncate(end)
        return count

    # -- reading ------------------------------------------------------------------
    def _scan(self) -> Iterator[Tuple[LogRecord, int]]:
        """Yield ``(record, end_offset)`` pairs in append order.

        A torn final record — the header line missing its newline, or the
        payload cut short at end of file (both only a crash mid-append can
        produce, because each record is one write) — ends the scan with a
        :class:`RuntimeWarning` instead of raising.  A *complete* but
        malformed record is mid-file corruption and raises the typed
        :class:`UpdateLogError`.
        """
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            seq = 0
            while True:
                line = handle.readline()
                if not line:
                    return
                if not line.endswith(b"\n"):
                    warnings.warn(
                        f"update log {self.path} ends with a torn record header "
                        f"(crash mid-append); ignoring it and stopping at the "
                        f"last valid record",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    return
                seq += 1
                try:
                    header = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise UpdateLogError(
                        f"malformed update-log header at record {seq} of {self.path}: {exc}"
                    ) from exc
                op = str(header.get("op") or "update")
                if op == "append":
                    fields = ("rows",)
                elif op == "update":
                    fields = ("samples", "labels")
                else:
                    raise UpdateLogError(
                        f"update-log record {seq} of {self.path} has unknown op {op!r}"
                    )
                arrays = {}
                torn = False
                for field in fields:
                    spec = header.get(field)
                    if not isinstance(spec, dict) or "dtype" not in spec or "shape" not in spec:
                        raise UpdateLogError(
                            f"update-log record {seq} of {self.path} is missing "
                            f"the {field!r} array header"
                        )
                    try:
                        dtype = np.dtype(str(spec["dtype"]))
                    except TypeError as exc:
                        raise UpdateLogError(
                            f"update-log record {seq}: bad {field} dtype {spec['dtype']!r}"
                        ) from exc
                    if dtype.hasobject:
                        raise UpdateLogError(
                            f"update-log record {seq}: object dtypes are not allowed"
                        )
                    shape = tuple(int(d) for d in spec["shape"])
                    n_bytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                    data = handle.read(n_bytes)
                    if len(data) != n_bytes:
                        # A short read on a regular file means end of file:
                        # the record's header landed but its payload did
                        # not — a torn tail, not corruption.
                        warnings.warn(
                            f"update log {self.path} ends with a torn record "
                            f"payload (record {seq}, {field}: got {len(data)} of "
                            f"{n_bytes} bytes — crash mid-append); stopping at "
                            f"the last valid record",
                            RuntimeWarning,
                            stacklevel=3,
                        )
                        torn = True
                        break
                    arrays[field] = np.frombuffer(data, dtype=dtype).reshape(shape).copy()
                if torn:
                    return
                version = header.get("version")
                version = None if version is None else int(version)
                model = str(header.get("model", ""))
                if op == "append":
                    record: LogRecord = AppendRecord(
                        model=model, seq=seq, rows=arrays["rows"], version=version
                    )
                else:
                    record = UpdateRecord(
                        model=model,
                        seq=seq,
                        samples=arrays["samples"],
                        labels=arrays["labels"],
                        version=version,
                    )
                yield record, handle.tell()

    def records(self) -> Iterator[LogRecord]:
        """Iterate the logged records (re-training and growth) in append
        order, recovering from a torn final record with a warning."""
        for record, _ in self._scan():
            yield record

    def read_all(self) -> List[LogRecord]:
        """Every record, materialized (convenience over :meth:`records`)."""
        return list(self.records())

    def _count_records(self) -> int:
        count = 0
        for _ in self.records():
            count += 1
        return count

    def __len__(self) -> int:
        with self._lock:
            return self._count_records()

    def models(self) -> List[str]:
        """Distinct model names appearing in the log, in first-seen order."""
        seen: List[str] = []
        for record in self.records():
            if record.model not in seen:
                seen.append(record.model)
        return seen

    # -- replay -------------------------------------------------------------------
    def replay(self, target, model: Optional[str] = None) -> List[int]:
        """Re-apply the logged rounds through ``target.update`` /
        ``target.append``.

        ``target`` is anything with the broker's update contract —
        :class:`~repro.serving.broker.RequestBroker`,
        :class:`~repro.serving.server.InferenceServer`, or a
        :class:`~repro.serving.transport.ServingClient`.  Records are
        applied in log order (optionally filtered to one ``model``):
        re-training records through ``update``, growth records through
        ``append``.  The returned list holds the registry version each
        round produced.

        Because both rules are deterministic, replaying into a fresh
        process that registered the same baseline servable rebuilds the
        exact served state: same versions, bit-identical (and, for packed
        deployments, byte-identical packed) constants and predictions.
        When the target broker has *this* log attached, the replayed
        rounds are not re-appended.

        Raises:
            UpdateLogError: A record's stored ``version`` disagrees with
                the version the replayed round produced — the target was
                not at the log's baseline (e.g. it already took updates).
        """
        versions: List[int] = []
        self._replaying = True
        try:
            for record in self.records():
                if model is not None and record.model != model:
                    continue
                if isinstance(record, AppendRecord):
                    version = target.append(record.model, record.rows)
                else:
                    version = target.update(record.model, record.samples, record.labels)
                if record.version is not None and int(version) != record.version:
                    raise UpdateLogError(
                        f"replay of record {record.seq} ({record.model!r}) produced "
                        f"version {version}, but the log recorded version "
                        f"{record.version} — the target is not at this log's baseline"
                    )
                versions.append(int(version))
        finally:
            self._replaying = False
        return versions

    def clear(self) -> None:
        """Delete the log file (the next append starts a fresh log)."""
        with self._lock:
            if self.path.exists():
                self.path.unlink()

    def __repr__(self) -> str:
        return f"UpdateLog({str(self.path)!r}, records={self._count_records()})"
