"""Replayable update logs: persist the mini-batches behind served versions.

Online re-training (:meth:`RequestBroker.update`) derives each served model
version from the previous one plus a labelled mini-batch.  That derivation
is deterministic — the update rule is a pure function of (constants,
samples, labels) — so persisting the mini-batches *is* persisting the
model: a restarted server replays the log into a freshly registered
baseline and rebuilds the exact served version, bit-identically, without
snapshotting any trained state.

:class:`UpdateLog` is that persistence.  It is an append-only single file;
each record is one JSON header line (model name, sequence number, array
dtypes/shapes, the registry version the update produced) followed by the
raw bytes of the samples and labels arrays::

    {"model": "isolet", "seq": 1, "version": 2, "samples": {...}, ...}\\n
    <samples bytes><labels bytes>
    {"model": "isolet", "seq": 2, ...}\\n
    ...

No pickle anywhere — headers are JSON, payloads are raw C-order array
bytes — so a log is safe to read from untrusted storage and stable across
Python versions.

Two consumers:

* **Serving** — pass ``update_log=UpdateLog(path)`` to
  :class:`~repro.serving.broker.RequestBroker` (or
  :class:`~repro.serving.server.InferenceServer`): every successful
  ``update`` round appends its mini-batch after the hot-swap lands, so the
  log always describes versions that actually served.  After a restart,
  :meth:`replay` applies the records through the same ``update`` path —
  same rule, same arithmetic, same constants, hence the same versions and
  bit-identical predictions.
* **Benchmarking** — :mod:`repro.bench` feeds serve-while-retraining load
  cells from a pre-materialized log, so online-training scenarios are
  reproducible from a file rather than live RNG.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["UpdateLog", "UpdateRecord", "UpdateLogError"]


class UpdateLogError(RuntimeError):
    """A corrupt or unreadable update log (truncated payload, malformed
    header, unsupported dtype).  Typed so callers can distinguish a bad
    log file from the serving errors a replay might surface."""


def _array_header(array: np.ndarray) -> dict:
    return {"dtype": array.dtype.str, "shape": list(array.shape)}


def _read_exact(handle, n: int, context: str) -> bytes:
    data = handle.read(n)
    if len(data) != n:
        raise UpdateLogError(
            f"truncated update log: expected {n} payload bytes for {context}, "
            f"got {len(data)}"
        )
    return data


@dataclass(frozen=True)
class UpdateRecord:
    """One logged re-training round: the labelled mini-batch that produced
    a served version.

    Attributes:
        model: Deployment name the update applied to.
        seq: 1-based position in the log (append order).
        samples / labels: The mini-batch, exactly as passed to ``update``.
        version: The registry version the round produced when it was
            logged live (``None`` for pre-materialized benchmark logs
            whose records have not been applied yet).
    """

    model: str
    seq: int
    samples: np.ndarray
    labels: np.ndarray
    version: Optional[int] = None


class UpdateLog:
    """Append-only, replayable log of online-update mini-batches.

    Args:
        path: Log file location.  Created (parents included) on first
            append; reading a nonexistent log yields zero records.

    Thread safety: appends are serialized under an internal lock (the
    broker calls :meth:`append` from update rounds, which are themselves
    serialized, but a shared log between brokers stays consistent).
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        # While replay() drives a broker that has this same log attached,
        # the broker's post-update append hook must not re-log the very
        # records being replayed (the log would double on every restart).
        self._replaying = False

    # -- writing ------------------------------------------------------------------
    def append(
        self,
        model: str,
        samples: np.ndarray,
        labels: np.ndarray,
        version: Optional[int] = None,
    ) -> int:
        """Append one mini-batch record; returns its sequence number.

        The record is written with a single buffered write and flushed to
        the OS before returning, so a crash mid-serving loses at most the
        round being written, never an earlier one.
        """
        if self._replaying:
            return len(self)
        samples = np.ascontiguousarray(samples)
        labels = np.ascontiguousarray(labels)
        with self._lock:
            seq = self._count_records() + 1
            header = {
                "model": str(model),
                "seq": seq,
                "version": None if version is None else int(version),
                "samples": _array_header(samples),
                "labels": _array_header(labels),
            }
            payload = (
                json.dumps(header, separators=(",", ":")).encode("utf-8")
                + b"\n"
                + samples.tobytes()
                + labels.tobytes()
            )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("ab") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
        return seq

    # -- reading ------------------------------------------------------------------
    def records(self) -> Iterator[UpdateRecord]:
        """Iterate the logged records in append order."""
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            seq = 0
            while True:
                line = handle.readline()
                if not line:
                    return
                seq += 1
                try:
                    header = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise UpdateLogError(
                        f"malformed update-log header at record {seq} of {self.path}: {exc}"
                    ) from exc
                arrays = {}
                for field in ("samples", "labels"):
                    spec = header.get(field)
                    if not isinstance(spec, dict) or "dtype" not in spec or "shape" not in spec:
                        raise UpdateLogError(
                            f"update-log record {seq} of {self.path} is missing "
                            f"the {field!r} array header"
                        )
                    try:
                        dtype = np.dtype(str(spec["dtype"]))
                    except TypeError as exc:
                        raise UpdateLogError(
                            f"update-log record {seq}: bad {field} dtype {spec['dtype']!r}"
                        ) from exc
                    if dtype.hasobject:
                        raise UpdateLogError(
                            f"update-log record {seq}: object dtypes are not allowed"
                        )
                    shape = tuple(int(d) for d in spec["shape"])
                    n_bytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
                    data = _read_exact(handle, n_bytes, f"record {seq} {field}")
                    arrays[field] = np.frombuffer(data, dtype=dtype).reshape(shape).copy()
                version = header.get("version")
                yield UpdateRecord(
                    model=str(header.get("model", "")),
                    seq=seq,
                    samples=arrays["samples"],
                    labels=arrays["labels"],
                    version=None if version is None else int(version),
                )

    def read_all(self) -> List[UpdateRecord]:
        """Every record, materialized (convenience over :meth:`records`)."""
        return list(self.records())

    def _count_records(self) -> int:
        count = 0
        for _ in self.records():
            count += 1
        return count

    def __len__(self) -> int:
        with self._lock:
            return self._count_records()

    def models(self) -> List[str]:
        """Distinct model names appearing in the log, in first-seen order."""
        seen: List[str] = []
        for record in self.records():
            if record.model not in seen:
                seen.append(record.model)
        return seen

    # -- replay -------------------------------------------------------------------
    def replay(self, target, model: Optional[str] = None) -> List[int]:
        """Re-apply the logged rounds through ``target.update``.

        ``target`` is anything with the broker's update contract —
        :class:`~repro.serving.broker.RequestBroker`,
        :class:`~repro.serving.server.InferenceServer`, or a
        :class:`~repro.serving.transport.ServingClient`.  Records are
        applied in log order (optionally filtered to one ``model``); the
        returned list holds the registry version each round produced.

        Because the update rule is deterministic, replaying into a fresh
        process that registered the same baseline servable rebuilds the
        exact served state: same versions, bit-identical constants and
        predictions.  When the target broker has *this* log attached, the
        replayed rounds are not re-appended.

        Raises:
            UpdateLogError: A record's stored ``version`` disagrees with
                the version the replayed update produced — the target was
                not at the log's baseline (e.g. it already took updates).
        """
        versions: List[int] = []
        self._replaying = True
        try:
            for record in self.records():
                if model is not None and record.model != model:
                    continue
                version = target.update(record.model, record.samples, record.labels)
                if record.version is not None and int(version) != record.version:
                    raise UpdateLogError(
                        f"replay of record {record.seq} ({record.model!r}) produced "
                        f"version {version}, but the log recorded version "
                        f"{record.version} — the target is not at this log's baseline"
                    )
                versions.append(int(version))
        finally:
            self._replaying = False
        return versions

    def clear(self) -> None:
        """Delete the log file (the next append starts a fresh log)."""
        with self._lock:
            if self.path.exists():
                self.path.unlink()

    def __repr__(self) -> str:
        return f"UpdateLog({str(self.path)!r}, records={self._count_records()})"
