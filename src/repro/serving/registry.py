"""Model registry: named deployments of servables with warm compile caching.

A :class:`Deployment` ties one :class:`~repro.serving.servable.Servable`
(trained state included) to an approximation configuration and hands out
reusable :class:`~repro.backends.BoundProgram` inference handles, one per
(micro-batch bucket, worker scope).  Handles are created through the shared
:class:`~repro.serving.cache.CompiledProgramCache`, so re-registering a
model or warming a second worker of the same target skips tracing,
transforms, lowering and verification entirely.

The :class:`ModelRegistry` is usable standalone — ``registry.register(...)``
then ``deployment.run(batch)`` — and is what
:class:`~repro.serving.server.InferenceServer` builds on.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional, Union

import numpy as np

from repro.backends.base import Backend, BoundProgram, ExecutionResult
from repro.ir.dataflow import Target
from repro.serving.cache import CompiledProgramCache
from repro.serving.scheduler import default_worker_backend
from repro.serving.servable import Servable
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["Deployment", "ModelRegistry"]


class Deployment:
    """One registered model: a servable plus its compiled-handle cache."""

    def __init__(
        self,
        name: str,
        servable: Servable,
        cache: CompiledProgramCache,
        config: Optional[ApproximationConfig] = None,
        default_target: Union[str, Target] = Target.CPU,
    ):
        self.name = name
        self.servable = servable
        self.cache = cache
        self.config = config
        self.default_target = (
            Target(default_target) if not isinstance(default_target, Target) else default_target
        )
        if not servable.supports_target(self.default_target):
            raise ValueError(
                f"{servable.name!r} does not support target {self.default_target.value} "
                f"(supports {servable.supported_targets})"
            )
        self._default_backend: Optional[Backend] = None
        self._handles: Dict[tuple, BoundProgram] = {}
        self._lock = threading.Lock()

    # -- backends -----------------------------------------------------------------
    @property
    def default_backend(self) -> Backend:
        with self._lock:
            if self._default_backend is None:
                self._default_backend = default_worker_backend(self.default_target)
            return self._default_backend

    # -- handles ------------------------------------------------------------------
    def handle_for(self, batch_size: int, worker=None) -> BoundProgram:
        """The reusable inference handle for one micro-batch bucket.

        When ``worker`` (a :class:`repro.serving.scheduler.Worker`) is
        given, the handle executes through that worker's back end and the
        cache entry is keyed by the worker's scope; otherwise the
        deployment's default backend is used.
        """
        if worker is not None:
            backend, scope = worker.backend, worker.scope
        else:
            backend, scope = self.default_backend, self.default_target.value
        key = self.cache.make_key(
            self.servable.signature, backend.target, self.config, batch_size, scope
        )
        handle_key = (key, id(backend))
        with self._lock:
            handle = self._handles.get(handle_key)
        if handle is not None:
            return handle
        compiled = self.cache.get_or_compile(
            key, backend, lambda: self.servable.build_program(batch_size), config=self.config
        )
        handle = compiled.bind(backend=backend, **self.servable.constants)
        with self._lock:
            return self._handles.setdefault(handle_key, handle)

    def warm(self, batch_sizes: Iterable[int], worker=None) -> None:
        """Pre-compile (or cache-hit) the handles for the given buckets."""
        for batch_size in batch_sizes:
            self.handle_for(batch_size, worker=worker)

    # -- direct execution ---------------------------------------------------------
    def run(self, batch: np.ndarray, worker=None) -> ExecutionResult:
        """One-shot batched inference through the deployment's own handle."""
        batch = np.asarray(batch)
        handle = self.handle_for(batch.shape[0], worker=worker)
        return handle.run(**{self.servable.query_param: batch})

    def __repr__(self) -> str:
        return (
            f"Deployment({self.name!r}, target={self.default_target.value}, "
            f"handles={len(self._handles)})"
        )


class ModelRegistry:
    """Named (servable, target, approximation-config) deployments."""

    def __init__(self, cache: Optional[CompiledProgramCache] = None):
        self.cache = cache if cache is not None else CompiledProgramCache()
        self._models: Dict[str, Deployment] = {}
        self._lock = threading.Lock()

    def register(
        self,
        servable: Servable,
        name: Optional[str] = None,
        target: Union[str, Target] = Target.CPU,
        config: Optional[ApproximationConfig] = None,
        warm_batch_sizes: Iterable[int] = (1,),
    ) -> Deployment:
        """Deploy a servable under a name, warming the compile cache.

        Re-registering an unchanged servable is cheap: the signature keys
        the same cache entries, so warming hits instead of recompiling.
        """
        name = name or servable.name
        deployment = Deployment(name, servable, self.cache, config=config, default_target=target)
        deployment.warm(warm_batch_sizes)
        with self._lock:
            self._models[name] = deployment
        return deployment

    def get(self, name: str) -> Deployment:
        with self._lock:
            try:
                return self._models[name]
            except KeyError as exc:
                raise KeyError(
                    f"no model {name!r} registered (have {sorted(self._models)})"
                ) from exc

    def unregister(self, name: str) -> None:
        with self._lock:
            self._models.pop(name, None)

    def names(self) -> list:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __repr__(self) -> str:
        return f"ModelRegistry({self.names()}, cache={self.cache!r})"
