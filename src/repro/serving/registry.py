"""Model registry: named deployments of servables with warm compile caching.

A :class:`Deployment` ties one :class:`~repro.serving.servable.Servable`
(trained state included) to an approximation configuration and hands out
reusable :class:`~repro.backends.BoundProgram` inference handles, one per
(micro-batch bucket, worker scope).  Handles are created through the shared
:class:`~repro.serving.cache.CompiledProgramCache`, so re-registering a
model or warming a second worker of the same target skips tracing,
transforms, lowering and verification entirely — and, with
:meth:`ModelRegistry.save_cache` / :meth:`ModelRegistry.load_cache`, so
does re-registering after a process restart.

:class:`ShardedDeployment` extends this to class memories that exceed one
worker's capacity: the servable's :class:`~repro.serving.servable
.ShardSpec` constant is split into N contiguous row blocks, each shard
compiles a *partial-score* program bound to its slice alone, and
:func:`reduce_partials` folds the scatter-executed partial scores back
into predictions (argmin / argmax / top-k) — bit-identically to the
unsharded program, because ordered concatenation restores the exact
arg-reduction input.

The :class:`ModelRegistry` is usable standalone — ``registry.register(...)``
then ``deployment.run(batch)`` — and is what
:class:`~repro.serving.server.InferenceServer` builds on.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.backends.base import Backend, BoundProgram, ExecutionReport, ExecutionResult
from repro.backends.packing import packable_entry_params
from repro.ir.dataflow import Target
from repro.kernels import binary as binkern, reference as refkern
from repro.serving.cache import CompiledProgramCache
from repro.serving.scheduler import default_worker_backend
from repro.serving.servable import Servable
from repro.transforms.pipeline import ApproximationConfig

__all__ = [
    "Deployment",
    "ShardedDeployment",
    "ModelRegistry",
    "StaleVersionError",
    "reduce_partials",
]


class StaleVersionError(RuntimeError):
    """A version-pinned request (``infer(..., min_version=N)``) reached a
    deployment still serving an older version.

    Version pinning is the read-your-writes contract across replica
    groups: after a group-wide ``update`` returns version N, a client may
    pin follow-up reads to ``min_version=N``; a replica that missed the
    update (killed mid-propagation, not yet resynced) refuses the read
    with this typed error instead of silently serving stale predictions.
    The transport maps it end to end (the HTTP gateway answers 409), so
    callers can retry against another replica or trigger a resync.
    """

    def __init__(self, model: str, version: int, min_version: int):
        super().__init__(
            f"model {model!r} is at version {version}, but the request "
            f"pinned min_version={min_version} — this replica is stale"
        )
        self.model = model
        self.version = int(version)
        self.min_version = int(min_version)


def reduce_partials(
    partials: Sequence[np.ndarray], mode: str, top_k: int = 1
) -> np.ndarray:
    """Fold per-shard score matrices into predictions.

    Args:
        partials: One ``(batch, shard_rows)`` score matrix per shard, in
            shard order, so concatenation restores original row indices.
        mode: ``"argmin"`` (distances) or ``"argmax"`` (similarities).
        top_k: With the default 1, returns a ``(batch,)`` index vector —
            the same contract as the unsharded arg-reduced program.  With
            ``top_k > 1``, returns ``(batch, top_k)`` ranked indices.

    Tie-breaking matches ``np.argmin`` / ``np.argmax`` (first match wins)
    and the top-k ranking uses a stable sort, so sharded results are
    bit-identical to reducing the unsharded score matrix.
    """
    scores = np.concatenate([np.asarray(p) for p in partials], axis=-1)
    if mode not in ("argmin", "argmax"):
        raise ValueError(f"mode must be 'argmin' or 'argmax', got {mode!r}")
    if top_k == 1:
        reduced = scores.argmin(axis=-1) if mode == "argmin" else scores.argmax(axis=-1)
        return reduced.astype(np.int64)
    if top_k < 1 or top_k > scores.shape[-1]:
        raise ValueError(f"top_k={top_k} out of range for {scores.shape[-1]} classes")
    keys = scores if mode == "argmin" else -scores
    return np.argsort(keys, axis=-1, kind="stable")[..., :top_k].astype(np.int64)


class Deployment:
    """One registered model: a servable plus its compiled-handle cache."""

    def __init__(
        self,
        name: str,
        servable: Servable,
        cache: CompiledProgramCache,
        config: Optional[ApproximationConfig] = None,
        default_target: Union[str, Target] = Target.CPU,
    ):
        self.name = name
        self.servable = servable
        self.cache = cache
        self.config = config
        self.default_target = (
            Target(default_target) if not isinstance(default_target, Target) else default_target
        )
        if not servable.supports_target(self.default_target):
            raise ValueError(
                f"{servable.name!r} does not support target {self.default_target.value} "
                f"(supports {servable.supported_targets})"
            )
        self._default_backend: Optional[Backend] = None
        self._handles: Dict[tuple, BoundProgram] = {}
        #: Packed class-memory constants, keyed by param name — populated
        #: lazily by :meth:`handle_for` when the approximation config opts
        #: this deployment into packed residency (``binarize``).  Packing
        #: is a pure function of the servable's float constants, so every
        #: handle (and every rebuilt deployment replaying the same
        #: constants) binds bit-identical words.
        self._packed_constants: Dict[str, "binkern.PackedBits"] = {}
        self._lock = threading.Lock()
        #: Monotonic deployment version, stamped by the registry on
        #: :meth:`ModelRegistry.register` / :meth:`ModelRegistry.swap`.
        #: 0 means "never registered".
        self.version = 0

    # -- backends -----------------------------------------------------------------
    @property
    def default_backend(self) -> Backend:
        with self._lock:
            if self._default_backend is None:
                self._default_backend = default_worker_backend(self.default_target)
            return self._default_backend

    # -- handles ------------------------------------------------------------------
    def handle_for(self, batch_size: int, worker=None) -> BoundProgram:
        """The reusable inference handle for one micro-batch bucket.

        When ``worker`` (a :class:`repro.serving.scheduler.Worker`) is
        given, the handle executes through that worker's back end and the
        cache entry is keyed by the worker's scope; otherwise the
        deployment's default backend is used.
        """
        if worker is not None:
            backend, scope = worker.backend, worker.scope
        else:
            backend, scope = self.default_backend, self.default_target.value
        key = self.cache.make_key(
            self.servable.signature, backend.target, self.config, batch_size, scope
        )
        handle_key = (key, id(backend))
        with self._lock:
            handle = self._handles.get(handle_key)
        if handle is not None:
            return handle
        compiled = self.cache.get_or_compile(
            key, backend, lambda: self.servable.build_program(batch_size), config=self.config
        )
        handle = compiled.bind(backend=backend, **self._constants_for(compiled))
        with self._lock:
            return self._handles.setdefault(handle_key, handle)

    # -- packed residency ----------------------------------------------------------
    def _constants_for(self, compiled) -> dict:
        """The constants one compiled handle binds — packed class memory
        when this deployment opted into packed residency.

        A ``binarize`` approximation config turns eligible constants (see
        :func:`~repro.backends.packing.packable_entry_params`) into
        :class:`~repro.kernels.binary.PackedBits` ``uint64`` words:
        ``pack(sign(float_constants))``, exactly the binarization the
        program's ``_coerce`` would apply, so results are bit-identical
        to binding the float state.  The packed words are computed once
        per deployment and shared by every handle; the servable's float
        constants are left untouched (``update_batch`` needs them).
        """
        constants = self.servable.constants
        if self.config is None or not getattr(self.config, "binarize", False):
            return constants
        packable = packable_entry_params(compiled.program)
        if not packable:
            return constants
        bound = dict(constants)
        with self._lock:
            for name in packable:
                if name not in constants:
                    continue
                packed = self._packed_constants.get(name)
                if packed is None:
                    packed = binkern.pack_bipolar(
                        refkern.sign(np.asarray(constants[name]))
                    )
                    self._packed_constants[name] = packed
                bound[name] = packed
        return bound

    def residency(self) -> Optional[dict]:
        """Resident class-memory accounting, or ``None`` when unpacked.

        Reports, per packed constant and in total, the bytes actually
        resident (``uint64`` words) against what the same state occupies
        unpacked — the ~32x shrink the serving metrics and Prometheus
        exposition surface per model.
        """
        with self._lock:
            packed_map = dict(self._packed_constants)
        if not packed_map:
            return None
        params = {}
        resident = unpacked = 0
        for name, packed in packed_map.items():
            source = self.servable.constants.get(name)
            source_bytes = int(np.asarray(source).nbytes) if source is not None else 0
            params[name] = {
                "resident_bytes": int(packed.nbytes),
                "unpacked_bytes": source_bytes,
                "dim": int(packed.dim),
            }
            resident += int(packed.nbytes)
            unpacked += source_bytes
        return {
            "packed": True,
            "params": params,
            "class_memory_bytes": resident,
            "class_memory_unpacked_bytes": unpacked,
            "shrink_ratio": (unpacked / resident) if resident else 0.0,
        }

    def ensure_packed(self) -> Optional[dict]:
        """Materialize packed residency *now* and return the accounting.

        :meth:`residency` only reports words that already exist, so a
        deployment registered with ``warm=False`` — or swapped in without
        a warm pass — would report ``None`` (and leave the Prometheus
        class-memory gauges stale) until the first handle compiled.  The
        broker calls this at register/swap time so the gauges reflect the
        new constant bytes eagerly, not lazily at the next ``stats()``.
        Compiling the smallest bucket is what triggers the one-time pack;
        for unpacked configs this is a no-op returning ``None``.
        """
        if self.config is not None and getattr(self.config, "binarize", False):
            with self._lock:
                packed = bool(self._packed_constants)
            if not packed:
                self.handle_for(1)
        return self.residency()

    def warm(self, batch_sizes: Iterable[int], worker=None) -> None:
        """Pre-compile (or cache-hit) the handles for the given buckets."""
        for batch_size in batch_sizes:
            self.handle_for(batch_size, worker=worker)

    # -- hot-swap -----------------------------------------------------------------
    def with_servable(self, servable: Servable) -> "Deployment":
        """A same-shaped deployment (name, cache, config, target) serving a
        different servable — the replacement a hot-swap installs after an
        online update re-trained the bound state."""
        return Deployment(
            self.name,
            servable,
            self.cache,
            config=self.config,
            default_target=self.default_target,
        )

    # -- direct execution ---------------------------------------------------------
    def run(self, batch: np.ndarray, worker=None) -> ExecutionResult:
        """One-shot batched inference through the deployment's own handle."""
        batch = np.asarray(batch)
        handle = self.handle_for(batch.shape[0], worker=worker)
        return handle.run(**{self.servable.query_param: batch})

    def __repr__(self) -> str:
        return (
            f"Deployment({self.name!r}, v{self.version}, "
            f"target={self.default_target.value}, handles={len(self._handles)})"
        )


class ShardedDeployment(Deployment):
    """A deployment whose class memory is split across N shard workers.

    Construction slices ``servable.shard_spec.param`` into ``n_shards``
    contiguous row blocks and builds one sub-:class:`Deployment` per
    shard, each serving the partial-score program over its slice alone —
    so no single worker ever holds (or transfers) the full hypermatrix.
    Execution scatters the same query batch to every shard, gathers the
    ``(batch, shard_rows)`` partial scores and reduces them with
    :func:`reduce_partials`.

    The parent :class:`Deployment` machinery (default backend, signature,
    config) is reused; the full-memory handles of the parent are simply
    never compiled, because :meth:`warm`, :meth:`run` and the server's
    scatter path only touch the shard sub-deployments.
    """

    def __init__(
        self,
        name: str,
        servable: Servable,
        cache: CompiledProgramCache,
        n_shards: int,
        config: Optional[ApproximationConfig] = None,
        default_target: Union[str, Target] = Target.CPU,
        shard_capacity: Optional[int] = None,
    ):
        super().__init__(name, servable, cache, config=config, default_target=default_target)
        spec = servable.shard_spec
        if spec is None:
            raise ValueError(f"{servable.name!r} has no shard_spec; cannot deploy sharded")
        full = np.asarray(servable.constants[spec.param])
        rows = full.shape[spec.axis]
        if shard_capacity is not None and shard_capacity < 1:
            raise ValueError(f"shard_capacity must be >= 1, got {shard_capacity}")
        if n_shards < 2:
            raise ValueError(f"n_shards must be >= 2, got {n_shards}")
        if n_shards > rows:
            raise ValueError(f"cannot split {rows} rows into {n_shards} shards")
        self.n_shards = n_shards
        #: Maximum class-memory rows one shard may hold.  With a capacity
        #: declared, :meth:`with_servable` re-partitions when append-style
        #: growth would push any shard past it — the live shard-rebalance
        #: path of shape-changing swap.
        self.shard_capacity = shard_capacity
        self.spec = spec
        self.shards: List[Deployment] = []
        for index, block in enumerate(np.array_split(np.arange(rows), n_shards)):
            piece = np.ascontiguousarray(np.take(full, block, axis=spec.axis))
            constants = dict(servable.constants)
            constants[spec.param] = piece
            n_rows = piece.shape[spec.axis]
            sub = Servable(
                name=f"{servable.name}#shard{index}of{n_shards}",
                build_program=lambda b, n=n_rows: spec.build_partial(b, n),
                constants=constants,
                query_param=servable.query_param,
                sample_shape=servable.sample_shape,
                # Shard slices of different deployments of the same model
                # share cache entries; the slice identity is the parent
                # signature plus the shard coordinates.
                signature=f"{servable.signature}:shard{index}of{n_shards}",
                supported_targets=servable.supported_targets,
            )
            self.shards.append(
                Deployment(sub.name, sub, cache, config=config, default_target=self.default_target)
            )

    # -- handles ------------------------------------------------------------------
    def shard_handle_for(self, shard: int, batch_size: int, worker=None) -> BoundProgram:
        """The partial-score inference handle of one shard."""
        return self.shards[shard].handle_for(batch_size, worker=worker)

    def warm(self, batch_sizes: Iterable[int], worker=None) -> None:
        """Pre-compile every shard's handles for the given buckets."""
        batch_sizes = list(batch_sizes)
        for shard in self.shards:
            shard.warm(batch_sizes, worker=worker)

    # -- hot-swap -----------------------------------------------------------------
    def with_servable(self, servable: Servable) -> "ShardedDeployment":
        """A sharded deployment serving a different servable (same cache,
        config and target), re-partitioned live when growth demands it.

        With a ``shard_capacity`` declared, a replacement whose sharded
        constant has grown past ``n_shards * shard_capacity`` rows gets
        more shards — the smallest count that fits every contiguous block
        within capacity again.  Construction rebuilds every shard's
        partial servable from the new row partition (signatures carry the
        new shard coordinates, so the bucket ladder re-warms per shard),
        and the broker cuts over atomically exactly as for a same-shape
        swap; scatter/gather stays bit-identical because ordered
        concatenation of the new blocks restores the same full score
        matrix.
        """
        n_shards = self.n_shards
        if self.shard_capacity is not None:
            rows = int(
                np.asarray(servable.constants[self.spec.param]).shape[self.spec.axis]
            )
            n_shards = max(n_shards, -(-rows // self.shard_capacity))
        return ShardedDeployment(
            self.name,
            servable,
            self.cache,
            n_shards,
            config=self.config,
            default_target=self.default_target,
            shard_capacity=self.shard_capacity,
        )

    # -- packed residency ----------------------------------------------------------
    def ensure_packed(self) -> Optional[dict]:
        """Materialize every shard's packed residency (the parent's full
        program is never compiled — only shard partials serve)."""
        if self.config is not None and getattr(self.config, "binarize", False):
            for shard in self.shards:
                shard.ensure_packed()
        return self.residency()

    def residency(self) -> Optional[dict]:
        """Aggregate resident class-memory bytes across all shards."""
        shard_docs = [shard.residency() for shard in self.shards]
        shard_docs = [doc for doc in shard_docs if doc is not None]
        if not shard_docs:
            return None
        params: dict = {}
        resident = unpacked = 0
        for doc in shard_docs:
            resident += doc["class_memory_bytes"]
            unpacked += doc["class_memory_unpacked_bytes"]
            for name, info in doc["params"].items():
                merged = params.setdefault(
                    name, {"resident_bytes": 0, "unpacked_bytes": 0, "dim": info["dim"]}
                )
                merged["resident_bytes"] += info["resident_bytes"]
                merged["unpacked_bytes"] += info["unpacked_bytes"]
        return {
            "packed": True,
            "params": params,
            "class_memory_bytes": resident,
            "class_memory_unpacked_bytes": unpacked,
            "shrink_ratio": (unpacked / resident) if resident else 0.0,
            "shards": len(shard_docs),
        }

    # -- reduction ----------------------------------------------------------------
    def reduce(self, partials: Sequence[np.ndarray], top_k: int = 1) -> np.ndarray:
        """Fold gathered shard scores into predictions (see spec.reduce)."""
        return reduce_partials(partials, self.spec.reduce, top_k=top_k)

    # -- direct execution ---------------------------------------------------------
    def run(self, batch: np.ndarray, worker=None, top_k: int = 1) -> ExecutionResult:
        """Scatter one batch over all shards sequentially and reduce.

        The standalone path (no worker pool): every shard's partial
        program runs on the deployment's default backend and the merged
        :class:`~repro.backends.base.ExecutionReport` sums their costs.
        The server's scatter path instead spreads the shards across
        distinct pool workers.
        """
        batch = np.asarray(batch)
        report = ExecutionReport(target=self.default_target.value)
        partials = []
        for shard in self.shards:
            result = shard.run(batch, worker=worker)
            partials.append(np.asarray(result.output))
            report.merge(result.report)
        predictions = self.reduce(partials, top_k=top_k)
        return ExecutionResult({"predictions": predictions}, report)

    def __repr__(self) -> str:
        return (
            f"ShardedDeployment({self.name!r}, shards={self.n_shards}, "
            f"target={self.default_target.value}, reduce={self.spec.reduce})"
        )


class ModelRegistry:
    """Named (servable, target, approximation-config) deployments.

    Every name carries a **monotonically increasing version**: the first
    :meth:`register` stamps 1, and each subsequent re-register or
    :meth:`swap` under the same name bumps it — under the registry lock,
    so concurrent swappers always observe strictly increasing versions.
    Versions survive :meth:`unregister`, so a name re-registered later
    continues the sequence instead of restarting it.
    """

    def __init__(self, cache: Optional[CompiledProgramCache] = None):
        self.cache = cache if cache is not None else CompiledProgramCache()
        self._models: Dict[str, Deployment] = {}
        self._versions: Dict[str, int] = {}
        self._lock = threading.Lock()

    def register(
        self,
        servable: Servable,
        name: Optional[str] = None,
        target: Union[str, Target] = Target.CPU,
        config: Optional[ApproximationConfig] = None,
        warm_batch_sizes: Iterable[int] = (1,),
        shards: Optional[int] = None,
        shard_capacity: Optional[int] = None,
    ) -> Deployment:
        """Deploy a servable under a name, warming the compile cache.

        Re-registering an unchanged servable is cheap: the signature keys
        the same cache entries, so warming hits instead of recompiling.

        Args:
            shards: Deploy sharded across this many class-memory slices
                (requires ``servable.shard_spec``); ``None`` deploys the
                ordinary single-memory program.
            shard_capacity: Maximum rows per shard; append-style growth
                past it re-partitions live at swap time (sharded only).
        """
        name = name or servable.name
        if shards is not None:
            deployment: Deployment = ShardedDeployment(
                name,
                servable,
                self.cache,
                shards,
                config=config,
                default_target=target,
                shard_capacity=shard_capacity,
            )
        else:
            deployment = Deployment(name, servable, self.cache, config=config, default_target=target)
        deployment.warm(warm_batch_sizes)
        with self._lock:
            self._install_locked(name, deployment)
        return deployment

    def swap(
        self, name: str, deployment: Deployment, expected: Optional[Deployment] = None
    ) -> int:
        """Atomically replace a registered deployment; returns the version.

        The replacement must already be built (and ideally warmed — see
        :meth:`Deployment.with_servable`); the swap itself is one
        dictionary write under the registry lock, so readers see either
        the old deployment or the new one, never an intermediate state.
        The name's version is bumped under the same lock acquisition,
        which is what makes versions strictly monotonic under concurrent
        swappers.

        Args:
            expected: Optional compare-and-swap guard — the deployment
                this replacement was derived from.  The swap is refused
                when the registry no longer holds it (someone else
                re-registered or swapped the name meanwhile), so a stale
                derivation cannot clobber newer state.

        Raises:
            KeyError: ``name`` is not registered (use :meth:`register`
                for first-time deployment).
            ValueError: The replacement was built under a different name.
            RuntimeError: The compare-and-swap guard failed.
        """
        if deployment.name != name:
            raise ValueError(
                f"cannot swap {name!r} with a deployment named {deployment.name!r}"
            )
        with self._lock:
            if name not in self._models:
                raise KeyError(
                    f"no model {name!r} registered to swap (have {sorted(self._models)})"
                )
            if expected is not None and self._models[name] is not expected:
                raise RuntimeError(
                    f"model {name!r} changed concurrently (now v{self._models[name].version}, "
                    f"swap was derived from v{expected.version}); re-derive and retry"
                )
            return self._install_locked(name, deployment)

    def _install_locked(self, name: str, deployment: Deployment) -> int:
        """Install a deployment and bump its version (caller holds the lock)."""
        version = self._versions.get(name, 0) + 1
        self._versions[name] = version
        deployment.version = version
        self._models[name] = deployment
        return version

    def version(self, name: str) -> int:
        """The current version of one registered name (0 if never seen)."""
        with self._lock:
            return self._versions.get(name, 0)

    def versions(self) -> Dict[str, int]:
        """``{name: version}`` for every currently registered deployment."""
        with self._lock:
            return {name: self._versions[name] for name in self._models}

    def get(self, name: str) -> Deployment:
        with self._lock:
            try:
                return self._models[name]
            except KeyError as exc:
                raise KeyError(
                    f"no model {name!r} registered (have {sorted(self._models)})"
                ) from exc

    def unregister(self, name: str) -> None:
        with self._lock:
            self._models.pop(name, None)

    # -- cache persistence --------------------------------------------------------
    def save_cache(self, path) -> int:
        """Persist the shared compile cache (see
        :meth:`~repro.serving.cache.CompiledProgramCache.save`)."""
        return self.cache.save(path)

    def load_cache(self, path) -> int:
        """Restore a persisted compile cache before registering, so the
        registrations warm from disk instead of compiling (their hits are
        counted in ``cache.stats.warm_hits``)."""
        return self.cache.load(path)

    def names(self) -> list:
        with self._lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._models

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __repr__(self) -> str:
        return f"ModelRegistry({self.names()}, cache={self.cache!r})"
