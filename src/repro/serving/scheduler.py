"""Multi-model fair scheduling and the multi-backend worker pool.

Two layers live here.

**Fairness across deployments.**  Every registered model feeds batches into
a :class:`FairScheduler` lane; a single dispatcher drains the scheduler and
hands batches to the pool.  Lane selection is *weighted round-robin with
starvation aging* (stride scheduling): each lane advances a virtual "pass"
by ``1 / weight`` per served batch and the lane with the smallest pass —
minus an aging bonus that grows with its head batch's wait — is served
next.  Under a skewed load this interleaves the cold model's occasional
batch between the hot model's backlog instead of queueing behind it, which
bounds the cold model's wait at a couple of batch service times.  Plain
per-model FIFO dispatch (the previous design) gives the cold model a wait
proportional to the hot model's entire backlog.

**Workers.**  A :class:`Worker` owns one back-end instance and a serial
execution thread:

* CPU workers default to the batched host kernel path
  (``CPUBackend(batched=True)``) so coalesced micro-batches execute as
  whole-hypermatrix library routines;
* GPU workers use the batched library kernels and device model as usual;
* accelerator workers (``hdc_asic`` / ``hdc_reram``) are created with
  ``reuse_session=True``, so one warm :class:`~repro.backends.runtime
  .DeviceSession` spans the worker's whole request stream and the base /
  class memory transfers of every batch after the first are elided —
  the paper's "lift redundant data movements" host optimization applied
  fleet-wide.

A :class:`WorkerPool` fans :class:`BatchWork` items out across workers
under a pluggable :class:`SchedulingPolicy` (round-robin, least-loaded or
latency-aware) and can *scatter* the shard tasks of one batch across
distinct workers (:meth:`WorkerPool.dispatch_scatter`), which is how
:class:`~repro.serving.registry.ShardedDeployment` executes.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.backends import backend_for_target
from repro.backends.base import Backend
from repro.ir.dataflow import Target

__all__ = [
    "default_worker_backend",
    "BatchWork",
    "ShardGather",
    "FairScheduler",
    "Worker",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LatencyAwarePolicy",
    "make_policy",
    "WorkerPool",
]

_ACCELERATOR_TARGETS = {Target.HDC_ASIC, Target.HDC_RERAM}
_SENTINEL = object()


def default_worker_backend(target: Target) -> Backend:
    """The serving-default back end for a target: batched host kernels on
    the CPU, a warm reusable device session on the accelerators."""
    if target == Target.CPU:
        return backend_for_target(target, batched=True)
    if target in _ACCELERATOR_TARGETS:
        return backend_for_target(target, reuse_session=True)
    return backend_for_target(target)


# ---------------------------------------------------------------------------
# Work items
# ---------------------------------------------------------------------------


@dataclass
class BatchWork:
    """One unit of worker work: a coalesced batch bound to a deployment.

    For sharded deployments one logical batch fans out into ``n_shards``
    ``BatchWork`` items sharing a :class:`ShardGather`; ``shard`` selects
    which slice of the class memory this item's worker searches.
    """

    deployment: object
    requests: list
    shard: Optional[int] = None
    gather: Optional["ShardGather"] = None

    @property
    def enqueued_at(self) -> float:
        """Enqueue time of the oldest request in the batch (for aging)."""
        return min(r.enqueued_at for r in self.requests) if self.requests else time.monotonic()


class ShardGather:
    """Rendezvous for the partial results of one scatter-executed batch.

    Each shard worker calls :meth:`complete` with its partial score
    matrix; the call that delivers the final missing partial returns
    ``True`` and its worker performs the reduction (so the reduce runs on
    whichever worker finishes last, with no extra thread).  The first
    shard to fail wins :meth:`fail` and resolves the batch's futures with
    its error exactly once.
    """

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self.partials: List[Optional[object]] = [None] * n_shards
        self._pending = n_shards
        self._failed = False
        self._lock = threading.Lock()

    def complete(self, shard: int, partial) -> bool:
        """Deliver one shard's partial; True when this was the last one."""
        with self._lock:
            if self._failed:
                return False
            self.partials[shard] = partial
            self._pending -= 1
            return self._pending == 0

    def fail(self, exc: BaseException) -> bool:
        """Mark the batch failed; True only for the first failing shard."""
        with self._lock:
            if self._failed:
                return False
            self._failed = True
            return True


# ---------------------------------------------------------------------------
# Fair scheduling across deployments
# ---------------------------------------------------------------------------


class FairScheduler:
    """Weighted round-robin over deployment lanes with starvation aging.

    Implements stride scheduling: lane ``i`` carries a virtual *pass*
    that advances by ``1 / weight_i`` each time the lane is served, and
    :meth:`next_ready` serves the non-empty lane with the smallest
    effective pass.  A lane that was idle re-enters at the global virtual
    time (it cannot hoard credit while empty).  The effective pass
    subtracts ``head_wait / aging_seconds`` stride units, so a lane whose
    head batch has waited long jumps the queue — the starvation-aging
    guarantee on top of proportional sharing.

    Args:
        aging_seconds: Wait time that earns one stride unit of priority
            boost.  Smaller values age faster (more latency-fair, less
            throughput-proportional).
    """

    def __init__(self, aging_seconds: float = 0.25):
        if aging_seconds <= 0:
            raise ValueError("aging_seconds must be positive")
        self.aging_seconds = aging_seconds
        self._queues: Dict[str, deque] = {}
        self._weights: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}
        self._served: Dict[str, int] = {}
        self._vtime = 0.0
        self._cond = threading.Condition()
        self._closed = False

    # -- lanes --------------------------------------------------------------------
    def ensure_lane(self, name: str, weight: float = 1.0) -> None:
        """Create (or re-weight) the lane for one deployment."""
        if weight <= 0:
            raise ValueError("lane weight must be positive")
        with self._cond:
            self._queues.setdefault(name, deque())
            self._weights[name] = float(weight)
            self._passes.setdefault(name, self._vtime)
            self._served.setdefault(name, 0)

    def remove_lane(self, name: str) -> None:
        """Drop a lane; queued batches are discarded (callers drain first)."""
        with self._cond:
            self._queues.pop(name, None)
            self._weights.pop(name, None)
            self._passes.pop(name, None)
            self._served.pop(name, None)

    # -- producer side ------------------------------------------------------------
    def offer(self, name: str, work: BatchWork) -> None:
        """Queue one batch on a deployment's lane."""
        with self._cond:
            lane = self._queues.get(name)
            if lane is None:
                self.ensure_lane(name)
                lane = self._queues[name]
            if not lane:
                # Re-entering after idling: no hoarded credit.
                self._passes[name] = max(self._passes[name], self._vtime)
            lane.append(work)
            self._cond.notify_all()

    # -- consumer side ------------------------------------------------------------
    def next_ready(
        self,
        timeout: Optional[float] = None,
        admissible: Optional[Callable[[BatchWork], bool]] = None,
    ) -> Optional[BatchWork]:
        """The next batch under weighted round-robin with aging.

        Blocks up to ``timeout`` for work; returns ``None`` on timeout or
        when the scheduler is closed and drained.

        Args:
            admissible: Optional predicate over a lane's head batch; a
                lane whose head fails it is skipped this round.  The
                server passes worker-capacity admission control here, so
                one model's saturated workers never head-of-line block
                another model whose workers are idle.  Inadmissible lanes
                are re-polled on a short tick (capacity frees up without
                a notification).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                name, blocked = self._select(admissible)
                if name is not None:
                    work = self._queues[name].popleft()
                    self._vtime = self._passes[name]
                    self._passes[name] += 1.0 / self._weights[name]
                    self._served[name] += 1
                    return work
                if self._closed and not blocked:
                    return None
                # With only inadmissible work queued, poll on a short
                # tick; otherwise sleep until offered work or timeout.
                wait = 5e-4 if blocked else None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    wait = remaining if wait is None else min(wait, remaining)
                self._cond.wait(wait)

    def _select(
        self, admissible: Optional[Callable[[BatchWork], bool]] = None
    ) -> "tuple[Optional[str], bool]":
        """(Best admissible lane, whether any lane was skipped as blocked).

        Best = non-empty lane with the smallest aging-adjusted pass.
        """
        now = time.monotonic()
        best, best_score, blocked = None, None, False
        for name, lane in self._queues.items():
            if not lane:
                continue
            if admissible is not None and not admissible(lane[0]):
                blocked = True
                continue
            wait = now - lane[0].enqueued_at
            score = self._passes[name] - wait / self.aging_seconds
            if best_score is None or score < best_score:
                best, best_score = name, score
        return best, blocked

    # -- lifecycle / observability ------------------------------------------------
    def pending(self) -> int:
        with self._cond:
            return sum(len(lane) for lane in self._queues.values())

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop blocking consumers once the remaining lanes drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> dict:
        """Per-lane weight / served / pending snapshot for ServerStats."""
        with self._cond:
            return {
                name: {
                    "weight": self._weights.get(name, 1.0),
                    "served_batches": self._served.get(name, 0),
                    "pending_batches": len(lane),
                }
                for name, lane in self._queues.items()
            }

    def __repr__(self) -> str:
        return f"FairScheduler(lanes={sorted(self._queues)}, aging={self.aging_seconds}s)"


# ---------------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------------


class Worker:
    """One serial execution lane bound to a back-end instance."""

    def __init__(
        self,
        name: str,
        target: Union[str, Target],
        backend: Optional[Backend] = None,
    ):
        self.name = name
        self.target = Target(target) if not isinstance(target, Target) else target
        self.backend = backend if backend is not None else default_worker_backend(self.target)
        if self.backend.target != self.target:
            raise ValueError(f"backend targets {self.backend.target}, worker wants {self.target}")
        #: Cache scope: compiled programs for the stateless CPU/GPU back
        #: ends are shared per target; accelerator artifacts are tied to
        #: one device's residency state, so they are scoped per worker.
        self.scope = (
            f"{self.target.value}:{name}" if self.target in _ACCELERATOR_TARGETS else self.target.value
        )
        self.queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.inflight = 0
        self.batches = 0
        self.samples = 0
        self.busy_seconds = 0.0
        #: Exponentially-weighted seconds per sample, fed to the
        #: latency-aware policy.
        self.ewma_seconds_per_sample = 0.0

    # -- load accounting ----------------------------------------------------------
    def pending_samples(self) -> int:
        with self._lock:
            return self.inflight

    def submit(self, work: BatchWork) -> None:
        """Queue one :class:`BatchWork` for this worker's thread."""
        with self._lock:
            self.inflight += len(work.requests)
        self.queue.put(work)

    def estimated_drain_seconds(self, extra_samples: int = 0) -> float:
        per_sample = self.ewma_seconds_per_sample
        return (self.pending_samples() + extra_samples) * per_sample

    def _record(self, n_samples: int, seconds: float) -> None:
        with self._lock:
            self.inflight -= n_samples
            self.batches += 1
            self.samples += n_samples
            self.busy_seconds += seconds
            per_sample = seconds / max(1, n_samples)
            if self.ewma_seconds_per_sample == 0.0:
                self.ewma_seconds_per_sample = per_sample
            else:
                self.ewma_seconds_per_sample += 0.25 * (per_sample - self.ewma_seconds_per_sample)

    def stats(self) -> dict:
        with self._lock:
            stats = {
                "target": self.target.value,
                "batches": self.batches,
                "samples": self.samples,
                "busy_seconds": self.busy_seconds,
                "ewma_seconds_per_sample": self.ewma_seconds_per_sample,
            }
        session = getattr(self.backend, "last_session", None)
        stats["elided_transfers"] = session.elided_transfers if session is not None else 0
        stats["capacity_evictions"] = getattr(session, "capacity_evictions", 0) if session is not None else 0
        return stats

    # -- thread -------------------------------------------------------------------
    def start(self, execute: Callable[["Worker", BatchWork], None]) -> None:
        """Start the worker thread; ``execute(worker, work)`` runs a batch."""
        if self._thread is not None:
            return

        def loop() -> None:
            while True:
                work = self.queue.get()
                if work is _SENTINEL:
                    break
                start = time.perf_counter()
                try:
                    execute(self, work)
                finally:
                    self._record(len(work.requests), time.perf_counter() - start)

        self._thread = threading.Thread(target=loop, name=f"hdc-worker-{self.name}", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Process remaining queued work, then join the thread."""
        if self._thread is None:
            return
        self.queue.put(_SENTINEL)
        self._thread.join()
        self._thread = None

    def __repr__(self) -> str:
        return f"Worker({self.name!r}, target={self.target.value}, batches={self.batches})"


class SchedulingPolicy:
    """Chooses the worker that receives the next batch."""

    name = "policy"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through the eligible workers."""

    name = "round_robin"

    def __init__(self) -> None:
        self._counter = 0
        self._lock = threading.Lock()

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        with self._lock:
            worker = workers[self._counter % len(workers)]
            self._counter += 1
        return worker


class LeastLoadedPolicy(SchedulingPolicy):
    """Send the batch to the worker with the fewest samples in flight."""

    name = "least_loaded"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        return min(workers, key=lambda w: w.pending_samples())


class LatencyAwarePolicy(SchedulingPolicy):
    """Minimize the predicted completion time of the new batch.

    Predicted completion is the worker's estimated drain time for its
    in-flight samples plus the new batch, using its observed per-sample
    EWMA — so a slow accelerator worker naturally receives fewer batches
    than a fast host worker once their speeds are known.
    """

    name = "latency_aware"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        return min(workers, key=lambda w: w.estimated_drain_seconds(batch_size))


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LatencyAwarePolicy.name: LatencyAwarePolicy,
}


def make_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError as exc:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}") from exc


class WorkerPool:
    """A fleet of workers plus the policy that routes batches to them."""

    def __init__(
        self,
        workers: Iterable[Union[str, Target, Worker]] = ("cpu",),
        policy: Union[str, SchedulingPolicy] = "least_loaded",
    ):
        self.workers: List[Worker] = []
        counts: dict = {}
        for spec in workers:
            if isinstance(spec, Worker):
                self.workers.append(spec)
                continue
            target = Target(spec) if not isinstance(spec, Target) else spec
            index = counts.get(target.value, 0)
            counts[target.value] = index + 1
            self.workers.append(Worker(f"{target.value}-{index}", target))
        if not self.workers:
            raise ValueError("worker pool needs at least one worker")
        self.policy = make_policy(policy)
        self._started = False

    def eligible(self, servable) -> List[Worker]:
        return [w for w in self.workers if servable.supports_target(w.target)]

    def min_backlog(self, servable) -> int:
        """Smallest in-flight sample count among eligible workers.

        The server's dispatcher uses this for admission control: holding
        batches in the :class:`FairScheduler` until a worker is nearly
        free is what lets weighted round-robin actually interleave models
        — once a batch sits in a worker's FIFO queue its order is fixed.
        """
        workers = self.eligible(servable)
        if not workers:
            return 0
        return min(w.pending_samples() for w in workers)

    def dispatch(self, servable, work: BatchWork) -> Worker:
        """Route one batch to a worker chosen by the scheduling policy."""
        workers = self._require_eligible(servable)
        worker = self.policy.choose(workers, len(work.requests))
        worker.submit(work)
        return worker

    def dispatch_scatter(
        self,
        servable,
        works: Sequence[BatchWork],
        placement: Optional[Sequence[Worker]] = None,
    ) -> List[Worker]:
        """Scatter the shard tasks of one batch across distinct workers.

        With at least as many eligible workers as shards, the least-loaded
        workers each take one shard (true scatter — the point of sharding
        is that no single worker holds the whole class memory).  With
        fewer workers, shards wrap around the eligible set and execute
        serially on their shared workers, which stays correct.

        ``placement`` pins shard *i* to ``placement[i % len(placement)]``
        instead of re-ranking by load: a shard that always lands on the
        same worker keeps its slice of the class memory resident in that
        worker's ``DeviceSession`` (and its compiled handles hot), so
        steady-state shard execution elides the per-batch constants
        transfer entirely.  Load-ranked scatter migrates shards between
        workers batch to batch, which re-streams slices on every
        migration — fine for stateless CPU workers, ruinous for
        accelerator workers whose class memory is the expensive resource.
        Use :meth:`plan_scatter` for the canonical deterministic plan.
        """
        if placement:
            chosen = []
            for index, work in enumerate(works):
                worker = placement[index % len(placement)]
                worker.submit(work)
                chosen.append(worker)
            return chosen
        workers = self._require_eligible(servable)
        ranked = sorted(workers, key=lambda w: w.pending_samples())
        chosen = []
        for index, work in enumerate(works):
            worker = ranked[index % len(ranked)]
            worker.submit(work)
            chosen.append(worker)
        return chosen

    def plan_scatter(self, servable, n_shards: int) -> List[Worker]:
        """A deterministic shard→worker pinning for one sharded deployment.

        Eligible workers in stable name order, shard *i* pinned to worker
        ``i % len(workers)``.  Deterministic across processes and across
        hot-swaps (the plan depends only on pool composition), so a
        swapped deployment re-pins each shard to the worker already
        holding that slice's predecessor — the new slice replaces the old
        one in the same ``DeviceSession`` instead of rotating all shards
        to new workers.
        """
        workers = sorted(self._require_eligible(servable), key=lambda w: w.name)
        return [workers[index % len(workers)] for index in range(int(n_shards))]

    def _require_eligible(self, servable) -> List[Worker]:
        workers = self.eligible(servable)
        if not workers:
            raise RuntimeError(
                f"no worker in the pool supports {servable.name!r} "
                f"(targets {servable.supported_targets})"
            )
        return workers

    def start(self, execute: Callable[[Worker, BatchWork], None]) -> None:
        if self._started:
            return
        for worker in self.workers:
            worker.start(execute)
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        for worker in self.workers:
            worker.stop()
        self._started = False

    def __repr__(self) -> str:
        return f"WorkerPool({[w.name for w in self.workers]}, policy={self.policy.name})"
