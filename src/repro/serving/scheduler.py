"""Multi-backend worker pool and dispatch policies.

A :class:`Worker` owns one back-end instance and a serial execution thread:

* CPU workers default to the batched host kernel path
  (``CPUBackend(batched=True)``) so coalesced micro-batches execute as
  whole-hypermatrix library routines;
* GPU workers use the batched library kernels and device model as usual;
* accelerator workers (``hdc_asic`` / ``hdc_reram``) are created with
  ``reuse_session=True``, so one warm :class:`~repro.backends.runtime
  .DeviceSession` spans the worker's whole request stream and the base /
  class memory transfers of every batch after the first are elided —
  the paper's "lift redundant data movements" host optimization applied
  fleet-wide.

A :class:`WorkerPool` fans batches out across workers under a pluggable
:class:`SchedulingPolicy` (round-robin, least-loaded or latency-aware).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.backends import backend_for_target
from repro.backends.base import Backend
from repro.ir.dataflow import Target

__all__ = [
    "default_worker_backend",
    "Worker",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LatencyAwarePolicy",
    "make_policy",
    "WorkerPool",
]

_ACCELERATOR_TARGETS = {Target.HDC_ASIC, Target.HDC_RERAM}
_SENTINEL = object()


def default_worker_backend(target: Target) -> Backend:
    """The serving-default back end for a target: batched host kernels on
    the CPU, a warm reusable device session on the accelerators."""
    if target == Target.CPU:
        return backend_for_target(target, batched=True)
    if target in _ACCELERATOR_TARGETS:
        return backend_for_target(target, reuse_session=True)
    return backend_for_target(target)


class Worker:
    """One serial execution lane bound to a back-end instance."""

    def __init__(
        self,
        name: str,
        target: Union[str, Target],
        backend: Optional[Backend] = None,
    ):
        self.name = name
        self.target = Target(target) if not isinstance(target, Target) else target
        self.backend = backend if backend is not None else default_worker_backend(self.target)
        if self.backend.target != self.target:
            raise ValueError(f"backend targets {self.backend.target}, worker wants {self.target}")
        #: Cache scope: compiled programs for the stateless CPU/GPU back
        #: ends are shared per target; accelerator artifacts are tied to
        #: one device's residency state, so they are scoped per worker.
        self.scope = (
            f"{self.target.value}:{name}" if self.target in _ACCELERATOR_TARGETS else self.target.value
        )
        self.queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.inflight = 0
        self.batches = 0
        self.samples = 0
        self.busy_seconds = 0.0
        #: Exponentially-weighted seconds per sample, fed to the
        #: latency-aware policy.
        self.ewma_seconds_per_sample = 0.0

    # -- load accounting ----------------------------------------------------------
    def pending_samples(self) -> int:
        with self._lock:
            return self.inflight

    def submit(self, work) -> None:
        """Queue ``(deployment, requests)`` work for this worker's thread."""
        _, requests = work
        with self._lock:
            self.inflight += len(requests)
        self.queue.put(work)

    def estimated_drain_seconds(self, extra_samples: int = 0) -> float:
        per_sample = self.ewma_seconds_per_sample
        return (self.pending_samples() + extra_samples) * per_sample

    def _record(self, n_samples: int, seconds: float) -> None:
        with self._lock:
            self.inflight -= n_samples
            self.batches += 1
            self.samples += n_samples
            self.busy_seconds += seconds
            per_sample = seconds / max(1, n_samples)
            if self.ewma_seconds_per_sample == 0.0:
                self.ewma_seconds_per_sample = per_sample
            else:
                self.ewma_seconds_per_sample += 0.25 * (per_sample - self.ewma_seconds_per_sample)

    def stats(self) -> dict:
        with self._lock:
            stats = {
                "target": self.target.value,
                "batches": self.batches,
                "samples": self.samples,
                "busy_seconds": self.busy_seconds,
                "ewma_seconds_per_sample": self.ewma_seconds_per_sample,
            }
        session = getattr(self.backend, "last_session", None)
        stats["elided_transfers"] = session.elided_transfers if session is not None else 0
        return stats

    # -- thread -------------------------------------------------------------------
    def start(self, execute: Callable[["Worker", object, list], None]) -> None:
        """Start the worker thread; ``execute(worker, deployment, requests)`` runs a batch."""
        if self._thread is not None:
            return

        def loop() -> None:
            while True:
                work = self.queue.get()
                if work is _SENTINEL:
                    break
                deployment, requests = work
                start = time.perf_counter()
                try:
                    execute(self, deployment, requests)
                finally:
                    self._record(len(requests), time.perf_counter() - start)

        self._thread = threading.Thread(target=loop, name=f"hdc-worker-{self.name}", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Process remaining queued work, then join the thread."""
        if self._thread is None:
            return
        self.queue.put(_SENTINEL)
        self._thread.join()
        self._thread = None

    def __repr__(self) -> str:
        return f"Worker({self.name!r}, target={self.target.value}, batches={self.batches})"


class SchedulingPolicy:
    """Chooses the worker that receives the next batch."""

    name = "policy"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through the eligible workers."""

    name = "round_robin"

    def __init__(self) -> None:
        self._counter = 0
        self._lock = threading.Lock()

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        with self._lock:
            worker = workers[self._counter % len(workers)]
            self._counter += 1
        return worker


class LeastLoadedPolicy(SchedulingPolicy):
    """Send the batch to the worker with the fewest samples in flight."""

    name = "least_loaded"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        return min(workers, key=lambda w: w.pending_samples())


class LatencyAwarePolicy(SchedulingPolicy):
    """Minimize the predicted completion time of the new batch.

    Predicted completion is the worker's estimated drain time for its
    in-flight samples plus the new batch, using its observed per-sample
    EWMA — so a slow accelerator worker naturally receives fewer batches
    than a fast host worker once their speeds are known.
    """

    name = "latency_aware"

    def choose(self, workers: Sequence[Worker], batch_size: int) -> Worker:
        return min(workers, key=lambda w: w.estimated_drain_seconds(batch_size))


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    LatencyAwarePolicy.name: LatencyAwarePolicy,
}


def make_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError as exc:
        raise ValueError(f"unknown policy {policy!r}; choose from {sorted(_POLICIES)}") from exc


class WorkerPool:
    """A fleet of workers plus the policy that routes batches to them."""

    def __init__(
        self,
        workers: Iterable[Union[str, Target, Worker]] = ("cpu",),
        policy: Union[str, SchedulingPolicy] = "least_loaded",
    ):
        self.workers: List[Worker] = []
        counts: dict = {}
        for spec in workers:
            if isinstance(spec, Worker):
                self.workers.append(spec)
                continue
            target = Target(spec) if not isinstance(spec, Target) else spec
            index = counts.get(target.value, 0)
            counts[target.value] = index + 1
            self.workers.append(Worker(f"{target.value}-{index}", target))
        if not self.workers:
            raise ValueError("worker pool needs at least one worker")
        self.policy = make_policy(policy)
        self._started = False

    def eligible(self, servable) -> List[Worker]:
        return [w for w in self.workers if servable.supports_target(w.target)]

    def dispatch(self, servable, deployment, requests) -> Worker:
        workers = self.eligible(servable)
        if not workers:
            raise RuntimeError(
                f"no worker in the pool supports {servable.name!r} "
                f"(targets {servable.supported_targets})"
            )
        worker = self.policy.choose(workers, len(requests))
        worker.submit((deployment, requests))
        return worker

    def start(self, execute: Callable[[Worker, object, list], float]) -> None:
        if self._started:
            return
        for worker in self.workers:
            worker.start(execute)
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        for worker in self.workers:
            worker.stop()
        self._started = False

    def __repr__(self) -> str:
        return f"WorkerPool({[w.name for w in self.workers]}, policy={self.policy.name})"
