"""Serving metrics: latency histograms, throughput, batch shape and SLOs.

The collectors are deliberately lightweight (one lock, a few counters and
constant-memory log-linear histograms) so that recording stays negligible
next to even a single-sample inference.  :meth:`ServingMetrics.snapshot`
folds in the compiled-program cache statistics and per-worker counters to
produce one immutable :class:`ServerStats` view, which is what
:meth:`repro.serving.server.InferenceServer.stats` returns.

Latency quantiles are derived from
:class:`~repro.serving.observability.LatencyHistogram` — mergeable
log-linear histograms with exact counts and bounded relative error
(default ±5%) — instead of a fixed-size sample window.  A raw window
silently forgets everything older than its last N samples, so a burst
would evict the steady-state tail and bias p99 for as long as the burst
fills the window; histograms keep *every* observation's bucket, so the
reported quantiles cover the whole interval at constant memory.  The
serialized histograms ride along in ``to_dict()`` (``latency_histogram``
and ``model_stats[name]["histograms"]``) for remote aggregation, the
Prometheus exposition and ``tools/scrape_stats.py`` quantile thresholds.

Request latency is split per deployment into its two components:

* **queue wait** — enqueue until a worker thread starts executing the
  request's batch (micro-batching wait + fair-scheduler queueing + worker
  FIFO time), and
* **execute** — the batch's time inside the worker (program execution
  plus postprocess/slice).

Each deployment may carry an optional **SLO threshold**: served requests
whose end-to-end latency exceeds it are counted in
``model_stats[name]["slo_violations"]`` (deadline sheds are accounted
separately in ``deadline_exceeded``).

Long-running servers report per-interval numbers with the reset idiom::

    stats = server.stats()       # publish the interval snapshot
    server.reset_stats()         # start the next interval at zero

Every mutable collector lives behind a single lock and :meth:`snapshot`
acquires it exactly once, so a snapshot taken under concurrent writers is
internally consistent (no torn request/latency pairs).
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Optional

from repro.serving.observability.histogram import LatencyHistogram

__all__ = ["ServerStats", "ServingMetrics", "merge_server_stats", "percentile"]


def percentile(values: Iterable[float], p: float) -> float:
    """The p-th percentile (nearest-rank) of a collection of samples.

    The exact-samples reference the histogram quantiles are tested
    against; still used wherever the full sample set is at hand.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class ServerStats:
    """An immutable snapshot of one server's activity.

    Latencies are request latencies — enqueue to result, so they include
    the micro-batching wait — in milliseconds.  ``deadline_exceeded``
    counts requests shed with :class:`~repro.serving.batching
    .DeadlineExceeded` before execution (not included in ``requests`` or
    ``failures``), ``scheduler_stats`` carries the
    :class:`~repro.serving.scheduler.FairScheduler` per-lane view
    (weight, served batches, pending batches per deployment), and
    ``model_stats`` holds the per-deployment queue-wait/execute split
    plus the SLO threshold and violation count (see
    :class:`ServingMetrics`).
    """

    requests: int = 0
    failures: int = 0
    deadline_exceeded: int = 0
    batches: int = 0
    #: Hot-swaps installed across all deployments this interval (online
    #: re-training or re-registration under a live name); the per-model
    #: split — current version, swap count, per-version request totals —
    #: lives in ``model_stats``.
    swaps: int = 0
    #: Stage/parallel-map executions served by the batched route across
    #: all deployments, and the executions that silently degraded to the
    #: per-row loop — the fleet-level view of the batch-native execution
    #: plane (per-deployment splits live in ``model_stats``).
    vectorized_stages: int = 0
    fallback_stages: int = 0
    mean_batch_size: float = 0.0
    batch_size_histogram: dict = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    mean_latency_ms: float = 0.0
    throughput_rps: float = 0.0
    uptime_seconds: float = 0.0
    slo_violations: int = 0
    model_stats: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_warm_hits: int = 0
    cache_hit_rate: float = 0.0
    elided_transfers: int = 0
    worker_stats: dict = field(default_factory=dict)
    scheduler_stats: dict = field(default_factory=dict)
    #: The serialized log-linear latency histogram behind the percentile
    #: fields (see :class:`~repro.serving.observability.LatencyHistogram`
    #: ``.to_dict()``) — mergeable across replicas, and the source the
    #: Prometheus exposition renders its ``_bucket`` series from.
    latency_histogram: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-serializable ``dict`` view (used by the network transport).

        ``batch_size_histogram`` keys become strings — JSON objects cannot
        carry integer keys.
        """
        data = asdict(self)
        data["batch_size_histogram"] = {
            str(size): count for size, count in self.batch_size_histogram.items()
        }
        return data

    def __repr__(self) -> str:
        return (
            f"ServerStats(requests={self.requests}, batches={self.batches}, "
            f"mean_batch={self.mean_batch_size:.1f}, p50={self.latency_p50_ms:.2f}ms, "
            f"p99={self.latency_p99_ms:.2f}ms, {self.throughput_rps:.0f} req/s, "
            f"shed={self.deadline_exceeded}, slo_violations={self.slo_violations}, "
            f"cache={self.cache_hits}/{self.cache_hits + self.cache_misses})"
        )


#: Top-level ServerStats fields merged by summation across replicas.
_SUM_FIELDS = (
    "requests",
    "failures",
    "deadline_exceeded",
    "batches",
    "swaps",
    "vectorized_stages",
    "fallback_stages",
    "slo_violations",
    "cache_hits",
    "cache_misses",
    "cache_warm_hits",
    "elided_transfers",
)

#: Per-model fields merged by summation.
_MODEL_SUM_FIELDS = (
    "requests",
    "slo_violations",
    "vectorized_stages",
    "fallback_stages",
    "swaps",
)

#: Per-(stage, bucket) profile slot fields merged by summation.
_PROFILE_SUM_FIELDS = ("executions", "seconds", "gate_seconds", "vectorized", "fallbacks")


def _merge_histograms(dicts: list) -> LatencyHistogram:
    """Fold serialized histogram dicts into one (empty dicts skipped)."""
    merged = None
    for data in dicts:
        if not data:
            continue
        histogram = LatencyHistogram.from_dict(data)
        merged = histogram if merged is None else merged.merge(histogram)
    return merged if merged is not None else LatencyHistogram()


def merge_server_stats(snapshots: Iterable) -> dict:
    """Merge per-replica :class:`ServerStats` snapshots into one group view.

    The input is what a replica group hands out — one snapshot per
    replica, as :class:`ServerStats` instances or their ``to_dict()``
    JSON forms (``None`` entries, from dead or unreachable replicas, are
    skipped).  The output is a ``to_dict()``-shaped dict:

    * **Counters sum.**  Requests, failures, sheds, batches, swaps,
      vectorized/fallback stages, SLO violations, cache counters and
      elided transfers are totals across the group.
    * **Histograms merge, percentiles recompute.**  The log-linear
      latency histograms are mergeable by construction; group p50/p95/p99
      come from the *merged* histogram — never from averaging per-replica
      percentiles, which is statistically meaningless.
    * **Means re-weight.**  ``mean_latency_ms`` is request-weighted,
      ``mean_batch_size`` batch-weighted.
    * **Throughput sums, uptime maxes.**  Replicas serve concurrently,
      so group rps is the sum over the longest-observed window.
    * **Model stats merge per name** (version = max across replicas —
      the group-converged version; ``requests_by_version`` summed per
      version, so a stale replica's old-version traffic stays visible).
    * **Worker and scheduler stats are namespaced**, not merged:
      ``worker_stats["r0/cpu-0"]`` keeps each replica's workers
      distinguishable, because summing busy-time across distinct worker
      threads would fabricate a worker that does not exist.

    This is what ``tools/scrape_stats.py --replica`` emits and what the
    replica-scaling benchmark gates read.
    """
    dicts = [
        snapshot.to_dict() if hasattr(snapshot, "to_dict") else snapshot
        for snapshot in snapshots
        if snapshot is not None
    ]
    merged: dict = {field_name: 0 for field_name in _SUM_FIELDS}
    merged["replicas"] = len(dicts)
    merged["throughput_rps"] = 0.0
    merged["uptime_seconds"] = 0.0
    merged["batch_size_histogram"] = {}
    latency_sum = 0.0  # request-weighted, in ms
    samples_in_batches = 0.0
    models: Dict[str, dict] = {}
    worker_stats: dict = {}
    scheduler_stats: dict = {}
    for index, stats in enumerate(dicts):
        for field_name in _SUM_FIELDS:
            merged[field_name] += stats.get(field_name, 0)
        merged["throughput_rps"] += stats.get("throughput_rps", 0.0)
        merged["uptime_seconds"] = max(merged["uptime_seconds"], stats.get("uptime_seconds", 0.0))
        latency_sum += stats.get("mean_latency_ms", 0.0) * stats.get("requests", 0)
        samples_in_batches += stats.get("mean_batch_size", 0.0) * stats.get("batches", 0)
        for size, count in (stats.get("batch_size_histogram") or {}).items():
            key = str(size)
            merged["batch_size_histogram"][key] = (
                merged["batch_size_histogram"].get(key, 0) + count
            )
        for name, model in (stats.get("model_stats") or {}).items():
            models.setdefault(name, []).append(model)
        for name, worker in (stats.get("worker_stats") or {}).items():
            worker_stats[f"r{index}/{name}"] = worker
        scheduler = stats.get("scheduler_stats")
        if scheduler:
            scheduler_stats[f"r{index}"] = scheduler
    requests = merged["requests"]
    batches = merged["batches"]
    merged["mean_latency_ms"] = latency_sum / requests if requests else 0.0
    merged["mean_batch_size"] = samples_in_batches / batches if batches else 0.0
    cache_lookups = merged["cache_hits"] + merged["cache_misses"]
    merged["cache_hit_rate"] = merged["cache_hits"] / cache_lookups if cache_lookups else 0.0
    latency_hist = _merge_histograms([stats.get("latency_histogram") for stats in dicts])
    merged["latency_histogram"] = latency_hist.to_dict()
    merged["latency_p50_ms"] = latency_hist.percentile(50) * 1e3
    merged["latency_p95_ms"] = latency_hist.percentile(95) * 1e3
    merged["latency_p99_ms"] = latency_hist.percentile(99) * 1e3
    merged["model_stats"] = {
        name: _merge_model_stats(views) for name, views in models.items()
    }
    merged["worker_stats"] = worker_stats
    merged["scheduler_stats"] = scheduler_stats
    return merged


def _merge_model_stats(views: list) -> dict:
    """Merge one model's per-replica ``model_stats`` views."""
    out: dict = {field_name: 0 for field_name in _MODEL_SUM_FIELDS}
    queue_wait_sum = 0.0
    execute_sum = 0.0
    versions = [view.get("version") for view in views if view.get("version") is not None]
    slos = [view.get("slo_ms") for view in views if view.get("slo_ms") is not None]
    out["version"] = max(versions) if versions else None
    out["slo_ms"] = max(slos) if slos else None
    out["requests_by_version"] = {}
    out["stage_fallback_reasons"] = {}
    out["stage_profile"] = {}
    out["residency"] = None
    histograms = {"latency": [], "queue_wait": [], "execute": []}
    for view in views:
        for field_name in _MODEL_SUM_FIELDS:
            out[field_name] += view.get(field_name, 0)
        view_requests = view.get("requests", 0)
        queue_wait_sum += view.get("mean_queue_wait_ms", 0.0) * view_requests
        execute_sum += view.get("mean_execute_ms", 0.0) * view_requests
        for version, count in (view.get("requests_by_version") or {}).items():
            out["requests_by_version"][version] = (
                out["requests_by_version"].get(version, 0) + count
            )
        out["stage_fallback_reasons"].update(view.get("stage_fallback_reasons") or {})
        for key, slot in (view.get("stage_profile") or {}).items():
            merged_slot = out["stage_profile"].get(key)
            if merged_slot is None:
                merged_slot = out["stage_profile"][key] = {
                    "stage": slot.get("stage"),
                    "bucket": slot.get("bucket"),
                    **{field_name: 0 for field_name in _PROFILE_SUM_FIELDS},
                }
            for field_name in _PROFILE_SUM_FIELDS:
                merged_slot[field_name] += slot.get(field_name, 0)
        if out["residency"] is None and view.get("residency") is not None:
            out["residency"] = dict(view["residency"])
        for phase, series in histograms.items():
            series.append((view.get("histograms") or {}).get(phase))
    for slot in out["stage_profile"].values():
        executions = slot.get("executions", 0)
        slot["mean_ms"] = (slot.get("seconds", 0.0) / executions * 1e3) if executions else 0.0
    requests = out["requests"]
    out["mean_queue_wait_ms"] = queue_wait_sum / requests if requests else 0.0
    out["mean_execute_ms"] = execute_sum / requests if requests else 0.0
    merged_histograms = {
        phase: _merge_histograms(series) for phase, series in histograms.items()
    }
    out["histograms"] = {
        phase: histogram.to_dict() for phase, histogram in merged_histograms.items()
    }
    out["latency_p50_ms"] = merged_histograms["latency"].percentile(50) * 1e3
    out["latency_p95_ms"] = merged_histograms["latency"].percentile(95) * 1e3
    out["latency_p99_ms"] = merged_histograms["latency"].percentile(99) * 1e3
    out["queue_wait_p50_ms"] = merged_histograms["queue_wait"].percentile(50) * 1e3
    out["queue_wait_p95_ms"] = merged_histograms["queue_wait"].percentile(95) * 1e3
    out["execute_p50_ms"] = merged_histograms["execute"].percentile(50) * 1e3
    out["execute_p95_ms"] = merged_histograms["execute"].percentile(95) * 1e3
    return out


class _ModelCollector:
    """Per-deployment latency-split collectors (guarded by the owner's lock)."""

    __slots__ = (
        "requests",
        "latencies",
        "queue_waits",
        "executes",
        "queue_wait_sum",
        "execute_sum",
        "slo_seconds",
        "slo_violations",
        "vectorized_stages",
        "fallback_stages",
        "stage_fallback_reasons",
        "stage_profile",
        "version",
        "swaps",
        "requests_by_version",
        "residency",
    )

    def __init__(self):
        self.requests = 0
        # Constant-memory mergeable histograms per latency phase; the
        # exact sums ride alongside so the means carry no bucket error.
        self.latencies = LatencyHistogram()
        self.queue_waits = LatencyHistogram()
        self.executes = LatencyHistogram()
        self.queue_wait_sum = 0.0
        self.execute_sum = 0.0
        self.slo_seconds: Optional[float] = None
        self.slo_violations = 0
        # Versioned hot-swap accounting: the deployment version currently
        # serving, how many swaps landed this interval, and how many
        # requests each version served (keys stringified in view() so the
        # snapshot stays JSON-serializable).
        self.version: Optional[int] = None
        self.swaps = 0
        self.requests_by_version: Counter = Counter()
        # Batch-native execution plane accounting: how many stage /
        # parallel-map executions of this deployment's programs took the
        # vectorized route vs fell back to the per-row loop, plus the
        # last fallback reason per stage label.
        self.vectorized_stages = 0
        self.fallback_stages = 0
        self.stage_fallback_reasons: dict = {}
        # Per-(stage, batch bucket) execute-time breakdown, folded from
        # the executor's profiling hooks after every batch: wall seconds,
        # gate-check seconds and the vectorized/fallback split per stage
        # label and bucket size.
        self.stage_profile: dict = {}
        # Packed class-memory residency: the deployment's resident
        # packed bytes vs the unpacked float source bytes (see
        # ``Deployment.residency()``); ``None`` until a packed-storage
        # deployment is installed.
        self.residency: Optional[dict] = None

    def reset(self) -> None:
        self.requests = 0
        self.latencies.clear()
        self.queue_waits.clear()
        self.executes.clear()
        self.queue_wait_sum = 0.0
        self.execute_sum = 0.0
        self.slo_violations = 0  # the threshold itself survives a reset
        self.vectorized_stages = 0
        self.fallback_stages = 0
        self.stage_fallback_reasons = {}
        self.stage_profile = {}
        self.swaps = 0  # the current version itself survives a reset
        self.requests_by_version.clear()
        # residency describes what is installed, not interval activity —
        # like the SLO threshold and version, it survives a reset.

    def view(self) -> dict:
        requests = self.requests
        profile = {}
        for key, slot in self.stage_profile.items():
            row = dict(slot)
            executions = row.get("executions", 0)
            row["mean_ms"] = (row.get("seconds", 0.0) / executions * 1e3) if executions else 0.0
            profile[key] = row
        return {
            "requests": requests,
            "queue_wait_p50_ms": self.queue_waits.percentile(50) * 1e3,
            "queue_wait_p95_ms": self.queue_waits.percentile(95) * 1e3,
            "execute_p50_ms": self.executes.percentile(50) * 1e3,
            "execute_p95_ms": self.executes.percentile(95) * 1e3,
            "latency_p50_ms": self.latencies.percentile(50) * 1e3,
            "latency_p95_ms": self.latencies.percentile(95) * 1e3,
            "latency_p99_ms": self.latencies.percentile(99) * 1e3,
            "mean_queue_wait_ms": (self.queue_wait_sum / requests * 1e3) if requests else 0.0,
            "mean_execute_ms": (self.execute_sum / requests * 1e3) if requests else 0.0,
            "slo_ms": self.slo_seconds * 1e3 if self.slo_seconds is not None else None,
            "slo_violations": self.slo_violations,
            "vectorized_stages": self.vectorized_stages,
            "fallback_stages": self.fallback_stages,
            "stage_fallback_reasons": dict(self.stage_fallback_reasons),
            "stage_profile": profile,
            "version": self.version,
            "swaps": self.swaps,
            "residency": dict(self.residency) if self.residency is not None else None,
            "requests_by_version": {
                str(version): count for version, count in sorted(self.requests_by_version.items())
            },
            # Serialized histograms (seconds): mergeable across replicas
            # and resolvable by scrape_stats quantile paths, e.g.
            # ``model_stats.<name>.histograms.latency.p99_ms``.
            "histograms": {
                "latency": self.latencies.to_dict(),
                "queue_wait": self.queue_waits.to_dict(),
                "execute": self.executes.to_dict(),
            },
        }


class ServingMetrics:
    """Mutable, thread-safe collectors behind :class:`ServerStats`."""

    def __init__(self, latency_window: int = 8192):
        self._lock = threading.Lock()
        #: Retained for API compatibility with the sample-window era; the
        #: histogram collectors are constant-memory regardless.
        self.latency_window = latency_window
        self._latency_hist = LatencyHistogram()
        self._latency_sum = 0.0
        self._batch_sizes = Counter()
        self._models: Dict[str, _ModelCollector] = {}
        self.requests = 0
        self.failures = 0
        self.deadline_exceeded = 0
        self.batches = 0
        self.samples_in_batches = 0
        self._started = time.monotonic()

    # -- configuration ------------------------------------------------------------
    def set_slo(self, model: str, slo_ms: Optional[float]) -> None:
        """Set (or clear, with ``None``) one deployment's latency SLO."""
        with self._lock:
            collector = self._model(model)
            collector.slo_seconds = None if slo_ms is None else slo_ms / 1e3

    def slo_ms(self, model: str) -> Optional[float]:
        """One deployment's current SLO threshold in ms (``None`` if unset)."""
        with self._lock:
            collector = self._models.get(model)
            if collector is None or collector.slo_seconds is None:
                return None
            return collector.slo_seconds * 1e3

    def _model(self, name: str) -> _ModelCollector:
        """Caller must hold the lock."""
        collector = self._models.get(name)
        if collector is None:
            collector = self._models[name] = _ModelCollector()
        return collector

    # -- recording ----------------------------------------------------------------
    def record_request(
        self,
        latency_seconds: float,
        model: Optional[str] = None,
        queue_wait_seconds: Optional[float] = None,
        execute_seconds: Optional[float] = None,
        version: Optional[int] = None,
    ) -> bool:
        """Account one served request, optionally with its latency split.

        ``version`` attributes the request to the deployment version that
        executed it (``model_stats[name]["requests_by_version"]``) — the
        ledger that shows a hot-swap's traffic cutover, including the
        in-flight tail the old version drains after the swap lands.

        Returns whether the request violated its deployment's SLO, so the
        caller (the broker's resolve path) can mark the request's trace
        for tail-based retention without re-deriving the threshold.
        """
        violated = False
        with self._lock:
            self.requests += 1
            self._latency_hist.record(latency_seconds)
            self._latency_sum += latency_seconds
            if model is None:
                return violated
            collector = self._model(model)
            collector.requests += 1
            collector.latencies.record(latency_seconds)
            if version is not None:
                if collector.version is None or version > collector.version:
                    collector.version = version
                collector.requests_by_version[int(version)] += 1
            if queue_wait_seconds is not None:
                collector.queue_waits.record(queue_wait_seconds)
                collector.queue_wait_sum += queue_wait_seconds
            if execute_seconds is not None:
                collector.executes.record(execute_seconds)
                collector.execute_sum += execute_seconds
            if collector.slo_seconds is not None and latency_seconds > collector.slo_seconds:
                collector.slo_violations += 1
                violated = True
        return violated

    def record_stage_counters(
        self,
        model: str,
        vectorized: int,
        fallbacks: int,
        reasons: Optional[dict] = None,
    ) -> None:
        """Account one batch execution's vectorized-vs-fallback stage split.

        Fed from ``ExecutionReport.notes`` after every batch a worker runs,
        so operators can see — per deployment — when a model's batched
        route silently degrades to the per-row loop (and why).
        """
        if not vectorized and not fallbacks:
            return
        with self._lock:
            collector = self._model(model)
            collector.vectorized_stages += int(vectorized)
            collector.fallback_stages += int(fallbacks)
            if reasons:
                collector.stage_fallback_reasons.update(reasons)

    def record_stage_profile(self, model: str, bucket: int, entries: Iterable[dict]) -> None:
        """Fold one batch's executor profile into per-(stage, bucket) slots.

        ``entries`` are the :class:`~repro.backends.executor
        .HostStageExecutor` profiling hook's records (one per stage /
        parallel-map execution: wall seconds, gate-check seconds, route);
        ``bucket`` is the padded batch bucket the batch compiled against.
        The accumulated breakdown surfaces in
        ``model_stats[name]["stage_profile"]`` and as the Prometheus
        ``stage_seconds_total`` family.
        """
        entries = list(entries or ())
        if not entries:
            return
        with self._lock:
            collector = self._model(model)
            for entry in entries:
                stage = str(entry.get("stage", "?"))
                key = f"{stage}@b{int(bucket)}"
                slot = collector.stage_profile.get(key)
                if slot is None:
                    slot = collector.stage_profile[key] = {
                        "stage": stage,
                        "bucket": int(bucket),
                        "executions": 0,
                        "seconds": 0.0,
                        "gate_seconds": 0.0,
                        "vectorized": 0,
                        "fallbacks": 0,
                    }
                slot["executions"] += 1
                slot["seconds"] += float(entry.get("seconds", 0.0))
                slot["gate_seconds"] += float(entry.get("gate_seconds", 0.0))
                route = entry.get("route")
                if route == "vectorized":
                    slot["vectorized"] += 1
                elif route in ("fallback", "per-row"):
                    slot["fallbacks"] += 1

    def record_swap(self, model: str, version: int) -> None:
        """Account one hot-swap: ``model`` now serves ``version``.

        Recorded when the broker installs the replacement queue, so a
        snapshot that shows the new version may still show in-flight
        requests settling against the previous one (``requests_by_version``
        keeps both attributions).
        """
        with self._lock:
            collector = self._model(model)
            collector.swaps += 1
            if collector.version is None or version > collector.version:
                collector.version = version

    def record_residency(self, model: str, residency: Optional[dict]) -> None:
        """Record (or clear, with ``None``) a deployment's packed residency.

        Called by the broker whenever a deployment is installed — initial
        registration and every hot-swap — so the snapshot always describes
        the constants currently resident.  A swap that rebuilds the packed
        class memory from updated float state replaces the whole document.
        """
        with self._lock:
            collector = self._model(model)
            collector.residency = dict(residency) if residency is not None else None

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.failures += count

    def record_expired(self, count: int = 1) -> None:
        """Account requests shed with ``DeadlineExceeded`` before execution."""
        with self._lock:
            self.deadline_exceeded += count

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.samples_in_batches += size
            self._batch_sizes[size] += 1

    # -- per-interval reporting ---------------------------------------------------
    def reset(self) -> None:
        """Zero every counter and sample window (SLO thresholds survive).

        Restarts the uptime/throughput clock, so ``snapshot()`` after a
        reset reports rates over the new interval only.  For
        scrape-then-reset reporting prefer ``snapshot(reset=True)``,
        which does both under one lock acquisition — no request can land
        between the snapshot and the reset and vanish from every
        interval.
        """
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        """Caller must hold the lock."""
        self._latency_hist.clear()
        self._latency_sum = 0.0
        self._batch_sizes.clear()
        self.requests = 0
        self.failures = 0
        self.deadline_exceeded = 0
        self.batches = 0
        self.samples_in_batches = 0
        for collector in self._models.values():
            collector.reset()
        self._started = time.monotonic()

    # -- snapshot -----------------------------------------------------------------
    def snapshot(
        self,
        cache=None,
        workers: Optional[Iterable] = None,
        scheduler=None,
        reset: bool = False,
    ) -> ServerStats:
        """Produce an immutable snapshot, optionally folding in cache, worker
        and fair-scheduler state.

        The metrics lock is acquired exactly once, so the request counters,
        latency windows and per-model splits are mutually consistent even
        under concurrent writers; cache/worker/scheduler state is sampled
        after release (each has its own synchronization).

        ``reset=True`` zeroes the window under the *same* lock acquisition
        (atomic scrape-then-reset): requests recorded after the snapshot
        land in the next interval instead of disappearing between two
        separate ``snapshot()`` / ``reset()`` calls.
        """
        with self._lock:
            uptime = time.monotonic() - self._started
            latency_hist = self._latency_hist.copy()
            requests = self.requests
            mean_batch = self.samples_in_batches / self.batches if self.batches else 0.0
            mean_latency = self._latency_sum / requests if requests else 0.0
            model_stats = {name: collector.view() for name, collector in self._models.items()}
            stats = dict(
                requests=requests,
                failures=self.failures,
                deadline_exceeded=self.deadline_exceeded,
                batches=self.batches,
                mean_batch_size=mean_batch,
                batch_size_histogram=dict(self._batch_sizes),
                latency_p50_ms=latency_hist.percentile(50) * 1e3,
                latency_p95_ms=latency_hist.percentile(95) * 1e3,
                latency_p99_ms=latency_hist.percentile(99) * 1e3,
                latency_histogram=latency_hist.to_dict(),
                mean_latency_ms=mean_latency * 1e3,
                throughput_rps=requests / uptime if uptime > 0 else 0.0,
                uptime_seconds=uptime,
                slo_violations=sum(c.slo_violations for c in self._models.values()),
                swaps=sum(c.swaps for c in self._models.values()),
                vectorized_stages=sum(c.vectorized_stages for c in self._models.values()),
                fallback_stages=sum(c.fallback_stages for c in self._models.values()),
                model_stats=model_stats,
            )
            if reset:
                self._reset_locked()
        if cache is not None:
            stats.update(
                cache_hits=cache.stats.hits,
                cache_misses=cache.stats.misses,
                cache_warm_hits=cache.stats.warm_hits,
                cache_hit_rate=cache.stats.hit_rate,
            )
        if workers is not None:
            worker_stats = {}
            elided = 0
            for worker in workers:
                worker_stats[worker.name] = worker.stats()
                elided += worker_stats[worker.name].get("elided_transfers", 0)
            stats.update(worker_stats=worker_stats, elided_transfers=elided)
        if scheduler is not None:
            stats.update(scheduler_stats=scheduler.stats())
        return ServerStats(**stats)
