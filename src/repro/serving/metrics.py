"""Serving metrics: latency percentiles, throughput and batch shape.

The collectors are deliberately lightweight (a lock, a few counters and a
bounded latency window) so that recording stays negligible next to even a
single-sample inference.  :meth:`ServingMetrics.snapshot` folds in the
compiled-program cache statistics and per-worker counters to produce one
immutable :class:`ServerStats` view, which is what
:meth:`repro.serving.server.InferenceServer.stats` returns.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["ServerStats", "ServingMetrics", "percentile"]


def percentile(values: Iterable[float], p: float) -> float:
    """The p-th percentile (nearest-rank) of a collection of samples."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class ServerStats:
    """An immutable snapshot of one server's activity.

    Latencies are request latencies — enqueue to result, so they include
    the micro-batching wait — in milliseconds.  ``deadline_exceeded``
    counts requests shed with :class:`~repro.serving.batching
    .DeadlineExceeded` before execution (not included in ``requests`` or
    ``failures``), and ``scheduler_stats`` carries the
    :class:`~repro.serving.scheduler.FairScheduler` per-lane view
    (weight, served batches, pending batches per deployment).
    """

    requests: int = 0
    failures: int = 0
    deadline_exceeded: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    batch_size_histogram: dict = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    mean_latency_ms: float = 0.0
    throughput_rps: float = 0.0
    uptime_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    elided_transfers: int = 0
    worker_stats: dict = field(default_factory=dict)
    scheduler_stats: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"ServerStats(requests={self.requests}, batches={self.batches}, "
            f"mean_batch={self.mean_batch_size:.1f}, p50={self.latency_p50_ms:.2f}ms, "
            f"p99={self.latency_p99_ms:.2f}ms, {self.throughput_rps:.0f} req/s, "
            f"shed={self.deadline_exceeded}, "
            f"cache={self.cache_hits}/{self.cache_hits + self.cache_misses})"
        )


class ServingMetrics:
    """Mutable, thread-safe collectors behind :class:`ServerStats`."""

    def __init__(self, latency_window: int = 8192):
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=latency_window)
        self._latency_sum = 0.0
        self._batch_sizes = Counter()
        self.requests = 0
        self.failures = 0
        self.deadline_exceeded = 0
        self.batches = 0
        self.samples_in_batches = 0
        self._started = time.monotonic()

    # -- recording ----------------------------------------------------------------
    def record_request(self, latency_seconds: float) -> None:
        with self._lock:
            self.requests += 1
            self._latencies.append(latency_seconds)
            self._latency_sum += latency_seconds

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self.failures += count

    def record_expired(self, count: int = 1) -> None:
        """Account requests shed with ``DeadlineExceeded`` before execution."""
        with self._lock:
            self.deadline_exceeded += count

    def record_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.samples_in_batches += size
            self._batch_sizes[size] += 1

    # -- snapshot -----------------------------------------------------------------
    def snapshot(
        self, cache=None, workers: Optional[Iterable] = None, scheduler=None
    ) -> ServerStats:
        """Produce an immutable snapshot, optionally folding in cache, worker
        and fair-scheduler state."""
        with self._lock:
            uptime = time.monotonic() - self._started
            latencies = list(self._latencies)
            requests = self.requests
            mean_batch = self.samples_in_batches / self.batches if self.batches else 0.0
            mean_latency = self._latency_sum / requests if requests else 0.0
            stats = dict(
                requests=requests,
                failures=self.failures,
                deadline_exceeded=self.deadline_exceeded,
                batches=self.batches,
                mean_batch_size=mean_batch,
                batch_size_histogram=dict(self._batch_sizes),
                latency_p50_ms=percentile(latencies, 50) * 1e3,
                latency_p95_ms=percentile(latencies, 95) * 1e3,
                latency_p99_ms=percentile(latencies, 99) * 1e3,
                mean_latency_ms=mean_latency * 1e3,
                throughput_rps=requests / uptime if uptime > 0 else 0.0,
                uptime_seconds=uptime,
            )
        if cache is not None:
            stats.update(
                cache_hits=cache.stats.hits,
                cache_misses=cache.stats.misses,
                cache_hit_rate=cache.stats.hit_rate,
            )
        if workers is not None:
            worker_stats = {}
            elided = 0
            for worker in workers:
                worker_stats[worker.name] = worker.stats()
                elided += worker_stats[worker.name].get("elided_transfers", 0)
            stats.update(worker_stats=worker_stats, elided_transfers=elided)
        if scheduler is not None:
            stats.update(scheduler_stats=scheduler.stats())
        return ServerStats(**stats)
