"""Mergeable log-linear latency histograms with bounded relative error.

:class:`LatencyHistogram` replaces the raw fixed-size sample windows the
serving metrics used to keep: instead of the last N latencies (which
silently forget everything before a burst, biasing the tail percentiles),
it buckets every observation into geometrically-spaced bins.  Bucket ``i``
covers ``(gamma**(i-1), gamma**i]`` with ``gamma = (1 + a) / (1 - a)`` for
a configured relative accuracy ``a``, so reporting the log-midpoint of a
bucket is within a factor ``1 ± a`` of any value inside it — a quantile
estimate with **bounded relative error**, independent of how many samples
arrived or in what order.

Properties the serving plane relies on:

* **constant memory** — the bucket count is bounded by the dynamic range
  (about 217 sparse buckets cover 1 µs … 1000 s at the default 5%
  accuracy), not by the observation count;
* **exact counts** — ``count`` / ``sum`` / ``min`` / ``max`` are exact,
  so means and totals carry no bucketing error at all;
* **mergeable** — two histograms with the same shape add bucket-wise
  (:meth:`merge`), so per-replica or per-shard stats can aggregate into
  fleet quantiles later without resampling;
* **serializable** — :meth:`to_dict` / :meth:`from_dict` round-trip
  through JSON, which is how histograms cross the serving transport and
  land in ``tools/scrape_stats.py`` threshold expressions.

Values at or below ``min_value`` land in a dedicated underflow bucket
(reported as ``min_value`` at worst); the relative-error guarantee applies
to values above it.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["LatencyHistogram", "DEFAULT_RELATIVE_ERROR"]

#: Default quantile accuracy: estimates are within ±5% of the true value.
DEFAULT_RELATIVE_ERROR = 0.05


class LatencyHistogram:
    """A sparse log-linear histogram over positive measurements.

    Args:
        relative_error: Quantile accuracy bound ``a`` (0 < a < 1): any
            quantile estimate is within a factor ``1 ± a`` of the exact
            sample quantile (for values above ``min_value``).
        min_value: Underflow threshold; observations at or below it share
            one bucket.  Keeps the bucket count bounded for degenerate
            inputs (zeros, sub-microsecond timings).
    """

    __slots__ = (
        "relative_error",
        "min_value",
        "_gamma",
        "_log_gamma",
        "_counts",
        "zero_count",
        "count",
        "sum",
        "min",
        "max",
    )

    def __init__(
        self,
        relative_error: float = DEFAULT_RELATIVE_ERROR,
        min_value: float = 1e-6,
    ):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), got {relative_error}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.relative_error = float(relative_error)
        self.min_value = float(min_value)
        self._gamma = (1.0 + self.relative_error) / (1.0 - self.relative_error)
        self._log_gamma = math.log(self._gamma)
        self._counts: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ----------------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value`` (negatives clamp to 0)."""
        if count <= 0:
            return
        value = max(0.0, float(value))
        self.count += count
        self.sum += value * count
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self.min_value:
            self.zero_count += count
            return
        index = self._index(value)
        self._counts[index] = self._counts.get(index, 0) + count

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _index(self, value: float) -> int:
        # Bucket i covers (gamma**(i-1), gamma**i].
        return int(math.ceil(math.log(value) / self._log_gamma - 1e-12))

    def _representative(self, index: int) -> float:
        # Log-midpoint of (gamma**(i-1), gamma**i]: within ±relative_error
        # of every value the bucket can hold.
        return (2.0 * self._gamma ** index) / (self._gamma + 1.0)

    # -- introspection ------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Occupied buckets (the memory footprint), underflow included."""
        return len(self._counts) + (1 if self.zero_count else 0)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:  # an empty histogram is still a histogram
        return True

    # -- quantiles ----------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``), nearest-rank convention.

        Matches :func:`repro.serving.metrics.percentile`'s rank rule on
        the underlying samples, up to the documented bucket error.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        # The extreme ranks map to the exactly-tracked extrema, so the
        # tails of the distribution never suffer bucket rounding at all.
        if rank == 1 and self.min is not None:
            return self.min
        if rank == self.count and self.max is not None:
            return self.max
        seen = self.zero_count
        if rank <= seen:
            value = self.min_value if self.min is None else min(self.min_value, self.min)
            return self._clamp(value)
        for index in sorted(self._counts):
            seen += self._counts[index]
            if rank <= seen:
                return self._clamp(self._representative(index))
        return self._clamp(self.max if self.max is not None else 0.0)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (``0 <= p <= 100``), nearest-rank."""
        return self.quantile(p / 100.0)

    def _clamp(self, value: float) -> float:
        # Exact extrema are tracked, so no estimate needs to leave them.
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    # -- merging ------------------------------------------------------------------
    def compatible(self, other: "LatencyHistogram") -> bool:
        return (
            abs(self.relative_error - other.relative_error) < 1e-12
            and abs(self.min_value - other.min_value) < 1e-18
        )

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s observations into this histogram (in place).

        Both histograms must share bucket shape (same ``relative_error``
        and ``min_value``); merged quantiles keep the same error bound as
        if every observation had been recorded here directly.
        """
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge histograms with different shapes: "
                f"(a={self.relative_error}, min={self.min_value}) vs "
                f"(a={other.relative_error}, min={other.min_value})"
            )
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    # -- exposition ---------------------------------------------------------------
    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ascending, exact.

        Bucket upper bounds are exact bin edges (``gamma**i``), so the
        cumulative counts are *exact* counts of observations ``<= bound``
        — the form Prometheus ``_bucket``/``le`` series expect.  The
        ``+Inf`` bucket is implied by :attr:`count`.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        if self.zero_count:
            running += self.zero_count
            out.append((self.min_value, running))
        for index in sorted(self._counts):
            running += self._counts[index]
            out.append((self._gamma ** index, running))
        return out

    def to_dict(self) -> dict:
        """A JSON-safe form (bucket indices stringified for JSON objects)."""
        return {
            "type": "log-linear",
            "relative_error": self.relative_error,
            "min_value": self.min_value,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zero_count": self.zero_count,
            "buckets": {str(index): count for index, count in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_dict` output (e.g. off the
        wire, or out of a scraped stats document)."""
        hist = cls(
            relative_error=float(data.get("relative_error", DEFAULT_RELATIVE_ERROR)),
            min_value=float(data.get("min_value", 1e-6)),
        )
        hist._counts = {int(index): int(count) for index, count in (data.get("buckets") or {}).items()}
        hist.zero_count = int(data.get("zero_count", 0))
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.min = None if data.get("min") is None else float(data["min"])
        hist.max = None if data.get("max") is None else float(data["max"])
        return hist

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(self.relative_error, self.min_value)
        clone._counts = dict(self._counts)
        clone.zero_count = self.zero_count
        clone.count = self.count
        clone.sum = self.sum
        clone.min = self.min
        clone.max = self.max
        return clone

    def clear(self) -> None:
        self._counts.clear()
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, buckets={self.bucket_count}, "
            f"a={self.relative_error:g}, mean={self.mean:.6g})"
        )
