"""repro.serving.observability — the serving stack's sensory system.

Three pieces, built for the SLO-autotuning work that sits on top:

* :class:`~repro.serving.observability.histogram.LatencyHistogram` —
  mergeable log-linear histograms with exact counts and bounded-relative-
  error quantiles; constant memory per (model, phase), replacing the raw
  sample windows :class:`~repro.serving.metrics.ServingMetrics` used to
  keep.
* :class:`~repro.serving.observability.trace.TraceContext` /
  :class:`~repro.serving.observability.trace.RequestTracer` — per-request
  span chains threaded from the transport through batching, scheduling,
  dispatch and per-stage execution, retained in bounded rings with
  tail-based sampling (errors and SLO violators always kept), exported
  as Chrome trace-event JSON (:func:`chrome_trace`,
  ``tools/trace_dump.py``).
* :func:`~repro.serving.observability.prometheus.render_prometheus` /
  :func:`~repro.serving.observability.prometheus.parse_prometheus_text`
  — the Prometheus text exposition behind the transport's ``metrics`` op
  and ``tools/export_metrics.py``, with a dependency-free lint.
"""

from repro.serving.observability.histogram import DEFAULT_RELATIVE_ERROR, LatencyHistogram
from repro.serving.observability.prometheus import (
    PrometheusSample,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.observability.trace import RequestTracer, Span, TraceContext, chrome_trace

__all__ = [
    "LatencyHistogram",
    "DEFAULT_RELATIVE_ERROR",
    "Span",
    "TraceContext",
    "RequestTracer",
    "chrome_trace",
    "render_prometheus",
    "parse_prometheus_text",
    "PrometheusSample",
]
