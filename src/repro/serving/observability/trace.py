"""Per-request tracing for the serving pipeline.

A :class:`TraceContext` is minted per request at the front end (the
transport's ``infer`` op, or :meth:`RequestBroker.submit` for in-process
callers) and rides the :class:`~repro.serving.batching.InferenceRequest`
through every pipeline stage.  Each stage closes one **contiguous span**
with :meth:`TraceContext.step`: the span starts where the previous one
ended, so the top-level spans tile the request's lifetime exactly —
summing their self-times reproduces the end-to-end latency by
construction, which is what makes a trace trustworthy as a latency
breakdown.

The span chain of a served request::

    queue    enqueue -> the micro-batcher releases the request's batch
    batch    release -> the batch is offered to the fair scheduler
    schedule offer   -> the dispatcher pops the batch from its lane
    dispatch pop     -> a worker thread starts executing the batch
    execute  start   -> program run + postprocess + slice complete
      stage:<label>    per-stage child spans from the executor profile
                       (vectorized-vs-fallback route, gate-check time)
    settle   execute -> the request's future resolves
    transport settle -> the socket front end writes the response
                       (only on traced network requests)

A hot-swap retry (``BatcherClosed`` on submit) records a ``retry`` span
on the *same* trace, so the retried request stays one causal story; a
shed or failed request keeps its partial chain and is marked failed.

Completed traces land in a :class:`RequestTracer` — two bounded rings
with **tail-based sampling**: retention is decided at completion time,
errors and SLO violators are *always* kept (their ring cannot be evicted
by a flood of healthy traces), and healthy traces are down-sampled
1-in-``sample_every``.  Memory stays bounded no matter the request rate.

Export: :func:`chrome_trace` converts trace dicts into the Chrome
trace-event JSON format (load in ``chrome://tracing`` or Perfetto);
``tools/trace_dump.py`` pulls traces over the wire and writes the file.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "TraceContext",
    "RequestTracer",
    "chrome_trace",
    "record_step_shared",
    "record_child_shared",
]

#: Process-unique prefix so trace ids from different serving processes
#: never collide when dumped into one file.
_SESSION_PREFIX = secrets.token_hex(4)
_TRACE_COUNTER = itertools.count(1)


class Span:
    """One named interval inside a trace (monotonic seconds)."""

    __slots__ = ("name", "start", "end", "meta")

    def __init__(self, name: str, start: float, end: float, meta: Optional[dict] = None):
        self.name = name
        self.start = start
        self.end = end
        self.meta = meta or {}

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": self.duration * 1e3,
            "meta": dict(self.meta),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms)"


class TraceContext:
    """The per-request span recorder threaded through the pipeline.

    Spans are recorded with a **cursor**: :meth:`step` closes the span
    from the previous mark to now, so consecutive steps tile the
    request's lifetime with no gaps or overlaps.  Child spans that nest
    inside a step (per-stage execution) are recorded with :meth:`span`
    and do not move the cursor.

    The request moves through the pipeline one stage at a time, so steps
    are naturally serialized; no lock is needed.

    Recording is kept cheap on purpose — tail-based sampling means
    *every* request records its chain even though most are discarded at
    completion, so the record path is on the serving hot path.  Marks
    are appended as raw tuples and :class:`Span` objects (cursor walk
    included) are only materialized lazily for the traces that survive
    retention; the trace id is likewise minted on first use.
    """

    __slots__ = ("model", "started_at", "error", "slo_violated", "owner", "_id", "_marks", "_built")

    #: Mark kinds in the raw record stream.
    _STEP, _CHILD = 0, 1

    def __init__(
        self,
        model: str,
        trace_id: Optional[str] = None,
        started_at: Optional[float] = None,
    ):
        now = time.monotonic() if started_at is None else started_at
        self._id = trace_id
        self.model = model
        self.started_at = now
        self.error: Optional[str] = None
        self.slo_violated = False
        #: The :class:`RequestTracer` responsible for finishing this
        #: trace when its request settles, or ``None`` when the caller
        #: (e.g. the transport front end) owns completion.  Settling a
        #: broker-owned trace in-line at the resolve site is ~1.4us
        #: cheaper per request than a future done-callback.
        self.owner = None
        #: (kind, name, start-or-None, end, meta) raw marks in record order.
        self._marks: list = []
        self._built: Optional[List[Span]] = None

    @property
    def trace_id(self) -> str:
        if self._id is None:
            self._id = f"{_SESSION_PREFIX}-{next(_TRACE_COUNTER):08x}"
        return self._id

    # -- recording ----------------------------------------------------------------
    def step(self, name: str, now: Optional[float] = None, **meta) -> None:
        """Close the contiguous span from the previous mark to ``now``."""
        self._marks.append(
            (TraceContext._STEP, name, None, time.monotonic() if now is None else now, meta or None)
        )
        self._built = None

    def span(self, name: str, start: float, end: float, **meta) -> None:
        """Record an explicit (nested) span without moving the cursor."""
        self._marks.append((TraceContext._CHILD, name, start, end, meta or None))
        self._built = None

    def fail(self, reason: str) -> None:
        """Mark the trace failed (first reason wins)."""
        if self.error is None:
            self.error = str(reason)

    def finish_owned(self) -> None:
        """Finish with the owning tracer, if the broker owns this trace.

        Clears :attr:`owner` first so every settle site can call this
        unconditionally without risking a double finish; a no-op for
        caller-owned traces.
        """
        owner = self.owner
        if owner is not None:
            self.owner = None
            owner.finish(self)


    # -- views --------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """The recorded spans, materialized from the raw marks.

        Steps replay the cursor walk (each closes the interval from the
        previous step's end), children keep their explicit bounds; the
        original record order is preserved.
        """
        if self._built is None:
            cursor = self.started_at
            built: List[Span] = []
            for kind, name, start, end, meta in self._marks:
                if kind == TraceContext._STEP:
                    built.append(Span(name, cursor, end, meta))
                    cursor = end
                else:
                    built.append(Span(name, start, end, meta))
            self._built = built
        return self._built

    @property
    def finished_at(self) -> float:
        return max((mark[3] for mark in self._marks), default=self.started_at)

    @property
    def duration(self) -> float:
        """End-to-end seconds covered by the recorded spans."""
        return max(0.0, self.finished_at - self.started_at)

    def span_names(self) -> List[str]:
        return [span.name for span in self.spans]

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "model": self.model,
            "started_at": self.started_at,
            "duration_ms": self.duration * 1e3,
            "error": self.error,
            "slo_violated": self.slo_violated,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __repr__(self) -> str:
        return (
            f"TraceContext({self.trace_id}, model={self.model!r}, "
            f"spans={self.span_names()}, {self.duration * 1e3:.2f}ms)"
        )


def record_step_shared(traces, name: str, end: float, meta: Optional[dict] = None) -> None:
    """Record one step mark on many traces at once (the batch hot path).

    Every request in a batch crosses a pipeline boundary at the same
    instant, so the broker records ONE immutable mark tuple and appends
    it to each trace — no per-request timestamping, no per-request
    keyword plumbing.  Sharing the tuple (and the meta dict) is safe
    because marks are never mutated; export copies the meta.
    """
    mark = (TraceContext._STEP, name, None, end, meta)
    for trace in traces:
        trace._marks.append(mark)


def record_child_shared(
    traces, name: str, start: float, end: float, meta: Optional[dict] = None
) -> None:
    """Record one nested child mark on many traces at once (see above)."""
    mark = (TraceContext._CHILD, name, start, end, meta)
    for trace in traces:
        trace._marks.append(mark)


class RequestTracer:
    """Bounded trace retention with tail-based sampling.

    Two rings of ``capacity`` traces each: completed traces that failed
    or violated their deployment's SLO always land in the *retained*
    ring; healthy traces are sampled 1-in-``sample_every`` into the
    *sampled* ring.  Keeping the rings separate means a flood of healthy
    traffic can never evict the violations an operator is debugging,
    while total memory stays at most ``2 * capacity`` traces.
    """

    def __init__(self, capacity: int = 512, sample_every: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self._lock = threading.Lock()
        self._sampled: deque = deque(maxlen=self.capacity)
        self._retained: deque = deque(maxlen=self.capacity)
        self._healthy_seen = 0
        #: Lifetime counters (not windowed): traces started / finished /
        #: kept past sampling.
        self.started = 0
        self.finished = 0
        self.kept = 0

    # -- lifecycle of one trace ---------------------------------------------------
    def begin(self, model: str, trace_id: Optional[str] = None) -> TraceContext:
        """Mint the trace context for one request.

        Lock-free: begin/finish run once per request on the serving hot
        path, so the counters are plain increments — bounded-ring
        appends are atomic under the GIL, and a (rare) racy increment
        only drifts the advisory telemetry counters, never the traces.
        """
        self.started += 1
        return TraceContext(model, trace_id=trace_id)

    def finish(self, trace: TraceContext) -> bool:
        """Tail-based retention decision; returns whether the trace was kept."""
        self.finished += 1
        if trace.error is not None or trace.slo_violated:
            self._retained.append(trace)
            self.kept += 1
            return True
        self._healthy_seen += 1
        if (self._healthy_seen - 1) % self.sample_every == 0:
            self._sampled.append(trace)
            self.kept += 1
            return True
        return False

    # -- export -------------------------------------------------------------------
    def traces(self, limit: Optional[int] = None, clear: bool = False) -> List[dict]:
        """Retained traces as JSON-safe dicts, oldest first.

        ``limit`` keeps the most recent N; ``clear`` empties both rings
        after the read (the scrape-then-clear idiom for trace dumps).
        """
        with self._lock:
            items = list(self._retained) + list(self._sampled)
            if clear:
                self._retained.clear()
                self._sampled.clear()
        items.sort(key=lambda trace: trace.started_at)
        if limit is not None and limit >= 0:
            items = items[-int(limit):]
        return [trace.to_dict() for trace in items]

    def clear(self) -> None:
        with self._lock:
            self._retained.clear()
            self._sampled.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._retained) + len(self._sampled)

    def stats(self) -> dict:
        with self._lock:
            return {
                "started": self.started,
                "finished": self.finished,
                "kept": self.kept,
                "buffered": len(self._retained) + len(self._sampled),
                "capacity": self.capacity,
                "sample_every": self.sample_every,
            }

    def __repr__(self) -> str:
        return f"RequestTracer(buffered={len(self)}, capacity={self.capacity})"


def chrome_trace(traces: List[dict]) -> dict:
    """Convert trace dicts into a Chrome trace-event JSON document.

    Each trace becomes one virtual thread of complete (``ph: "X"``)
    events; load the written file in ``chrome://tracing`` or Perfetto.
    Timestamps are the traces' monotonic clocks converted to µs — the
    absolute origin is arbitrary, relative placement is exact.
    """
    events: List[dict] = []
    for tid, trace in enumerate(traces, start=1):
        label = f"{trace.get('model', '?')} {trace.get('trace_id', '')}".strip()
        if trace.get("error"):
            label += " [error]"
        elif trace.get("slo_violated"):
            label += " [slo]"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
        )
        for span in trace.get("spans", ()):
            args: Dict[str, object] = {"trace_id": trace.get("trace_id")}
            args.update(span.get("meta") or {})
            events.append(
                {
                    "name": span["name"],
                    "cat": "serving",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": span["start"] * 1e6,
                    "dur": max(0.0, span["end"] - span["start"]) * 1e6,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
