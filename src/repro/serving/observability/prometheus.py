"""Prometheus text exposition (and an in-tree lint) for serving stats.

:func:`render_prometheus` turns a :meth:`ServerStats.to_dict` document
into the Prometheus text format (version 0.0.4): counters for the
request/batch/cache totals, gauges for the rates, and the serving
latency histograms as ``_bucket`` / ``_sum`` / ``_count`` series with
cumulative ``le`` labels — exact counts straight from the log-linear
histograms' bin edges, per model and labelled with the deployment
version.  The ``metrics`` transport op returns this text, and
``tools/export_metrics.py`` snapshots or serves it over HTTP.

:func:`parse_prometheus_text` is a dependency-free lint of that format
(CI runs it against the bench server's scrape): every sample line must
parse, every family must declare a ``# TYPE``, and histogram bucket
series must be cumulative and consistent with their ``_count``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.serving.observability.histogram import LatencyHistogram

__all__ = ["render_prometheus", "parse_prometheus_text", "PrometheusSample"]

DEFAULT_NAMESPACE = "hdc_serving"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'\s*(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


def _escape(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Optional[dict]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels.items())
    return "{" + inner + "}"


def _value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return format(value, ".10g")


class _Writer:
    """Accumulates one exposition document, one family at a time."""

    def __init__(self, namespace: str):
        self.namespace = namespace
        self.lines: List[str] = []

    def family(self, name: str, mtype: str, help_text: str) -> str:
        full = f"{self.namespace}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {mtype}")
        return full

    def sample(self, name: str, labels: Optional[dict], value: float) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_value(value)}")

    def scalar(self, name: str, mtype: str, help_text: str, value: float) -> None:
        self.sample(self.family(name, mtype, help_text), None, value)

    def histogram(
        self, name: str, help_text: str, series: List[Tuple[dict, dict]]
    ) -> None:
        """One histogram family from ``(labels, serialized_histogram)`` pairs."""
        full = self.family(name, "histogram", help_text)
        for labels, data in series:
            hist = LatencyHistogram.from_dict(data)
            for bound, cumulative in hist.cumulative_buckets():
                self.sample(f"{full}_bucket", {**labels, "le": _value(bound)}, cumulative)
            self.sample(f"{full}_bucket", {**labels, "le": "+Inf"}, hist.count)
            self.sample(f"{full}_sum", labels, hist.sum)
            self.sample(f"{full}_count", labels, hist.count)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(stats: dict, namespace: str = DEFAULT_NAMESPACE) -> str:
    """Render one ``ServerStats.to_dict()`` document as Prometheus text."""
    w = _Writer(namespace)

    counters = [
        ("requests_total", "requests", "Requests served"),
        ("failures_total", "failures", "Requests that failed"),
        ("deadline_exceeded_total", "deadline_exceeded", "Requests shed past their deadline"),
        ("batches_total", "batches", "Micro-batches executed"),
        ("swaps_total", "swaps", "Hot-swaps installed"),
        ("slo_violations_total", "slo_violations", "Served requests that exceeded their SLO"),
        ("vectorized_stages_total", "vectorized_stages", "Stage executions on the batched route"),
        ("fallback_stages_total", "fallback_stages", "Stage executions on the per-row fallback"),
        ("cache_hits_total", "cache_hits", "Compile-cache hits"),
        ("cache_misses_total", "cache_misses", "Compile-cache misses"),
        ("cache_warm_hits_total", "cache_warm_hits", "Compile-cache hits off a loaded cache"),
        ("elided_transfers_total", "elided_transfers", "Device transfers skipped by warm sessions"),
    ]
    for name, key, help_text in counters:
        w.scalar(name, "counter", help_text, float(stats.get(key, 0) or 0))

    gauges = [
        ("uptime_seconds", "uptime_seconds", "Seconds since the metrics interval started"),
        ("throughput_rps", "throughput_rps", "Requests per second over the interval"),
        ("mean_batch_size", "mean_batch_size", "Mean micro-batch size"),
        ("cache_hit_rate", "cache_hit_rate", "Compile-cache hit rate"),
    ]
    for name, key, help_text in gauges:
        w.scalar(name, "gauge", help_text, float(stats.get(key, 0.0) or 0.0))

    latency = stats.get("latency_histogram")
    if latency and latency.get("buckets") is not None:
        w.histogram(
            "request_latency_seconds",
            "End-to-end request latency (enqueue to result)",
            [({}, latency)],
        )

    model_stats: dict = stats.get("model_stats") or {}
    if model_stats:
        name_of = {model: {"model": model} for model in sorted(model_stats)}

        full = w.family("model_requests_total", "counter", "Requests served per deployment version")
        for model in sorted(model_stats):
            split = model_stats[model]
            by_version = split.get("requests_by_version") or {}
            if by_version:
                for version in sorted(by_version, key=lambda v: int(v)):
                    w.sample(full, {"model": model, "version": str(version)}, by_version[version])
            else:
                version = split.get("version")
                labels = {"model": model, "version": "" if version is None else str(version)}
                w.sample(full, labels, float(split.get("requests", 0)))

        per_model_counters = [
            ("model_slo_violations_total", "slo_violations", "SLO violations per deployment"),
            ("model_vectorized_stages_total", "vectorized_stages", "Batched-route stages per deployment"),
            ("model_fallback_stages_total", "fallback_stages", "Per-row fallback stages per deployment"),
        ]
        for name, key, help_text in per_model_counters:
            full = w.family(name, "counter", help_text)
            for model in sorted(model_stats):
                w.sample(full, name_of[model], float(model_stats[model].get(key, 0) or 0))

        histogram_families = [
            ("model_request_latency_seconds", "latency", "Per-deployment end-to-end latency"),
            ("model_queue_wait_seconds", "queue_wait", "Per-deployment queue wait (enqueue to worker start)"),
            ("model_execute_seconds", "execute", "Per-deployment execute time inside the worker"),
        ]
        for name, key, help_text in histogram_families:
            series = []
            for model in sorted(model_stats):
                data = (model_stats[model].get("histograms") or {}).get(key)
                if data:
                    series.append((name_of[model], data))
            if series:
                w.histogram(name, help_text, series)

        residency_rows = [
            (model, model_stats[model].get("residency"))
            for model in sorted(model_stats)
            if model_stats[model].get("residency")
        ]
        if residency_rows:
            residency_gauges = [
                (
                    "model_class_memory_bytes",
                    "class_memory_bytes",
                    "Resident packed class-memory bytes per deployment",
                ),
                (
                    "model_class_memory_unpacked_bytes",
                    "class_memory_unpacked_bytes",
                    "Unpacked (float source) class-memory bytes per deployment",
                ),
                (
                    "model_class_memory_shrink_ratio",
                    "shrink_ratio",
                    "Unpacked-to-packed class-memory size ratio per deployment",
                ),
            ]
            for name, key, help_text in residency_gauges:
                full = w.family(name, "gauge", help_text)
                for model, residency in residency_rows:
                    w.sample(full, name_of[model], float(residency.get(key, 0) or 0))

        profile_rows: List[Tuple[dict, dict]] = []
        for model in sorted(model_stats):
            for slot in (model_stats[model].get("stage_profile") or {}).values():
                labels = {
                    "model": model,
                    "stage": str(slot.get("stage", "?")),
                    "bucket": str(slot.get("bucket", "?")),
                }
                profile_rows.append((labels, slot))
        if profile_rows:
            full = w.family(
                "stage_executions_total", "counter", "Stage executions per (model, stage, batch bucket)"
            )
            for labels, slot in profile_rows:
                w.sample(full, labels, float(slot.get("executions", 0)))
            full = w.family(
                "stage_seconds_total", "counter", "Stage wall seconds per (model, stage, batch bucket)"
            )
            for labels, slot in profile_rows:
                w.sample(full, labels, float(slot.get("seconds", 0.0)))
            full = w.family(
                "stage_gate_seconds_total",
                "counter",
                "Bit-identity gate-check seconds per (model, stage, batch bucket)",
            )
            for labels, slot in profile_rows:
                w.sample(full, labels, float(slot.get("gate_seconds", 0.0)))

    worker_stats: dict = stats.get("worker_stats") or {}
    if worker_stats:
        for name, key, help_text in [
            ("worker_batches_total", "batches", "Batches executed per worker"),
            ("worker_samples_total", "samples", "Samples executed per worker"),
            ("worker_busy_seconds_total", "busy_seconds", "Busy seconds per worker"),
        ]:
            if any(key in view for view in worker_stats.values()):
                full = w.family(name, "counter", help_text)
                for worker in sorted(worker_stats):
                    if key in worker_stats[worker]:
                        w.sample(full, {"worker": worker}, float(worker_stats[worker][key] or 0))

    return w.render()


class PrometheusSample:
    """One parsed sample line: ``name{labels} value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"PrometheusSample({self.name}{self.labels!r} {self.value:g})"


def _parse_float(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _family_of(name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample belongs to (histogram suffixes strip)."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_prometheus_text(text: str) -> List[PrometheusSample]:
    """Parse (and lint) a Prometheus text-format document.

    Raises ``ValueError`` on the first structural problem: an unparsable
    line, a sample without a declared ``# TYPE`` family, a non-cumulative
    histogram bucket series, a bucket series without ``+Inf``, or an
    ``+Inf`` bucket disagreeing with its ``_count``.  Returns the parsed
    samples so callers can assert on specific series.
    """
    types: Dict[str, str] = {}
    samples: List[PrometheusSample] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {lineno}: malformed TYPE comment: {raw!r}")
            if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"line {lineno}: unknown metric type {parts[3]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparsable sample line: {raw!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for label in _LABEL_RE.finditer(label_text):
                labels[label.group("key")] = label.group("value")
                consumed = label.end()
            if consumed < len(label_text.rstrip()):
                raise ValueError(f"line {lineno}: malformed labels: {label_text!r}")
        try:
            value = _parse_float(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: non-numeric sample value {match.group('value')!r}"
            ) from None
        name = match.group("name")
        if _family_of(name, types) is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no # TYPE declaration")
        samples.append(PrometheusSample(name, labels, value))

    # Histogram consistency: per label set, buckets cumulative, +Inf == _count.
    for family, ftype in types.items():
        if ftype != "histogram":
            continue
        series: Dict[tuple, List[Tuple[float, float]]] = {}
        counts: Dict[tuple, float] = {}
        for sample in samples:
            if sample.name == f"{family}_bucket":
                key = tuple(sorted((k, v) for k, v in sample.labels.items() if k != "le"))
                series.setdefault(key, []).append(
                    (_parse_float(sample.labels.get("le", "+Inf")), sample.value)
                )
            elif sample.name == f"{family}_count":
                counts[tuple(sorted(sample.labels.items()))] = sample.value
        for key, buckets in series.items():
            buckets.sort(key=lambda pair: pair[0])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ValueError(f"{family}: bucket series {dict(key)} is missing le=\"+Inf\"")
            last = -math.inf
            for bound, cumulative in buckets:
                if cumulative < last:
                    raise ValueError(
                        f"{family}: bucket series {dict(key)} is not cumulative at le={bound:g}"
                    )
                last = cumulative
            expected = counts.get(key)
            if expected is not None and buckets[-1][1] != expected:
                raise ValueError(
                    f"{family}: +Inf bucket {buckets[-1][1]:g} != _count {expected:g} "
                    f"for {dict(key)}"
                )
    return samples
