"""repro.serving — an inference-serving runtime for compiled HDC programs.

The compile-and-run flow of :mod:`repro.backends` is one-shot: trace,
compile, execute, exit.  This package keeps compiled programs *warm* and
pushes a stream of single-sample requests through them:

* :class:`~repro.serving.servable.Servable` — a trained application
  packaged for serving (program factory per micro-batch size, bound
  constants, cache signature); every app in :mod:`repro.apps` has an
  ``as_servable`` adapter.
* :class:`~repro.serving.registry.ModelRegistry` /
  :class:`~repro.serving.registry.Deployment` — named
  (program, target, approximation-config) deployments handing out reusable
  :class:`~repro.backends.BoundProgram` inference handles.
* :class:`~repro.serving.cache.CompiledProgramCache` — thread-safe LRU over
  compiled artifacts so repeat deployments and re-registrations skip
  tracing, transforms, lowering and verification.
* :class:`~repro.serving.batching.MicroBatcher` — coalesces single-sample
  requests into hypermatrix batches under size/time/deadline watermarks,
  with priority lanes, earliest-deadline-first flushing and typed
  :class:`~repro.serving.batching.DeadlineExceeded` shedding.
* :class:`~repro.serving.scheduler.FairScheduler` — weighted round-robin
  with starvation aging across deployments, so one hot model cannot
  monopolize the workers.
* :class:`~repro.serving.scheduler.WorkerPool` — dispatches batches across
  CPU/GPU/ASIC/ReRAM workers (round-robin, least-loaded or latency-aware),
  with per-worker warm ``DeviceSession`` reuse on the accelerators and
  scatter dispatch for sharded deployments.
* :class:`~repro.serving.registry.ShardedDeployment` — splits a class
  memory across N workers and reduces partial similarity scores back into
  predictions, bit-identically to the unsharded program.
* :class:`~repro.serving.metrics.ServingMetrics` /
  :class:`~repro.serving.metrics.ServerStats` — latency percentiles with a
  per-deployment queue-wait/execute split and SLO violation counters,
  throughput, batch-size histogram, cache hit rate, elided transfers.
* :mod:`repro.serving.observability` — mergeable log-linear
  :class:`~repro.serving.observability.LatencyHistogram` collectors behind
  the percentiles, per-request :class:`~repro.serving.observability
  .TraceContext` span chains with tail-sampled retention
  (:class:`~repro.serving.observability.RequestTracer`, Chrome trace-event
  export) and the Prometheus text exposition
  (:func:`~repro.serving.observability.render_prometheus`, the transport's
  ``metrics`` op, ``tools/export_metrics.py``).
* :class:`~repro.serving.update_log.UpdateLog` — append-only, replayable
  log of the labelled mini-batches behind each served version; a restarted
  server replays it into a fresh baseline and rebuilds the exact versions
  bit-identically (and :mod:`repro.bench` feeds serve-while-retraining
  load cells from it, so online-training scenarios replay from a file).
* :class:`~repro.serving.broker.RequestBroker` — the transport-agnostic
  core owning the whole submit→batch→schedule→dispatch→settle path; front
  ends adapt callers onto its future contract.
* :class:`~repro.serving.server.InferenceServer` — the synchronous
  in-process front end (a thin adapter over a broker it owns); see
  :mod:`examples.serving_quickstart`.
* :mod:`repro.serving.transport` — the network front end: an asyncio
  socket server speaking length-prefixed JSON/binary frames plus a
  blocking :class:`~repro.serving.transport.ServingClient`; see
  :mod:`examples.network_serving`.  (Import the subpackage explicitly —
  it is not pulled in here, so broker-only deployments skip asyncio.)
* :mod:`repro.serving.replica` — horizontal scaling: a
  :class:`~repro.serving.replica.ReplicaGroup` of N complete serving
  stacks behind rendezvous routing
  (:class:`~repro.serving.replica.ClientPool`), with group-wide
  versioned hot-swap, ``min_version`` read-your-writes and update-log
  resync of killed replicas.  (Also an explicit import, for the same
  asyncio reason.)
"""

from repro.serving.batching import (
    BatcherClosed,
    DeadlineExceeded,
    InferenceRequest,
    MicroBatcher,
    bucket_for,
    bucket_ladder,
    pad_batch,
)
from repro.serving.broker import RequestBroker
from repro.serving.cache import (
    CacheStats,
    CompiledProgramCache,
    config_key,
    default_cache,
    program_signature,
)
from repro.serving.metrics import ServerStats, ServingMetrics, merge_server_stats, percentile
from repro.serving.observability import (
    LatencyHistogram,
    RequestTracer,
    Span,
    TraceContext,
    chrome_trace,
    parse_prometheus_text,
    render_prometheus,
)
from repro.serving.registry import (
    Deployment,
    ModelRegistry,
    ShardedDeployment,
    StaleVersionError,
    reduce_partials,
)
from repro.serving.scheduler import (
    BatchWork,
    FairScheduler,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    ShardGather,
    Worker,
    WorkerPool,
    make_policy,
)
from repro.serving.servable import (
    ALL_TARGETS,
    HOST_TARGETS,
    NotAppendableError,
    NotUpdatableError,
    Servable,
    ShardSpec,
    servable_signature,
)
from repro.serving.server import InferenceServer
from repro.serving.update_log import (
    AppendRecord,
    UpdateLog,
    UpdateLogError,
    UpdateRecord,
)

__all__ = [
    "InferenceServer",
    "RequestBroker",
    "ModelRegistry",
    "Deployment",
    "ShardedDeployment",
    "StaleVersionError",
    "reduce_partials",
    "Servable",
    "ShardSpec",
    "NotUpdatableError",
    "NotAppendableError",
    "servable_signature",
    "ALL_TARGETS",
    "HOST_TARGETS",
    "CompiledProgramCache",
    "CacheStats",
    "config_key",
    "program_signature",
    "default_cache",
    "MicroBatcher",
    "InferenceRequest",
    "DeadlineExceeded",
    "BatcherClosed",
    "bucket_for",
    "bucket_ladder",
    "pad_batch",
    "Worker",
    "WorkerPool",
    "BatchWork",
    "ShardGather",
    "FairScheduler",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "LatencyAwarePolicy",
    "make_policy",
    "ServingMetrics",
    "ServerStats",
    "merge_server_stats",
    "percentile",
    "LatencyHistogram",
    "TraceContext",
    "Span",
    "RequestTracer",
    "chrome_trace",
    "render_prometheus",
    "parse_prometheus_text",
    "UpdateLog",
    "UpdateRecord",
    "AppendRecord",
    "UpdateLogError",
]
