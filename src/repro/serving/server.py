"""The inference server: registry + micro-batching + worker pool + metrics.

:class:`InferenceServer` turns compiled HDC programs into long-lived,
queryable services::

    from repro.serving import InferenceServer

    server = InferenceServer(workers=("cpu", "cpu"), policy="least_loaded")
    server.register(app.as_servable(rp_matrix, classes))
    with server:
        label = server.infer("hd-classification", features)

Request flow: ``submit`` enqueues a single sample with a per-model
:class:`~repro.serving.batching.MicroBatcher`; a dispatcher thread releases
batches when a watermark trips and routes each to a worker under the pool's
scheduling policy; the worker pads the batch to a power-of-two bucket, runs
it through the deployment's warm :class:`~repro.backends.BoundProgram`
handle (compiled at most once per bucket via the shared program cache), and
resolves the per-request futures with the sliced results.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.ir.dataflow import Target
from repro.serving.batching import MicroBatcher, bucket_for, pad_batch
from repro.serving.metrics import ServerStats, ServingMetrics
from repro.serving.registry import Deployment, ModelRegistry
from repro.serving.scheduler import SchedulingPolicy, Worker, WorkerPool
from repro.serving.servable import Servable
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["InferenceServer"]


class InferenceServer:
    """Serve registered HDC models over a dynamic micro-batching queue."""

    def __init__(
        self,
        workers: Iterable[Union[str, Target, Worker]] = ("cpu",),
        policy: Union[str, SchedulingPolicy] = "least_loaded",
        max_batch_size: int = 64,
        max_wait_seconds: float = 0.002,
        pad_to_buckets: bool = True,
        registry: Optional[ModelRegistry] = None,
        latency_window: int = 8192,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.pool = WorkerPool(workers, policy=policy)
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        #: Pad batches up to power-of-two buckets so at most
        #: ``log2(max_batch_size) + 1`` program variants are compiled per
        #: (model, target); disable to compile exact batch shapes.
        self.pad_to_buckets = pad_to_buckets
        self.metrics = ServingMetrics(latency_window=latency_window)
        self._batchers: dict = {}
        self._dispatchers: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._running = False

    # -- registration -------------------------------------------------------------
    def register(
        self,
        servable: Servable,
        name: Optional[str] = None,
        config: Optional[ApproximationConfig] = None,
        warm: bool = True,
    ) -> Deployment:
        """Register a servable and set up its request queue.

        Warming compiles, for every eligible worker, the single-sample and
        full-batch buckets — the two shapes a freshly started service hits
        first.  Re-registering under an existing name hot-swaps the model:
        requests already queued still resolve against the old deployment,
        new requests see the new one.
        """
        deployment = self.registry.register(
            servable,
            name=name,
            target=self._default_target(servable),
            config=config,
            warm_batch_sizes=(),
        )
        if warm:
            buckets = sorted({1, self._bucket(self.max_batch_size)})
            for worker in self.pool.eligible(servable):
                deployment.warm(buckets, worker=worker)
        with self._lock:
            # Close a replaced batcher so its dispatcher drains the queued
            # requests (against the old deployment) and exits.
            old = self._batchers.get(deployment.name)
            if old is not None:
                old.close()
            self._batchers[deployment.name] = MicroBatcher(
                max_batch_size=self.max_batch_size, max_wait_seconds=self.max_wait_seconds
            )
            if self._running:
                self._start_dispatcher(deployment.name)
        return deployment

    def _default_target(self, servable: Servable) -> Target:
        for worker in self.pool.workers:
            if servable.supports_target(worker.target):
                return worker.target
        raise ValueError(
            f"no worker in the pool supports {servable.name!r} "
            f"(pool={[w.target.value for w in self.pool.workers]}, "
            f"servable targets {servable.supported_targets})"
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "InferenceServer":
        """Start (or restart) workers and per-model dispatchers."""
        with self._lock:
            if self._running:
                return self
            self._running = True
            self.pool.start(self._execute)
            for name, batcher in list(self._batchers.items()):
                if batcher.closed:  # restarted after stop(): reopen the queue
                    self._batchers[name] = MicroBatcher(
                        max_batch_size=self.max_batch_size,
                        max_wait_seconds=self.max_wait_seconds,
                    )
                self._start_dispatcher(name)
        return self

    def _start_dispatcher(self, name: str) -> None:
        thread = threading.Thread(
            target=self._dispatch_loop, args=(name,), name=f"hdc-dispatch-{name}", daemon=True
        )
        self._dispatchers.append(thread)
        thread.start()

    def stop(self) -> None:
        """Drain queued requests, then stop dispatchers and workers."""
        with self._lock:
            if not self._running:
                return
            self._running = False
            batchers = list(self._batchers.values())
            dispatchers = list(self._dispatchers)
            self._dispatchers = []
        for batcher in batchers:
            batcher.close()
        for thread in dispatchers:
            thread.join()
        self.pool.stop()

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request path -------------------------------------------------------------
    def submit(self, model: str, sample: np.ndarray):
        """Enqueue one sample; returns a future resolving to its result."""
        deployment = self.registry.get(model)
        batcher = self._batchers[deployment.name]
        return batcher.submit(deployment.servable.validate_sample(sample))

    def infer(self, model: str, sample: np.ndarray, timeout: Optional[float] = None):
        """Synchronous single-sample inference through the batching queue."""
        return self.submit(model, sample).result(timeout=timeout)

    def infer_many(
        self, model: str, samples: Iterable[np.ndarray], timeout: Optional[float] = None
    ) -> list:
        """Submit many samples, then gather their results in order."""
        futures = [self.submit(model, sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    # -- dispatch / execution -----------------------------------------------------
    def _dispatch_loop(self, name: str) -> None:
        deployment = self.registry.get(name)
        batcher = self._batchers[name]
        while True:
            batch = batcher.next_batch(timeout=0.1)
            if batch is None:
                if batcher.closed:
                    return
                continue
            try:
                self.pool.dispatch(deployment.servable, deployment, batch)
            except Exception as exc:  # no eligible worker — fail the batch
                for request in batch:
                    request.future.set_exception(exc)
                self.metrics.record_failure(len(batch))

    def _bucket(self, size: int) -> int:
        if not self.pad_to_buckets:
            return size
        return bucket_for(size, self.max_batch_size)

    def _execute(self, worker: Worker, deployment: Deployment, requests: list) -> None:
        """Run one coalesced batch on a worker (called on the worker thread)."""
        try:
            servable = deployment.servable
            batch = np.stack([request.sample for request in requests])
            bucket = self._bucket(len(requests))
            handle = deployment.handle_for(bucket, worker=worker)
            result = handle.run(**{servable.query_param: pad_batch(batch, bucket)})
            outputs = np.asarray(result.output)
            if servable.postprocess is not None:
                outputs = servable.postprocess(outputs)
            outputs = outputs[: len(requests)]
        except Exception as exc:
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            self.metrics.record_failure(len(requests))
            return
        now = time.monotonic()
        for request, output in zip(requests, outputs):
            request.future.set_result(output)
            self.metrics.record_request(now - request.enqueued_at)
        self.metrics.record_batch(len(requests))

    # -- observability ------------------------------------------------------------
    def stats(self) -> ServerStats:
        """A :class:`ServerStats` snapshot (latency, throughput, cache, workers)."""
        return self.metrics.snapshot(cache=self.registry.cache, workers=self.pool.workers)

    def __repr__(self) -> str:
        return (
            f"InferenceServer(models={self.registry.names()}, pool={self.pool!r}, "
            f"max_batch={self.max_batch_size}, wait={self.max_wait_seconds * 1e3:.1f}ms)"
        )
