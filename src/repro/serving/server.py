"""The synchronous in-process front end of the serving runtime.

:class:`InferenceServer` turns compiled HDC programs into long-lived,
queryable services::

    from repro.serving import InferenceServer

    server = InferenceServer(workers=("cpu", "cpu"), policy="least_loaded")
    server.register(app.as_servable(rp_matrix, classes))
    with server:
        label = server.infer("hd-classification", features)

Since the transport refactor the server is a **thin adapter**: it owns a
:class:`~repro.serving.registry.ModelRegistry`, a
:class:`~repro.serving.scheduler.WorkerPool` and a
:class:`~repro.serving.broker.RequestBroker`, and maps the blocking
``submit`` / ``infer`` / ``infer_many`` API onto the broker's future
contract.  The entire submit→batch→schedule→dispatch→settle path lives in
the broker (see :mod:`repro.serving.broker` for the request-flow
documentation); the asyncio socket front end in
:mod:`repro.serving.transport` layers network clients onto the very same
broker, so in-process and remote requests coalesce into the same
micro-batches and compete under the same fair scheduler.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.ir.dataflow import Target
from repro.serving.batching import bucket_ladder
from repro.serving.broker import RequestBroker
from repro.serving.metrics import ServerStats
from repro.serving.registry import Deployment, ModelRegistry
from repro.serving.scheduler import SchedulingPolicy, Worker, WorkerPool
from repro.serving.servable import Servable
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["InferenceServer"]


class InferenceServer:
    """Serve registered HDC models over a fair, dynamic micro-batching queue.

    Args:
        workers: Worker specs (target names, :class:`Target` values or
            prebuilt :class:`Worker` instances).
        policy: Worker-selection policy for ready batches (``round_robin``,
            ``least_loaded`` or ``latency_aware``).
        max_batch_size: Micro-batching size watermark.
        max_wait_seconds: Micro-batching time watermark.
        pad_to_buckets: Pad batches to power-of-two buckets so at most
            ``log2(max_batch_size) + 1`` program variants compile per
            (model, target); disable to compile exact batch shapes.
        registry: Optionally share a :class:`ModelRegistry` (and hence a
            compiled-program cache) across servers.
        latency_window: Retained latency samples for the percentiles.
        scheduler_aging_seconds: Starvation-aging constant of the
            :class:`~repro.serving.scheduler.FairScheduler` — the
            head-of-lane wait that earns one weighted-round-robin turn.
        worker_backlog_samples: Admission-control threshold: the
            dispatcher holds the next batch while every eligible worker
            has at least this many samples in flight.  Defaults to
            ``2 * max_batch_size`` (one executing batch plus one queued).
        tracing: Enable per-request tracing: every request carries a
            span chain (queue → batch → schedule → dispatch → execute →
            settle) tiling its lifetime; completed traces are retained
            under tail-based sampling and readable via :meth:`traces`.
        trace_capacity: Per-ring trace retention (see
            :class:`~repro.serving.observability.RequestTracer`).
        trace_sample_every: Keep 1-in-N healthy traces (errors and SLO
            violators are always retained).
        update_log: Optional :class:`~repro.serving.update_log.UpdateLog`;
            every successful :meth:`update` appends its mini-batch to it,
            so a restarted server rebuilds the exact served versions by
            replaying the log (see :meth:`UpdateLog.replay`).
    """

    def __init__(
        self,
        workers: Iterable[Union[str, Target, Worker]] = ("cpu",),
        policy: Union[str, SchedulingPolicy] = "least_loaded",
        max_batch_size: int = 64,
        max_wait_seconds: float = 0.002,
        pad_to_buckets: bool = True,
        registry: Optional[ModelRegistry] = None,
        latency_window: int = 8192,
        scheduler_aging_seconds: float = 0.25,
        worker_backlog_samples: Optional[int] = None,
        tracing: bool = False,
        trace_capacity: int = 512,
        trace_sample_every: int = 1,
        update_log=None,
    ):
        self.registry = registry if registry is not None else ModelRegistry()
        self.pool = WorkerPool(workers, policy=policy)
        self.broker = RequestBroker(
            self.registry,
            self.pool,
            max_batch_size=max_batch_size,
            max_wait_seconds=max_wait_seconds,
            pad_to_buckets=pad_to_buckets,
            latency_window=latency_window,
            scheduler_aging_seconds=scheduler_aging_seconds,
            worker_backlog_samples=worker_backlog_samples,
            tracing=tracing,
            trace_capacity=trace_capacity,
            trace_sample_every=trace_sample_every,
            update_log=update_log,
        )

    # Configuration and collectors live on the broker; these properties keep
    # the pre-refactor surface (`server.max_batch_size`, `server.metrics`,
    # ...) intact for callers and tests.
    @property
    def max_batch_size(self) -> int:
        return self.broker.max_batch_size

    @property
    def max_wait_seconds(self) -> float:
        return self.broker.max_wait_seconds

    @property
    def metrics(self):
        return self.broker.metrics

    # -- registration -------------------------------------------------------------
    def register(
        self,
        servable: Servable,
        name: Optional[str] = None,
        config: Optional[ApproximationConfig] = None,
        warm: Union[bool, str] = True,
        weight: float = 1.0,
        shards: Optional[int] = None,
        slo_ms: Optional[float] = None,
        shard_capacity: Optional[int] = None,
    ) -> Deployment:
        """Register a servable and set up its request queue.

        Warming compiles, for every eligible worker, the single-sample and
        full-batch buckets — the two shapes a freshly started service hits
        first.  ``warm="full"`` compiles the whole power-of-two bucket
        ladder instead, so no batch shape ever compiles at request time —
        the mode to use before :meth:`save_cache`, since it makes a warm
        restart deterministically recompile-free regardless of how traffic
        happened to coalesce.  Re-registering under an existing name
        hot-swaps the model: requests already queued still resolve against
        the old deployment, new requests see the new one.

        Args:
            warm: ``True`` (default) warms buckets ``{1, max}``,
                ``"full"`` warms every power-of-two bucket up to
                ``max_batch_size``, ``False`` skips warming.
            weight: Fair-scheduler share.  Under contention a deployment
                receives batches proportionally to its weight, with
                starvation aging protecting low-weight lanes.
            shards: Deploy sharded across this many class-memory slices
                (requires ``servable.shard_spec``); each batch then
                scatter-executes over up to ``shards`` workers.
            slo_ms: Optional end-to-end latency SLO for this deployment;
                served requests exceeding it are counted in
                ``stats().model_stats[name]["slo_violations"]``.
            shard_capacity: Maximum class-memory rows per shard; when an
                :meth:`append` grows the sharded constant past it, the
                swap re-partitions onto more shards live.
        """
        deployment = self.registry.register(
            servable,
            name=name,
            target=self._default_target(servable),
            config=config,
            warm_batch_sizes=(),
            shards=shards,
            shard_capacity=shard_capacity,
        )
        if warm:
            buckets = self._warm_buckets(full_ladder=warm == "full")
            for worker in self.pool.eligible(servable):
                deployment.warm(buckets, worker=worker)
        self.broker.add_model(deployment, weight=weight, slo_ms=slo_ms)
        return deployment

    def _warm_buckets(self, full_ladder: bool) -> list:
        return bucket_ladder(
            self.max_batch_size, self.broker.pad_to_buckets, full=full_ladder
        )

    def _default_target(self, servable: Servable) -> Target:
        for worker in self.pool.workers:
            if servable.supports_target(worker.target):
                return worker.target
        raise ValueError(
            f"no worker in the pool supports {servable.name!r} "
            f"(pool={[w.target.value for w in self.pool.workers]}, "
            f"servable targets {servable.supported_targets})"
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "InferenceServer":
        """Start (or restart) workers, per-model feeders and the dispatcher."""
        self.broker.start()
        return self

    def stop(self) -> None:
        """Drain queued requests, then stop feeders, dispatcher and workers."""
        self.broker.stop()

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted request has resolved.

        "Resolved" covers successful results, failures and deadline sheds
        alike.  This is the idiom for reading a consistent
        :class:`ServerStats` snapshot while the server keeps running —
        ``stop()`` also drains, but tears the workers down with it::

            with server:
                futures = [server.submit(name, s) for s in samples]
                server.drain()
                print(server.stats())   # every request accounted for

        Raises:
            TimeoutError: The queue did not empty within ``timeout``
                seconds (e.g. the server was never started).
        """
        self.broker.drain(timeout)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request path -------------------------------------------------------------
    def submit(
        self,
        model: str,
        sample: np.ndarray,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        min_version: Optional[int] = None,
    ):
        """Enqueue one sample; returns a future resolving to its result.

        Args:
            priority: Batching lane; higher-priority requests flush first.
            deadline_ms: Latency budget from now, in milliseconds.  The
                future raises :class:`DeadlineExceeded` if the budget runs
                out before the request executes.
            min_version: Version pin — raise
                :class:`~repro.serving.registry.StaleVersionError` if the
                deployment is older (read-your-writes across replicas).
        """
        return self.broker.submit(
            model, sample, priority=priority, deadline_ms=deadline_ms, min_version=min_version
        )

    def infer(
        self,
        model: str,
        sample: np.ndarray,
        timeout: Optional[float] = None,
        priority: int = 0,
        deadline_ms: Optional[float] = None,
        min_version: Optional[int] = None,
    ):
        """Synchronous single-sample inference through the batching queue."""
        return self.submit(
            model, sample, priority=priority, deadline_ms=deadline_ms, min_version=min_version
        ).result(timeout=timeout)

    def infer_many(
        self, model: str, samples: Iterable[np.ndarray], timeout: Optional[float] = None
    ) -> list:
        """Submit many samples, then gather their results in order."""
        futures = [self.submit(model, sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    # -- online re-training -------------------------------------------------------
    def update(self, model: str, samples: np.ndarray, labels: np.ndarray) -> int:
        """One online re-training round; returns the new model version.

        Applies the servable's ``update_batch`` rule (the application's
        mini-batched training rule) to the labelled samples, then
        hot-swaps the deployment with zero downtime: new requests cut
        over to the re-trained version immediately, in-flight requests
        settle against the old one, and nothing is dropped either way.
        Serving the updated model is bit-identical to an offline retrain
        on the same data (see :meth:`RequestBroker.update`).

        Raises:
            NotUpdatableError: The model's servable has no update rule.
        """
        return self.broker.update(model, samples, labels)

    def append(self, model: str, rows: np.ndarray) -> int:
        """One shape-changing growth round; returns the new model version.

        Applies the servable's ``append_batch`` rule (the application's
        growth rule — new bucket sequences, spectra, centroids) and
        hot-swaps the grown deployment with zero downtime, re-tracing the
        program family for the new shapes.  Serving the grown model is
        bit-identical to an offline rebuild of the full index (see
        :meth:`RequestBroker.append`).

        Raises:
            NotAppendableError: The model's servable has no append rule.
        """
        return self.broker.append(model, rows)

    def model_versions(self) -> dict:
        """``{name: version}`` for every served deployment (versions bump
        on every re-register or online update under the same name)."""
        return self.broker.model_versions()

    # -- cache persistence --------------------------------------------------------
    def save_cache(self, path) -> int:
        """Persist the compiled-program cache; returns entries saved.

        A restarted server sharing the same registry state can
        :meth:`load_cache` before registering and skip trace/lower/verify
        entirely (``stats().cache_warm_hits`` counts the skips).
        """
        return self.registry.cache.save(path)

    def load_cache(self, path) -> int:
        """Restore a persisted compile cache; returns entries loaded."""
        return self.registry.cache.load(path)

    # -- observability ------------------------------------------------------------
    def stats(self, reset: bool = False) -> ServerStats:
        """A :class:`ServerStats` snapshot (latency splits, throughput,
        cache, workers, deadline sheds, SLOs and fair-scheduler lanes).
        ``reset=True`` atomically starts the next reporting interval."""
        return self.broker.stats(reset=reset)

    def reset_stats(self) -> None:
        """Zero the metrics window for per-interval reporting (SLO
        thresholds survive; see :meth:`ServingMetrics.reset`)."""
        self.broker.reset_stats()

    @property
    def update_log(self):
        """The broker's :class:`~repro.serving.update_log.UpdateLog`
        (``None`` unless constructed with ``update_log=...``)."""
        return self.broker.update_log

    @property
    def tracer(self):
        """The broker's :class:`~repro.serving.observability.RequestTracer`
        (``None`` unless constructed with ``tracing=True``)."""
        return self.broker.tracer

    def traces(self, limit: Optional[int] = None, clear: bool = False) -> list:
        """Retained request traces as JSON-safe dicts (oldest first);
        empty unless the server was constructed with ``tracing=True``.
        ``clear=True`` empties the trace rings after the read."""
        return self.broker.traces(limit=limit, clear=clear)

    def __repr__(self) -> str:
        return (
            f"InferenceServer(models={self.registry.names()}, pool={self.pool!r}, "
            f"max_batch={self.max_batch_size}, wait={self.max_wait_seconds * 1e3:.1f}ms)"
        )
