"""Synthetic citation graph standing in for the Cora dataset (RelHD).

Cora is a citation network of ~2,700 machine-learning papers in 7 topics,
each described by a sparse binary bag-of-words vector.  RelHD learns node
labels from the combination of a node's own features and its graph
neighbourhood.  The surrogate generator builds a stochastic-block-model
citation graph (papers cite mostly within their topic) with topic-correlated
sparse binary features and a train/test node split, preserving exactly the
structure RelHD's graph-neighbour encoding exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["CoraConfig", "CitationGraph", "make_cora_like"]


@dataclass(frozen=True)
class CoraConfig:
    """Configuration of the synthetic citation-graph generator."""

    n_nodes: int = 1000
    n_classes: int = 7
    n_features: int = 433
    #: Average number of distinct words per paper.
    words_per_node: int = 30
    #: Number of vocabulary words strongly associated with each topic.
    topic_words: int = 50
    #: Probability that a word of a paper is drawn from its topic vocabulary.
    topic_word_probability: float = 0.7
    #: Within-topic and cross-topic citation probabilities.
    p_intra: float = 0.02
    p_inter: float = 0.001
    train_fraction: float = 0.6
    seed: int = 13


@dataclass
class CitationGraph:
    """A synthetic citation graph with features, labels and a node split."""

    graph: nx.Graph
    features: np.ndarray
    labels: np.ndarray
    train_nodes: np.ndarray
    test_nodes: np.ndarray
    config: CoraConfig

    @property
    def n_nodes(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.config.n_classes)

    def neighbors(self, node: int) -> list[int]:
        return sorted(self.graph.neighbors(node))

    def adjacency_lists(self) -> list[list[int]]:
        """Neighbour lists for every node, in node order."""
        return [self.neighbors(n) for n in range(self.n_nodes)]

    def __repr__(self) -> str:
        return (
            f"CitationGraph(nodes={self.n_nodes}, edges={self.graph.number_of_edges()}, "
            f"classes={self.n_classes})"
        )


def make_cora_like(config: CoraConfig | None = None) -> CitationGraph:
    """Generate a synthetic Cora-like citation graph."""
    config = config or CoraConfig()
    rng = np.random.default_rng(config.seed)

    sizes = [config.n_nodes // config.n_classes] * config.n_classes
    sizes[0] += config.n_nodes - sum(sizes)
    probabilities = np.full((config.n_classes, config.n_classes), config.p_inter)
    np.fill_diagonal(probabilities, config.p_intra)
    graph = nx.stochastic_block_model(sizes, probabilities.tolist(), seed=int(config.seed))
    graph = nx.Graph(graph)  # drop block metadata, keep a plain undirected graph

    labels = np.concatenate(
        [np.full(size, cls, dtype=np.int64) for cls, size in enumerate(sizes)]
    )

    # Topic-correlated sparse binary bag-of-words features.
    features = np.zeros((config.n_nodes, config.n_features), dtype=np.float32)
    topic_vocab = [
        rng.choice(config.n_features, size=config.topic_words, replace=False)
        for _ in range(config.n_classes)
    ]
    for node in range(config.n_nodes):
        topic = labels[node]
        for _ in range(config.words_per_node):
            if rng.random() < config.topic_word_probability:
                word = int(rng.choice(topic_vocab[topic]))
            else:
                word = int(rng.integers(0, config.n_features))
            features[node, word] = 1.0

    order = rng.permutation(config.n_nodes)
    split = int(config.train_fraction * config.n_nodes)
    train_nodes = np.sort(order[:split])
    test_nodes = np.sort(order[split:])
    return CitationGraph(graph, features, labels, train_nodes, test_nodes, config)
