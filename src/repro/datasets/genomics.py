"""Synthetic genomics dataset for HD-Hashtable (long-read sequence search).

HD-Hashtable (adapted from BioHD) searches a reference genome for the
origin of long, error-prone reads by hashing k-mers into hyperdimensional
buckets.  The paper uses a long-read assembly dataset; offline we generate:

* a random reference genome over the ACGT alphabet, partitioned into
  fixed-size *buckets* (contiguous regions);
* query reads sampled from random positions of the reference with
  substitution errors at a configurable rate (emulating long-read noise),
  each carrying its ground-truth bucket;
* decoy reads not present in the reference (to exercise rejection).

Utilities for k-mer extraction are shared by the HDC application and the
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GenomicsConfig", "GenomicsDataset", "make_genomics_dataset", "kmer_tokens"]

_ALPHABET = np.array(list("ACGT"))
_BASE_INDEX = {base: i for i, base in enumerate("ACGT")}


@dataclass(frozen=True)
class GenomicsConfig:
    """Configuration of the synthetic genomics generator."""

    genome_length: int = 20000
    bucket_size: int = 1000
    read_length: int = 300
    n_reads: int = 120
    n_decoys: int = 20
    error_rate: float = 0.05
    kmer_length: int = 12
    seed: int = 99


@dataclass
class GenomicsDataset:
    """A reference genome plus query reads with known origin buckets."""

    genome: str
    reads: list[str]
    read_buckets: np.ndarray
    decoys: list[str]
    config: GenomicsConfig

    @property
    def n_buckets(self) -> int:
        return (len(self.genome) + self.config.bucket_size - 1) // self.config.bucket_size

    def bucket_sequence(self, bucket: int) -> str:
        """The reference subsequence covered by one bucket."""
        start = bucket * self.config.bucket_size
        return self.genome[start : start + self.config.bucket_size]

    def __repr__(self) -> str:
        return (
            f"GenomicsDataset(genome={len(self.genome)}bp, buckets={self.n_buckets}, "
            f"reads={len(self.reads)}, decoys={len(self.decoys)})"
        )


def kmer_tokens(sequence: str, k: int) -> list[str]:
    """All overlapping k-mers of a sequence."""
    if k <= 0:
        raise ValueError("k-mer length must be positive")
    if len(sequence) < k:
        return []
    return [sequence[i : i + k] for i in range(len(sequence) - k + 1)]


def base_indices(sequence: str) -> np.ndarray:
    """Map a DNA string to integer base indices (A=0, C=1, G=2, T=3)."""
    return np.asarray([_BASE_INDEX[b] for b in sequence], dtype=np.int64)


def _mutate(read: str, error_rate: float, rng: np.random.Generator) -> str:
    bases = np.array(list(read))
    errors = rng.random(bases.shape[0]) < error_rate
    if errors.any():
        bases[errors] = rng.choice(_ALPHABET, size=int(errors.sum()))
    return "".join(bases)


def make_genomics_dataset(config: GenomicsConfig | None = None) -> GenomicsDataset:
    """Generate a synthetic reference genome and noisy query reads."""
    config = config or GenomicsConfig()
    rng = np.random.default_rng(config.seed)

    genome = "".join(rng.choice(_ALPHABET, size=config.genome_length))

    reads: list[str] = []
    buckets: list[int] = []
    max_start = config.genome_length - config.read_length
    for _ in range(config.n_reads):
        start = int(rng.integers(0, max_start))
        read = genome[start : start + config.read_length]
        reads.append(_mutate(read, config.error_rate, rng))
        # Ground truth is the bucket containing the middle of the read.
        buckets.append((start + config.read_length // 2) // config.bucket_size)

    decoys = [
        "".join(rng.choice(_ALPHABET, size=config.read_length)) for _ in range(config.n_decoys)
    ]
    return GenomicsDataset(genome, reads, np.asarray(buckets, dtype=np.int64), decoys, config)
