"""Synthetic surrogate of the ISOLET spoken-letter dataset.

ISOLET (Cole & Fanty, UCI) contains 7797 utterances of the 26 English
letters, each described by 617 acoustic features; the paper uses it for
HD-Classification and HD-Clustering.  The surrogate keeps the 26-class /
617-feature structure and generates utterances as class prototypes plus
correlated speaker-style noise, which yields the same qualitative behaviour
HDC relies on: classes are separable with a random-projection encoder, but
not trivially so, and accuracy degrades gracefully as the encoding is
approximated (dimension reduction, binarization, perforation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IsoletConfig", "IsoletLike", "make_isolet_like"]


@dataclass(frozen=True)
class IsoletConfig:
    """Configuration of the synthetic ISOLET generator.

    The defaults produce a laptop-scale dataset (2,000 training / 600 test
    utterances); pass larger values to approach the original 7,797 samples.
    """

    n_features: int = 617
    n_classes: int = 26
    n_train: int = 2000
    n_test: int = 600
    #: Standard deviation of the per-sample noise relative to the prototype.
    noise: float = 0.75
    #: Number of latent "articulation" factors shared across classes; makes
    #: some classes genuinely confusable, as letters are in real ISOLET.
    n_factors: int = 40
    seed: int = 2024


@dataclass
class IsoletLike:
    """An ISOLET-like dataset split into train and test partitions."""

    train_features: np.ndarray
    train_labels: np.ndarray
    test_features: np.ndarray
    test_labels: np.ndarray
    config: IsoletConfig

    @property
    def n_features(self) -> int:
        return self.train_features.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.config.n_classes)

    def __repr__(self) -> str:
        return (
            f"IsoletLike(train={self.train_features.shape}, test={self.test_features.shape}, "
            f"classes={self.n_classes})"
        )


def make_isolet_like(config: IsoletConfig | None = None) -> IsoletLike:
    """Generate a synthetic ISOLET-like classification dataset."""
    config = config or IsoletConfig()
    rng = np.random.default_rng(config.seed)

    # Class prototypes live on a low-dimensional articulation manifold so
    # that some pairs of classes are close together (confusable letters).
    factors = rng.standard_normal((config.n_factors, config.n_features))
    class_coords = rng.standard_normal((config.n_classes, config.n_factors))
    prototypes = class_coords @ factors / np.sqrt(config.n_factors)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, config.n_classes, size=count)
        speaker_style = rng.standard_normal((count, config.n_factors)) * 0.3
        noise = rng.standard_normal((count, config.n_features)) * config.noise
        features = prototypes[labels] + speaker_style @ factors + noise
        # ISOLET features are normalized to [-1, 1]; do the same here.
        features = np.tanh(features)
        return features.astype(np.float32), labels.astype(np.int64)

    train_features, train_labels = sample(config.n_train)
    test_features, test_labels = sample(config.n_test)
    return IsoletLike(train_features, train_labels, test_features, test_labels, config)
