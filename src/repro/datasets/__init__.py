"""Synthetic surrogates of the datasets used in the paper's evaluation.

The paper evaluates on ISOLET (spoken letters), the Yeast / human spectral
libraries and iPRG2012 queries (mass spectrometry), the Cora citation graph
and a long-read genomics dataset.  None of these can be redistributed or
downloaded offline, so each is replaced by a parameterized synthetic
generator that preserves the structural properties the HDC applications
depend on: feature dimensionality and class count for ISOLET, peak
structure and modification offsets for the spectra, community structure and
sparse bag-of-words features for Cora, and alphabet/read-length/error-rate
for the genomics reads.  All generators are deterministic given a seed.
"""

from repro.datasets.isolet import IsoletConfig, IsoletLike, make_isolet_like
from repro.datasets.spectra import SpectralDataset, SpectraConfig, make_spectral_library
from repro.datasets.cora import CitationGraph, CoraConfig, make_cora_like
from repro.datasets.genomics import GenomicsConfig, GenomicsDataset, make_genomics_dataset

__all__ = [
    "IsoletConfig",
    "IsoletLike",
    "make_isolet_like",
    "SpectraConfig",
    "SpectralDataset",
    "make_spectral_library",
    "CoraConfig",
    "CitationGraph",
    "make_cora_like",
    "GenomicsConfig",
    "GenomicsDataset",
    "make_genomics_dataset",
]
