"""Synthetic mass-spectrometry spectral library for HyperOMS.

HyperOMS performs *open modification search* (OMS): every query spectrum is
compared against a library of reference spectra, tolerating a mass
modification that shifts part of the peaks.  The paper uses the combined
Yeast / human spectral libraries with iPRG2012 queries; offline we generate
a synthetic library with the same structure:

* each library spectrum has a precursor mass and a sparse set of peaks
  (m/z positions with intensities);
* each query is derived from a library spectrum by keeping most of its
  peaks, dropping some, adding noise peaks, and optionally applying a mass
  modification that shifts a suffix of the peaks — queries therefore have a
  known ground-truth library match, which is what the evaluation scores.

Spectra are represented both as peak lists and as dense binned intensity
vectors (the representation the HDC encodings consume).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SpectraConfig", "Spectrum", "SpectralDataset", "make_spectral_library"]


@dataclass(frozen=True)
class SpectraConfig:
    """Configuration of the synthetic spectral-library generator."""

    n_library: int = 400
    n_queries: int = 200
    n_bins: int = 1200
    peaks_per_spectrum: int = 60
    min_mz: float = 100.0
    max_mz: float = 1500.0
    #: Fraction of library peaks kept in a derived query spectrum.
    keep_fraction: float = 0.8
    #: Number of random noise peaks added to each query.
    noise_peaks: int = 6
    #: Fraction of queries carrying an open modification (mass shift).
    modified_fraction: float = 0.4
    #: Maximum modification magnitude in m/z bins.
    max_modification_bins: int = 25
    seed: int = 7


@dataclass
class Spectrum:
    """One spectrum: sparse peaks plus its dense binned representation."""

    precursor_mass: float
    bins: np.ndarray
    intensities: np.ndarray
    binned: np.ndarray
    library_match: int = -1
    modification_bins: int = 0


@dataclass
class SpectralDataset:
    """A spectral library plus query spectra with known ground truth."""

    library: list[Spectrum]
    queries: list[Spectrum]
    config: SpectraConfig

    @property
    def library_matrix(self) -> np.ndarray:
        """Dense binned intensity matrix of the library (n_library x n_bins)."""
        return np.stack([s.binned for s in self.library])

    @property
    def query_matrix(self) -> np.ndarray:
        """Dense binned intensity matrix of the queries (n_queries x n_bins)."""
        return np.stack([s.binned for s in self.queries])

    @property
    def query_truth(self) -> np.ndarray:
        """Index of the true library match for every query."""
        return np.asarray([q.library_match for q in self.queries], dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"SpectralDataset(library={len(self.library)}, queries={len(self.queries)}, "
            f"bins={self.config.n_bins})"
        )


def _binned(bins: np.ndarray, intensities: np.ndarray, n_bins: int) -> np.ndarray:
    dense = np.zeros(n_bins, dtype=np.float32)
    np.maximum.at(dense, bins, intensities.astype(np.float32))
    return dense


def make_spectral_library(config: SpectraConfig | None = None) -> SpectralDataset:
    """Generate a synthetic spectral library and matching query spectra."""
    config = config or SpectraConfig()
    rng = np.random.default_rng(config.seed)

    library: list[Spectrum] = []
    for _ in range(config.n_library):
        bins = np.sort(rng.choice(config.n_bins, size=config.peaks_per_spectrum, replace=False))
        intensities = rng.gamma(shape=2.0, scale=1.0, size=config.peaks_per_spectrum)
        intensities = intensities / intensities.max()
        precursor = rng.uniform(config.min_mz, config.max_mz)
        library.append(
            Spectrum(precursor, bins, intensities, _binned(bins, intensities, config.n_bins))
        )

    queries: list[Spectrum] = []
    for _ in range(config.n_queries):
        match = int(rng.integers(0, config.n_library))
        source = library[match]
        keep_mask = rng.random(source.bins.shape[0]) < config.keep_fraction
        bins = source.bins[keep_mask].copy()
        intensities = source.intensities[keep_mask] * rng.uniform(0.8, 1.2, size=keep_mask.sum())

        modification = 0
        if rng.random() < config.modified_fraction and bins.size > 4:
            modification = int(rng.integers(1, config.max_modification_bins + 1))
            if rng.random() < 0.5:
                modification = -modification
            # An open modification shifts the peaks after a random cut point.
            cut = int(rng.integers(1, bins.size - 1))
            bins = bins.copy()
            bins[cut:] = np.clip(bins[cut:] + modification, 0, config.n_bins - 1)

        noise_bins = rng.choice(config.n_bins, size=config.noise_peaks, replace=False)
        noise_intensity = rng.uniform(0.05, 0.3, size=config.noise_peaks)
        all_bins = np.concatenate([bins, noise_bins])
        all_intensities = np.concatenate([intensities, noise_intensity])

        queries.append(
            Spectrum(
                source.precursor_mass + modification * 0.5,
                all_bins,
                all_intensities,
                _binned(all_bins, all_intensities, config.n_bins),
                library_match=match,
                modification_bins=modification,
            )
        )

    return SpectralDataset(library, queries, config)
