"""Shared back-end infrastructure: compiled programs and execution reports.

A back end turns a traced HDC++ :class:`~repro.hdcpp.program.Program` into a
:class:`CompiledProgram`.  Compilation follows the workflow of Figure 4:

1. the program is cloned (so one traced application can be compiled many
   times under different approximation configurations);
2. the approximation passes requested by the
   :class:`~repro.transforms.ApproximationConfig` run over the clone;
3. the clone is lowered to the HPVM-HDC dataflow graph and verified;
4. the back end retains whatever execution state it needs (kernel set,
   device simulator session, ...).

Executing a compiled program returns an :class:`ExecutionResult` carrying
both the outputs and an :class:`ExecutionReport` with measured wall-clock
time plus the modeled device-only latency, data movement and energy that
the benchmark harnesses consume.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import Program, TracedFunction
from repro.hdcpp.types import HDType, HyperMatrixType, HyperVectorType
from repro.ir.builder import clone_program, lower_program
from repro.ir.dataflow import DataflowGraph, Target
from repro.ir.verifier import verify_graph
from repro.kernels import binary as binkern, reference as ref
from repro.transforms.pipeline import ApproximationConfig, PassPipeline, PassReport

__all__ = ["ExecutionReport", "ExecutionResult", "CompiledProgram", "BoundProgram", "Backend"]


@dataclass
class ExecutionReport:
    """Accounting for one execution of a compiled program.

    ``wall_seconds`` is measured on the host; the remaining fields are
    modeled quantities reported by the back end / device simulators.
    """

    target: str = "cpu"
    wall_seconds: float = 0.0
    device_seconds: float = 0.0
    transfer_seconds: float = 0.0
    bytes_to_device: float = 0.0
    bytes_from_device: float = 0.0
    kernel_launches: int = 0
    energy_joules: float = 0.0
    notes: dict = field(default_factory=dict)

    def record_stage_counters(self, stages) -> None:
        """Surface a stage executor's vectorized-vs-fallback accounting.

        ``notes["stage_vectorized"]`` / ``notes["stage_fallbacks"]`` count
        how many stage / parallel-map executions took the batched route vs
        fell back to the per-row loop (both 0 for a per-row executor —
        the reference loop is its configured strategy, not a fallback);
        ``notes["stage_fallback_reasons"]`` maps each falling-back stage
        to its reason and ``notes["batched_fallback"]`` keeps the last
        reason string for quick inspection.  The serving runtime folds
        these into per-deployment :class:`~repro.serving.metrics
        .ServerStats` counters.
        """
        self.notes["stage_vectorized"] = stages.vectorized_stages
        self.notes["stage_fallbacks"] = stages.fallback_stages
        if stages.stage_fallbacks:
            self.notes["stage_fallback_reasons"] = dict(stages.stage_fallbacks)
        if stages.last_fallback is not None:
            self.notes["batched_fallback"] = stages.last_fallback
        # Per-stage execute-time profile (wall/gate seconds, rows, route)
        # with monotonic-clock bounds — the serving runtime folds it into
        # per-(stage, bucket) breakdowns and per-request trace children.
        if getattr(stages, "profile", None):
            self.notes["stage_profile"] = list(stages.profile)

    def merge_device_counters(self, counters) -> None:
        """Fold a device simulator's counters into this report."""
        self.device_seconds += counters.device_seconds
        self.transfer_seconds += counters.transfer_seconds
        self.bytes_to_device += counters.bytes_to_device
        self.bytes_from_device += counters.bytes_from_device
        self.energy_joules += counters.energy_joules

    def merge(self, other: "ExecutionReport") -> None:
        """Accumulate another report's costs into this one.

        Used when one logical execution spans several compiled-program
        runs — e.g. a sharded deployment summing its per-shard partial
        executions into the report of the reduced result.  Notes merge
        key-wise with the other report winning collisions.
        """
        self.wall_seconds += other.wall_seconds
        self.device_seconds += other.device_seconds
        self.transfer_seconds += other.transfer_seconds
        self.bytes_to_device += other.bytes_to_device
        self.bytes_from_device += other.bytes_from_device
        self.kernel_launches += other.kernel_launches
        self.energy_joules += other.energy_joules
        self.notes.update(other.notes)


@dataclass
class ExecutionResult:
    """Outputs plus accounting for one execution of a compiled program."""

    outputs: dict[str, object]
    report: ExecutionReport

    def __getitem__(self, name: str):
        return self.outputs[name]

    @property
    def output(self):
        """The single output (convenience for single-result programs)."""
        if len(self.outputs) != 1:
            raise ValueError(f"program has {len(self.outputs)} outputs; use result['name']")
        return next(iter(self.outputs.values()))


class CompiledProgram:
    """An executable artifact produced by a back end."""

    def __init__(
        self,
        backend: "Backend",
        program: Program,
        graph: DataflowGraph,
        pass_report: PassReport,
        config: ApproximationConfig,
    ):
        self.backend = backend
        self.program = program
        self.graph = graph
        self.pass_report = pass_report
        self.config = config
        self.entry = program.entry_function

    # -- input binding -----------------------------------------------------------
    def _bind_inputs(self, kwargs: dict) -> dict[int, np.ndarray]:
        env: dict[int, np.ndarray] = {}
        missing = []
        for param in self.entry.params:
            if param.name not in kwargs:
                missing.append(param.name)
                continue
            env[param.id] = self._coerce(kwargs[param.name], param.type, param.name)
        if missing:
            raise TypeError(
                f"missing program inputs {missing}; expected "
                f"{[p.name for p in self.entry.params]}"
            )
        extra = set(kwargs) - {p.name for p in self.entry.params}
        if extra:
            raise TypeError(f"unknown program inputs {sorted(extra)}")
        return env

    @staticmethod
    def _coerce(value, declared: HDType, name: str) -> np.ndarray:
        if getattr(value, "__packed_bits__", False):
            # A pre-packed operand (packed-storage class memory): validate
            # against the declared *logical* type and pass it through —
            # ``as_numpy`` would strip the packed wrapper to raw words.
            if not (
                isinstance(declared, (HyperVectorType, HyperMatrixType))
                and declared.element.is_binary
            ):
                raise ValueError(
                    f"input {name!r} is bit-packed but the program declares "
                    f"a non-binary type for it"
                )
            logical = value.logical_shape
            if logical != declared.shape:
                raise ValueError(
                    f"input {name!r} has logical shape {logical}, expected {declared.shape}"
                )
            if value.shape[-1] != binkern.packed_num_words(value.dim):
                raise ValueError(
                    f"input {name!r} has {value.shape[-1]} packed words, expected "
                    f"{binkern.packed_num_words(value.dim)} for dim {value.dim}"
                )
            return value
        array = as_numpy(value)
        if isinstance(declared, (HyperVectorType, HyperMatrixType)):
            if array.shape != declared.shape:
                raise ValueError(
                    f"input {name!r} has shape {array.shape}, expected {declared.shape}"
                )
            if declared.element.is_binary:
                # Binarized program inputs are converted on the host before
                # transfer — this is the data-movement saving of Section 5.3.
                array = ref.sign(array)
            else:
                array = array.astype(declared.element.numpy_dtype, copy=False)
        return array

    # -- execution ----------------------------------------------------------------
    def _execute_env(self, env: dict[int, np.ndarray], backend: "Backend") -> ExecutionResult:
        report = ExecutionReport(target=backend.target.value)
        start = time.perf_counter()
        outputs = backend.execute(self, env, report)
        report.wall_seconds = time.perf_counter() - start
        return ExecutionResult(outputs, report)

    def run(self, **inputs) -> ExecutionResult:
        """Execute the compiled program with concrete inputs."""
        env = self._bind_inputs(inputs)
        return self._execute_env(env, self.backend)

    def __call__(self, **inputs) -> ExecutionResult:
        return self.run(**inputs)

    def bind(self, backend: Optional["Backend"] = None, **constants) -> "BoundProgram":
        """Pre-bind constant inputs, returning a reusable inference handle.

        The constants (trained class memories, random-projection matrices,
        reference tables, ...) are validated and coerced exactly once;
        every subsequent :meth:`BoundProgram.run` only binds the varying
        inputs.  This is the entry point the serving runtime uses so that a
        stream of requests does not re-validate (or re-binarize) the model
        state on every call.

        Args:
            backend: Optionally execute through a different back-end
                *instance* of the same target (e.g. a serving worker's
                batched CPU back end).  Defaults to the compiling back end.
            **constants: A subset of the program inputs to freeze.
        """
        return BoundProgram(self, constants, backend=backend)

    @property
    def input_names(self) -> list[str]:
        return [p.name for p in self.entry.params]

    def __repr__(self) -> str:
        return (
            f"CompiledProgram({self.program.name!r}, target={self.backend.target.value}, "
            f"inputs={self.input_names})"
        )


class BoundProgram:
    """A compiled program with part of its inputs frozen.

    Produced by :meth:`CompiledProgram.bind`.  The handle is cheap to call
    repeatedly: constant inputs are coerced once at construction and the
    per-call work is limited to binding the varying inputs and executing.
    Handles are safe to share between threads for the stateless CPU/GPU
    back ends (every call builds a private environment); accelerator back
    ends hold device state and must not be shared across workers.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        constants: dict,
        backend: Optional["Backend"] = None,
    ):
        self.compiled = compiled
        self.backend = backend if backend is not None else compiled.backend
        if self.backend.target != compiled.backend.target:
            raise ValueError(
                f"cannot bind a {compiled.backend.target.value} program to a "
                f"{self.backend.target.value} back end"
            )
        params = {p.name: p for p in compiled.entry.params}
        unknown = set(constants) - set(params)
        if unknown:
            raise TypeError(f"unknown program inputs {sorted(unknown)}")
        self._const_env = {
            params[name].id: CompiledProgram._coerce(value, params[name].type, name)
            for name, value in constants.items()
        }
        self._free_params = [p for p in compiled.entry.params if p.name not in constants]

    @property
    def free_names(self) -> list[str]:
        """Names of the inputs that must be supplied per call."""
        return [p.name for p in self._free_params]

    def run(self, **inputs) -> ExecutionResult:
        """Execute with the bound constants plus the varying inputs."""
        env = dict(self._const_env)
        missing = [p.name for p in self._free_params if p.name not in inputs]
        if missing:
            raise TypeError(f"missing program inputs {missing}; expected {self.free_names}")
        extra = set(inputs) - {p.name for p in self._free_params}
        if extra:
            raise TypeError(f"unknown or already-bound inputs {sorted(extra)}")
        for param in self._free_params:
            env[param.id] = CompiledProgram._coerce(inputs[param.name], param.type, param.name)
        return self.compiled._execute_env(env, self.backend)

    def __call__(self, **inputs) -> ExecutionResult:
        return self.run(**inputs)

    def __repr__(self) -> str:
        return (
            f"BoundProgram({self.compiled.program.name!r}, "
            f"target={self.backend.target.value}, free={self.free_names})"
        )


class Backend:
    """Base class of the HPVM-HDC back ends."""

    target: Target = Target.CPU
    name: str = "base"

    def compile(
        self, program: Program, config: Optional[ApproximationConfig] = None
    ) -> CompiledProgram:
        """Clone, transform, lower, verify and wrap a traced program."""
        config = config or ApproximationConfig.none()
        cloned = clone_program(program)
        pipeline = PassPipeline.from_config(config)
        pass_report = pipeline.run(cloned)
        graph = lower_program(cloned)
        verify_graph(graph)
        self.prepare(cloned, graph, config)
        return CompiledProgram(self, cloned, graph, pass_report, config)

    # -- hooks ----------------------------------------------------------------------
    def prepare(self, program: Program, graph: DataflowGraph, config: ApproximationConfig) -> None:
        """Back-end specific compilation work (kernel selection, device setup)."""

    # -- compiled-program serialization ----------------------------------------------
    def serialize_compiled(self, compiled: "CompiledProgram") -> bytes:
        """Serialize a compiled artifact for cross-process cache persistence.

        The default serializes the post-compilation state — the transformed
        program, the lowered/verified dataflow graph, the pass report and
        the approximation config — so that :meth:`deserialize_compiled` can
        skip tracing, transforms, lowering and verification entirely.
        Programs that close over Python callables (eager ``parallel_map`` /
        ``training_loop`` implementations) raise here; the serving cache
        skips such entries and recompiles them after a restart.

        Back ends holding device state may override both hooks to persist
        (or refuse to persist) that state explicitly.
        """
        return pickle.dumps(
            {
                "program": compiled.program,
                "graph": compiled.graph,
                "pass_report": compiled.pass_report,
                "config": compiled.config,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def deserialize_compiled(self, payload: bytes) -> "CompiledProgram":
        """Restore an artifact serialized by :meth:`serialize_compiled`.

        Re-runs only :meth:`prepare` (kernel selection, device setup) on
        this back-end instance — steps 1-3 of the compile workflow are
        restored from the payload, not repeated.
        """
        from repro.backends.executor import _ACCEPTED_ATTR, _REJECTED_ATTR

        state = pickle.loads(payload)
        # Runtime batched-route verdicts are pinned per *process* (they
        # can be data dependent — e.g. a bit-identity gate failure on one
        # particular batch's float values); a restored artifact starts
        # with a clean slate and re-probes its batched routes.
        for fn in state["program"].functions.values():
            for op in fn.ops:
                op.attrs.pop(_REJECTED_ATTR, None)
                op.attrs.pop(_ACCEPTED_ATTR, None)
        self.prepare(state["program"], state["graph"], state["config"])
        return CompiledProgram(
            self, state["program"], state["graph"], state["pass_report"], state["config"]
        )

    def execute(
        self, compiled: CompiledProgram, env: dict[int, np.ndarray], report: ExecutionReport
    ) -> dict[str, object]:
        """Execute the entry function; must be provided by subclasses."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------------
    @staticmethod
    def collect_outputs(entry: TracedFunction, env: dict[int, np.ndarray]) -> dict[str, object]:
        outputs: dict[str, object] = {}
        for value in entry.results:
            outputs[value.name] = env[value.id]
        return outputs
