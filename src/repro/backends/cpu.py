"""CPU back end.

When targeting the CPU, HPVM-HDC translates HDC primitives into HPVM IR
sub-graphs containing data-level parallelism and compiles them with the
host code generator (Section 4.3).  In this reproduction the equivalent is
the :class:`~repro.backends.kernelsets.ReferenceKernelSet`: every HDC
primitive executes as a reference kernel, and the high-level stage
primitives loop over samples, invoking the user's implementation function
once per row — a faithful stand-in for sequential host code generated from
the expanded loop sub-graphs.

The CPU back end performs no host/device data movement, so the execution
report only carries wall-clock time and kernel invocation counts.

For the serving runtime the back end additionally offers a *batched* host
mode (``CPUBackend(batched=True)``): stage primitives execute once over the
whole query hypermatrix using the vectorized library-routine kernels
(one GEMM instead of per-row GEMVs), which is how coalesced micro-batches
amortize the per-sample interpreter overhead on the host.  Batched mode is
the default for serving workers because bit-compatibility is *gated*, not
assumed: every batched stage result must pass the boundary-row
bit-identity check against the per-row reference, falling back to the
per-row loop (and recording why in ``ExecutionReport.notes``) otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, CompiledProgram, ExecutionReport
from repro.backends.executor import HostStageExecutor, OpInterpreter
from repro.backends.kernelsets import LibraryKernelSet, ReferenceKernelSet
from repro.hdcpp.program import Program
from repro.ir.dataflow import DataflowGraph, Target
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["CPUBackend"]


class CPUBackend(Backend):
    """Compile HDC++ programs to sequential host execution."""

    target = Target.CPU
    name = "cpu"

    def __init__(self, seed: int = 0, batched: bool = False):
        self.seed = seed
        #: Execute stage primitives over whole hypermatrices with the
        #: vectorized kernels (used by serving workers); the default
        #: per-row mode matches the generated sequential host code.
        self.batched = batched

    def prepare(self, program: Program, graph: DataflowGraph, config: ApproximationConfig) -> None:
        # Nothing to pre-build: kernels are selected per-operation at
        # execution time and there is no device session to establish.
        return None

    def execute(
        self, compiled: CompiledProgram, env: dict[int, np.ndarray], report: ExecutionReport
    ) -> dict[str, object]:
        if self.batched:
            kernels = LibraryKernelSet(seed=self.seed)
        else:
            kernels = ReferenceKernelSet(seed=self.seed)
        stages = HostStageExecutor(batched=self.batched)
        interpreter = OpInterpreter(compiled.program, kernels, stages)
        interpreter.run_entry(env)
        report.kernel_launches = kernels.kernel_invocations
        report.notes["kernel_set"] = kernels.name
        report.record_stage_counters(stages)
        return self.collect_outputs(compiled.entry, env)
