"""CPU back end.

When targeting the CPU, HPVM-HDC translates HDC primitives into HPVM IR
sub-graphs containing data-level parallelism and compiles them with the
host code generator (Section 4.3).  In this reproduction the equivalent is
the :class:`~repro.backends.kernelsets.ReferenceKernelSet`: every HDC
primitive executes as a reference kernel, and the high-level stage
primitives loop over samples, invoking the user's implementation function
once per row — a faithful stand-in for sequential host code generated from
the expanded loop sub-graphs.

The CPU back end performs no host/device data movement, so the execution
report only carries wall-clock time and kernel invocation counts.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend, CompiledProgram, ExecutionReport
from repro.backends.executor import HostStageExecutor, OpInterpreter
from repro.backends.kernelsets import ReferenceKernelSet
from repro.hdcpp.program import Program
from repro.ir.dataflow import DataflowGraph, Target
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["CPUBackend"]


class CPUBackend(Backend):
    """Compile HDC++ programs to sequential host execution."""

    target = Target.CPU
    name = "cpu"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def prepare(self, program: Program, graph: DataflowGraph, config: ApproximationConfig) -> None:
        # Nothing to pre-build: kernels are selected per-operation at
        # execution time and there is no device session to establish.
        return None

    def execute(
        self, compiled: CompiledProgram, env: dict[int, np.ndarray], report: ExecutionReport
    ) -> dict[str, object]:
        kernels = ReferenceKernelSet(seed=self.seed)
        interpreter = OpInterpreter(compiled.program, kernels, HostStageExecutor(batched=False))
        interpreter.run_entry(env)
        report.kernel_launches = kernels.kernel_invocations
        report.notes["kernel_set"] = kernels.name
        return self.collect_outputs(compiled.entry, env)
