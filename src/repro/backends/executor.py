"""Execution engine shared by the CPU and GPU back ends.

The :class:`OpInterpreter` walks the operation stream of a traced function
in order, keeping an environment from SSA value ids to concrete NumPy
arrays, and dispatches each operation to the back end's kernel set.  The
high-level stage primitives and Hetero-C++ parallel maps are handled by
:class:`HostStageExecutor`, which either

* loops over samples, invoking the implementation function once per row
  (the CPU strategy), or
* executes the implementation function once over the whole query
  hypermatrix using the batched kernels (the GPU strategy — the analogue of
  lowering the stage onto cuBLAS/Thrust batched routines), falling back to
  the per-row loop when the implementation is not batchable.

Implementation functions may be traced functions (interpreted with the same
kernel set — which is how the approximation transforms reach them) or plain
Python callables executed eagerly with :class:`HyperVector` /
:class:`HyperMatrix` arguments (needed for data-dependent training rules).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import Operation, Program, TracedFunction
from repro.hdcpp.types import HyperMatrixType, HyperVectorType
from repro.ir.ops import Opcode
from repro.backends.kernelsets import KernelSet

__all__ = ["OpInterpreter", "HostStageExecutor", "ExecutionError"]

_STAGE_OPS = {Opcode.ENCODING_LOOP, Opcode.TRAINING_LOOP, Opcode.INFERENCE_LOOP}

#: Errors that indicate an implementation function is not batchable (it was
#: written for a single row and chokes on a whole hypermatrix).  Anything
#: else — a genuine kernel or implementation bug — must propagate.
_BATCH_FALLBACK_ERRORS = (TypeError, ValueError, IndexError)


class ExecutionError(RuntimeError):
    """Raised when a compiled program cannot be executed."""


class OpInterpreter:
    """Interprets traced functions with a back-end kernel set."""

    def __init__(self, program: Program, kernels: KernelSet, stage_executor: "HostStageExecutor"):
        self.program = program
        self.kernels = kernels
        self.stages = stage_executor

    # -- function-level execution -------------------------------------------------------
    def run_function(self, fn: TracedFunction, args: list[np.ndarray]) -> list[np.ndarray]:
        if len(args) != len(fn.params):
            raise ExecutionError(
                f"{fn.name} expects {len(fn.params)} arguments, got {len(args)}"
            )
        env: dict[int, np.ndarray] = {p.id: a for p, a in zip(fn.params, args)}
        self.run_ops(fn.ops, env)
        return [env[r.id] for r in fn.results]

    def run_entry(self, env: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        entry = self.program.entry_function
        self.run_ops(entry.ops, env)
        return env

    # -- op-level execution ----------------------------------------------------------------
    def run_ops(self, ops: list[Operation], env: dict[int, np.ndarray]) -> None:
        for op in ops:
            self.execute_op(op, env)

    def execute_op(self, op: Operation, env: dict[int, np.ndarray]) -> None:
        inputs = [env[v.id] for v in op.operands]
        if op.opcode in _STAGE_OPS:
            result = self.stages.execute_stage(self, op, inputs)
        elif op.opcode == Opcode.PARALLEL_MAP:
            result = self.stages.execute_parallel_map(self, op, inputs)
        else:
            result = self.kernels.run(op, inputs)
        if op.result is not None:
            env[op.result.id] = result


class HostStageExecutor:
    """Stage/parallel-map execution strategy for CPU and GPU back ends."""

    def __init__(self, batched: bool):
        #: ``True`` for the GPU strategy (execute the implementation once
        #: over the whole dataset), ``False`` for the per-sample CPU loop.
        self.batched = batched
        #: Reason of the most recent batched-execution fallback (``None``
        #: when every batched attempt so far succeeded).  Back ends surface
        #: this in ``ExecutionReport.notes["batched_fallback"]``.
        self.last_fallback: Optional[str] = None

    def _record_fallback(self, op: Operation, exc: Exception) -> None:
        self.last_fallback = f"{op.opcode}: {type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------ helpers --
    def _resolve_impl(
        self, interpreter: OpInterpreter, op: Operation
    ) -> tuple[Optional[TracedFunction], Optional[Callable]]:
        impl_name = op.attrs.get("impl")
        if impl_name is not None:
            return interpreter.program.function(impl_name), None
        impl_callable = op.attrs.get("impl_callable")
        if impl_callable is not None:
            return None, impl_callable
        raise ExecutionError(f"{op.opcode} has no implementation function")

    @staticmethod
    def _wrap(array: np.ndarray, like_value) -> Union[HyperVector, HyperMatrix, np.ndarray]:
        """Wrap a NumPy array for an eager implementation callable."""
        element = getattr(like_value.type, "element", None)
        arr = np.asarray(array)
        if element is None:
            return arr
        if arr.ndim == 1:
            return HyperVector(arr, element)
        if arr.ndim == 2:
            return HyperMatrix(arr, element)
        return arr

    @staticmethod
    def _row_of(array: np.ndarray, index: int) -> np.ndarray:
        return np.asarray(array)[index]

    def _call_impl_traced(
        self, interpreter: OpInterpreter, impl: TracedFunction, args: list[np.ndarray]
    ) -> np.ndarray:
        results = interpreter.run_function(impl, args)
        if len(results) != 1:
            raise ExecutionError(f"{impl.name} must return exactly one value inside a stage")
        return results[0]

    def _call_impl_callable(self, impl: Callable, args: list) -> np.ndarray:
        return as_numpy(impl(*args))

    # ------------------------------------------------------------------ stages --
    def execute_stage(self, interpreter: OpInterpreter, op: Operation, inputs: list[np.ndarray]):
        if op.opcode == Opcode.ENCODING_LOOP:
            return self._encoding(interpreter, op, inputs)
        if op.opcode == Opcode.INFERENCE_LOOP:
            return self._inference(interpreter, op, inputs)
        if op.opcode == Opcode.TRAINING_LOOP:
            return self._training(interpreter, op, inputs)
        raise ExecutionError(f"unsupported stage {op.opcode}")

    def _encoding(self, interpreter, op, inputs):
        queries, encoder = inputs[0], inputs[1]
        traced, eager = self._resolve_impl(interpreter, op)
        if self.batched:
            try:
                return self._apply_once(interpreter, op, traced, eager, [queries, encoder])
            except _BATCH_FALLBACK_ERRORS as exc:
                self._record_fallback(op, exc)  # fall back to the per-row loop below
        rows = []
        for i in range(np.asarray(queries).shape[0]):
            rows.append(
                self._apply_once(interpreter, op, traced, eager, [self._row_of(queries, i), encoder])
            )
        return np.stack(rows)

    def _inference(self, interpreter, op, inputs):
        queries, classes = inputs[0], inputs[1]
        extra = list(inputs[2:]) if op.attrs.get("has_encoder") else []
        traced, eager = self._resolve_impl(interpreter, op)
        if self.batched:
            try:
                out = self._apply_once(interpreter, op, traced, eager, [queries, classes] + extra)
                return np.asarray(out, dtype=np.int64).reshape(-1)
            except _BATCH_FALLBACK_ERRORS as exc:
                self._record_fallback(op, exc)
        labels = []
        for i in range(np.asarray(queries).shape[0]):
            out = self._apply_once(
                interpreter, op, traced, eager, [self._row_of(queries, i), classes] + extra
            )
            labels.append(int(np.asarray(out).reshape(())))
        return np.asarray(labels, dtype=np.int64)

    #: Mini-batch size used when a batched training implementation is
    #: available (the same default the CUDA baselines use).
    training_batch_size = 256

    def _training(self, interpreter, op, inputs):
        queries, labels, classes = inputs[0], inputs[1], inputs[2]
        extra = list(inputs[3:]) if op.attrs.get("has_encoder") else []
        traced, eager = self._resolve_impl(interpreter, op)
        epochs = int(op.attrs.get("epochs", 1))
        labels_arr = np.asarray(labels, dtype=np.int64).reshape(-1)
        current = np.array(classes, copy=True)
        queries_arr = np.asarray(queries)

        batch_impl = op.attrs.get("batch_impl")
        if self.batched and batch_impl is not None:
            # GPU strategy: one library call per mini-batch, mirroring the
            # scatter-add training kernels of the CUDA baselines.
            size = self.training_batch_size
            for _ in range(epochs):
                for begin in range(0, queries_arr.shape[0], size):
                    args = [
                        self._wrap(queries_arr[begin : begin + size], op.operands[0]),
                        labels_arr[begin : begin + size],
                        self._wrap(current, op.operands[2]),
                    ]
                    if extra:
                        args.append(self._wrap(extra[0], op.operands[3]))
                    current = as_numpy(batch_impl(*args))
            return current

        if eager is None:
            raise ExecutionError(
                "training_loop on CPU/GPU requires a Python-callable implementation "
                "(the update rule is data dependent); traced implementations are only "
                "used by the accelerator back ends"
            )
        for _ in range(epochs):
            for i in range(queries_arr.shape[0]):
                args = [
                    self._wrap(queries_arr[i], op.operands[0]),
                    int(labels_arr[i]),
                    self._wrap(current, op.operands[2]),
                ]
                if extra:
                    args.append(self._wrap(extra[0], op.operands[3]))
                current = as_numpy(eager(*args))
        return current

    def _apply_once(self, interpreter, op, traced, eager, args: list[np.ndarray]) -> np.ndarray:
        if traced is not None:
            return self._call_impl_traced(interpreter, traced, [np.asarray(a) for a in args])
        wrapped = [self._wrap(a, v) for a, v in zip(args, op.operands)]
        return self._call_impl_callable(eager, wrapped)

    # ------------------------------------------------------------ parallel map --
    def execute_parallel_map(self, interpreter: OpInterpreter, op: Operation, inputs: list[np.ndarray]):
        data = inputs[0]
        extra = inputs[1] if len(inputs) > 1 else None
        traced, eager = self._resolve_impl(interpreter, op)
        if self.batched:
            try:
                args = [data] if extra is None else [data, extra]
                return np.asarray(self._apply_once(interpreter, op, traced, eager, args))
            except _BATCH_FALLBACK_ERRORS as exc:
                self._record_fallback(op, exc)
        rows = []
        for i in range(np.asarray(data).shape[0]):
            args = [self._row_of(data, i)]
            if extra is not None:
                args.append(extra)
            rows.append(self._apply_once(interpreter, op, traced, eager, args))
        return np.stack(rows)
