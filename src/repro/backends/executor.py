"""Execution engine shared by the CPU and GPU back ends.

The :class:`OpInterpreter` walks the operation stream of a traced function
in order, keeping an environment from SSA value ids to concrete NumPy
arrays, and dispatches each operation to the back end's kernel set.  The
high-level stage primitives and Hetero-C++ parallel maps are handled by
:class:`HostStageExecutor` through one **vectorized-dispatch path**:

* in batched mode (the GPU strategy, and the serving-default CPU mode) a
  stage first tries the *batched route* — the operation's declared
  ``batch_impl``, or auto-vectorization of the per-row implementation as
  one whole-hypermatrix call — and accepts its result only when it passes
  the **boundary-row bit-identity gate**: the first and last row are
  recomputed through the per-row reference and compared exactly;
* on a fallback error, a shape mismatch or a gate rejection, the stage
  runs the original per-row loop, so results never change — only the
  number of Python-level iterations does.  The fallback reason is
  recorded per stage and surfaced through
  ``ExecutionReport.notes["stage_fallback_reasons"]`` so serving metrics
  can expose deployments that silently degrade to the slow path.

Implementation functions may be traced functions (interpreted with the same
kernel set — which is how the approximation transforms reach them) or plain
Python callables executed eagerly with :class:`HyperVector` /
:class:`HyperMatrix` arguments (needed for data-dependent training rules).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import Operation, Program, TracedFunction
from repro.hdcpp.types import HyperMatrixType, HyperVectorType
from repro.ir.ops import Opcode
from repro.backends.kernelsets import KernelSet

__all__ = ["OpInterpreter", "HostStageExecutor", "ExecutionError"]

_STAGE_OPS = {Opcode.ENCODING_LOOP, Opcode.TRAINING_LOOP, Opcode.INFERENCE_LOOP}

#: Errors that indicate an implementation function is not batchable (it was
#: written for a single row and chokes on a whole hypermatrix).  Anything
#: else — a genuine kernel or implementation bug — must propagate.
_BATCH_FALLBACK_ERRORS = (TypeError, ValueError, IndexError)

#: Runtime attribute caching a rejected batched route on the operation of
#: the *compiled clone* (the traced source program is never mutated).
#: Retrying the whole-batch attempt on every execution would make a
#: permanently falling-back model strictly slower than the plain per-row
#: path, so a rejection — row-only implementation, wrong shape, or a
#: bit-identity gate failure — pins the per-row loop for the rest of this
#: compiled program's life in this process.  The gate verdict *is* data
#: dependent (a float-valued route may disagree on one batch's values and
#: agree on the next), so pinning deliberately trades a possibly
#: recoverable route for correct, predictable cost; the pin does not
#: outlive the process (``Backend.deserialize_compiled`` strips it, so
#: cache-restored artifacts re-probe).  Writes are GIL-atomic dict
#: stores, so handles shared across worker threads at worst attempt the
#: doomed route once per thread.
_REJECTED_ATTR = "_batched_route_rejected"

#: Runtime attribute caching an *accepted* gate verdict per batch size on
#: the operation of the compiled clone: ``{n_rows: (shape, dtype)}``.
#: Handles compile per (program, bucket), so one entry is one
#: (compiled program, bucket) verdict.  Once a bucket's batched route has
#: proven bit-identical on its boundary rows, steady-state batches of the
#: same bucket skip the two per-row reference rows and their exact
#: comparisons — the dominant per-batch gate cost — and only re-verify
#: the result's shape and dtype (O(1)).  Like the rejection pin, this
#: trades per-batch re-verification for predictable cost: the verdict is
#: trusted for the rest of this compiled program's life in this process.
#: Hot-swaps re-probe for free — a swapped servable has a new
#: content-hashed signature, hence freshly compiled clones without the
#: attribute — and ``Backend.deserialize_compiled`` strips it, so
#: cache-restored artifacts re-probe too.
_ACCEPTED_ATTR = "_batched_route_accepted"


class ExecutionError(RuntimeError):
    """Raised when a compiled program cannot be executed."""


class OpInterpreter:
    """Interprets traced functions with a back-end kernel set."""

    def __init__(self, program: Program, kernels: KernelSet, stage_executor: "HostStageExecutor"):
        self.program = program
        self.kernels = kernels
        self.stages = stage_executor

    # -- function-level execution -------------------------------------------------------
    def run_function(self, fn: TracedFunction, args: list[np.ndarray]) -> list[np.ndarray]:
        if len(args) != len(fn.params):
            raise ExecutionError(
                f"{fn.name} expects {len(fn.params)} arguments, got {len(args)}"
            )
        env: dict[int, np.ndarray] = {p.id: a for p, a in zip(fn.params, args)}
        self.run_ops(fn.ops, env)
        return [env[r.id] for r in fn.results]

    def run_entry(self, env: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        entry = self.program.entry_function
        self.run_ops(entry.ops, env)
        return env

    # -- op-level execution ----------------------------------------------------------------
    def run_ops(self, ops: list[Operation], env: dict[int, np.ndarray]) -> None:
        for op in ops:
            self.execute_op(op, env)

    def execute_op(self, op: Operation, env: dict[int, np.ndarray]) -> None:
        inputs = [env[v.id] for v in op.operands]
        if op.opcode in _STAGE_OPS:
            result = self.stages.execute_stage(self, op, inputs)
        elif op.opcode == Opcode.PARALLEL_MAP:
            result = self.stages.execute_parallel_map(self, op, inputs)
        else:
            result = self.kernels.run(op, inputs)
        if op.result is not None:
            env[op.result.id] = result


class HostStageExecutor:
    """Stage/parallel-map execution strategy for CPU and GPU back ends."""

    def __init__(self, batched: bool):
        #: ``True`` for the batched strategy (try one whole-hypermatrix
        #: call per stage, gated on boundary-row bit identity), ``False``
        #: for the per-sample reference loop.
        self.batched = batched
        #: Reason of the most recent batched-execution fallback (``None``
        #: when every batched attempt so far succeeded).  Back ends surface
        #: this in ``ExecutionReport.notes["batched_fallback"]``.
        self.last_fallback: Optional[str] = None
        #: Stage/parallel-map executions served by the batched route
        #: (gate passed) during this executor's lifetime.
        self.vectorized_stages = 0
        #: Stage/parallel-map executions that fell back to the per-row
        #: loop.  Both counters only move in batched mode: the per-row
        #: loop of an unbatched executor is the configured strategy, not
        #: a degradation.
        self.fallback_stages = 0
        #: Per-stage fallback reasons, keyed by a human-readable stage
        #: label (``opcode[impl]``).
        self.stage_fallbacks: dict[str, str] = {}
        #: Per-execution profiling records, appended by every stage /
        #: parallel-map run: ``{"stage", "start", "end", "seconds",
        #: "gate_seconds", "rows", "route"}`` with monotonic-clock bounds
        #: (the same clock request traces use, so the entries double as
        #: per-stage child spans).  Back ends surface the list in
        #: ``ExecutionReport.notes["stage_profile"]``; executors are
        #: created fresh per execution, so the list is per-run.
        self.profile: list[dict] = []
        #: Lifetime seconds spent inside the bit-identity gate (boundary
        #: reference rows + exact comparisons); per-entry deltas land in
        #: ``profile[i]["gate_seconds"]``.
        self.gate_seconds = 0.0

    # ------------------------------------------------------------- accounting --
    @staticmethod
    def _stage_label(op: Operation) -> str:
        impl = op.attrs.get("impl")
        if impl is None:
            impl_callable = op.attrs.get("impl_callable")
            impl = getattr(impl_callable, "__name__", repr(impl_callable))
        label = f"{op.opcode.value}[{impl}]"
        if op.result is not None:
            # Disambiguate two stages sharing an opcode and impl (e.g.
            # HyperOMS encodes both the library and the query spectra with
            # the same callable) by the result's SSA name.
            label += f"@%{op.result.name}"
        return label

    def _record_fallback(self, op: Operation, reason: str) -> None:
        self.fallback_stages += 1
        self.last_fallback = f"{op.opcode}: {reason}"
        self.stage_fallbacks[self._stage_label(op)] = reason

    def _record_vectorized(self, op: Operation) -> None:
        self.vectorized_stages += 1

    # ------------------------------------------------------------------ helpers --
    def _resolve_impl(
        self, interpreter: OpInterpreter, op: Operation
    ) -> tuple[Optional[TracedFunction], Optional[Callable]]:
        impl_name = op.attrs.get("impl")
        if impl_name is not None:
            return interpreter.program.function(impl_name), None
        impl_callable = op.attrs.get("impl_callable")
        if impl_callable is not None:
            return None, impl_callable
        raise ExecutionError(f"{op.opcode} has no implementation function")

    @staticmethod
    def _wrap(array: np.ndarray, like_value) -> Union[HyperVector, HyperMatrix, np.ndarray]:
        """Wrap a NumPy array for an eager implementation callable."""
        element = getattr(like_value.type, "element", None)
        arr = np.asarray(array)
        if element is None:
            return arr
        if arr.ndim == 1:
            return HyperVector(arr, element)
        if arr.ndim == 2:
            return HyperMatrix(arr, element)
        return arr

    @staticmethod
    def _row_of(array: np.ndarray, index: int) -> np.ndarray:
        return np.asarray(array)[index]

    def _call_impl_traced(
        self, interpreter: OpInterpreter, impl: TracedFunction, args: list[np.ndarray]
    ) -> np.ndarray:
        results = interpreter.run_function(impl, args)
        if len(results) != 1:
            raise ExecutionError(f"{impl.name} must return exactly one value inside a stage")
        return results[0]

    def _call_impl_callable(self, impl: Callable, args: list) -> np.ndarray:
        return as_numpy(impl(*args))

    def _apply_once(self, interpreter, op, traced, eager, args: list[np.ndarray]) -> np.ndarray:
        if traced is not None:
            # np.asarray would strip a PackedBits class memory down to raw
            # uint64 words; packed operands pass through unchanged.
            return self._call_impl_traced(
                interpreter,
                traced,
                [a if getattr(a, "__packed_bits__", False) else np.asarray(a) for a in args],
            )
        wrapped = [self._wrap(a, v) for a, v in zip(args, op.operands)]
        return self._call_impl_callable(eager, wrapped)

    @staticmethod
    def _empty_result(op: Operation) -> np.ndarray:
        """The zero-row result of a stage applied to an empty batch."""
        rtype = getattr(op.result, "type", None)
        shape = getattr(rtype, "shape", None)
        element = getattr(rtype, "element", None)
        if shape is not None:
            dtype = element.numpy_dtype if element is not None else np.float32
            return np.zeros(tuple(shape), dtype=dtype)
        return np.zeros((0,), dtype=np.float32)

    # ------------------------------------------------ vectorized dispatch path --
    def _try_batched(
        self,
        interpreter: OpInterpreter,
        op: Operation,
        traced: Optional[TracedFunction],
        eager: Optional[Callable],
        batched_args: list,
        row_result: Callable[[int], np.ndarray],
        n_rows: int,
        transform: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> Optional[np.ndarray]:
        """One whole-hypermatrix attempt behind the bit-identity gate.

        Tries the declared ``batch_impl`` first, then auto-vectorization
        (the per-row implementation invoked once over the whole batch).
        The result is accepted only if its boundary rows are exactly equal
        to the per-row reference (``row_result``); otherwise the fallback
        reason is recorded and ``None`` returned so the caller runs the
        per-row loop.  Fallback-class errors (shape/type trouble from a
        row-only implementation) are recorded too; genuine bugs propagate.
        """
        cached_rejection = op.attrs.get(_REJECTED_ATTR)
        if cached_rejection is not None:
            # This operation's batched route was already rejected on an
            # earlier execution of the same compiled program (row-only
            # implementation, shape mismatch or gate failure).  None of
            # those verdicts can improve with different data in a way
            # that would be safe to trust, so skip the doomed whole-batch
            # attempt and go straight to the per-row loop — a permanently
            # falling-back model costs what the per-row path always cost,
            # instead of per-row plus a discarded batched run per batch.
            self._record_fallback(op, cached_rejection)
            return None
        batch_impl = op.attrs.get("batch_impl")
        route = "batch_impl" if batch_impl is not None else "auto-vectorization"
        try:
            if batch_impl is not None:
                wrapped = [self._wrap(a, v) for a, v in zip(batched_args, op.operands)]
                out = as_numpy(batch_impl(*wrapped))
            else:
                out = np.asarray(self._apply_once(interpreter, op, traced, eager, batched_args))
        except _BATCH_FALLBACK_ERRORS as exc:
            self._reject(op, f"{type(exc).__name__}: {exc}")
            return None
        out = np.asarray(out)
        if transform is not None:
            out = transform(out)
        accepted = op.attrs.get(_ACCEPTED_ATTR)
        if accepted is not None:
            cached_verdict = accepted.get(n_rows)
            if cached_verdict is not None and out.shape == cached_verdict[0] and out.dtype == cached_verdict[1]:
                # This (compiled program, bucket) already passed the
                # boundary-row gate on an earlier batch; skip the two
                # reference rows and accept on the cheap shape/dtype
                # re-check.  A shape or dtype surprise falls through to
                # the full gate below, which re-probes (and possibly
                # rejects) as if no verdict were cached.
                self._record_vectorized(op)
                return out
        # Everything from here to the verdict is gate cost (boundary
        # reference rows + exact comparisons) — timed separately so the
        # profile can show what bit-identity checking costs per stage.
        gate_started = time.monotonic()
        try:
            first = np.asarray(row_result(0))
            if out.ndim != first.ndim + 1 or out.shape[0] != n_rows or out.shape[1:] != first.shape:
                self._reject(
                    op,
                    f"{route} returned shape {out.shape}, expected ({n_rows},) + {first.shape}",
                )
                return None
            if out.dtype != first.dtype:
                # Bit identity includes the byte representation: a value-equal
                # result in a different dtype would make the program's output
                # depend on which back end ran it.
                self._reject(
                    op, f"{route} returned dtype {out.dtype}, per-row reference is {first.dtype}"
                )
                return None
            last = first if n_rows == 1 else np.asarray(row_result(n_rows - 1))
            if not (np.array_equal(out[0], first) and np.array_equal(out[-1], last)):
                self._reject(
                    op,
                    f"{route} is not bit-identical to the per-row reference on the boundary rows",
                )
                return None
        finally:
            self.gate_seconds += time.monotonic() - gate_started
        op.attrs.setdefault(_ACCEPTED_ATTR, {})[n_rows] = (out.shape, out.dtype)
        self._record_vectorized(op)
        return out

    def _reject(self, op: Operation, reason: str) -> None:
        """Record a fallback and pin the rejection for future executions."""
        op.attrs[_REJECTED_ATTR] = reason
        self._record_fallback(op, reason)

    # ---------------------------------------------------------------- profiling --
    def _run_profiled(self, handler, interpreter: OpInterpreter, op: Operation, inputs: list):
        """Run one stage/parallel-map handler under the profiling hook.

        Route attribution reads the vectorized/fallback counter deltas, so
        it agrees exactly with the accounting the serving metrics consume;
        ``per-row`` marks the unbatched strategy (no attempt was made).
        """
        start = time.monotonic()
        vectorized_before = self.vectorized_stages
        fallbacks_before = self.fallback_stages
        gate_before = self.gate_seconds
        try:
            return handler(interpreter, op, inputs)
        finally:
            end = time.monotonic()
            if self.vectorized_stages > vectorized_before:
                route = "vectorized"
            elif self.fallback_stages > fallbacks_before:
                route = "fallback"
            else:
                route = "per-row"
            rows = 0
            if inputs:
                head = np.asarray(inputs[0])
                rows = int(head.shape[0]) if head.ndim else 0
            self.profile.append(
                {
                    "stage": self._stage_label(op),
                    "start": start,
                    "end": end,
                    "seconds": end - start,
                    "gate_seconds": self.gate_seconds - gate_before,
                    "rows": rows,
                    "route": route,
                }
            )

    # ------------------------------------------------------------------ stages --
    def execute_stage(self, interpreter: OpInterpreter, op: Operation, inputs: list[np.ndarray]):
        if op.opcode == Opcode.ENCODING_LOOP:
            handler = self._encoding
        elif op.opcode == Opcode.INFERENCE_LOOP:
            handler = self._inference
        elif op.opcode == Opcode.TRAINING_LOOP:
            handler = self._training
        else:
            raise ExecutionError(f"unsupported stage {op.opcode}")
        return self._run_profiled(handler, interpreter, op, inputs)

    def _encoding(self, interpreter, op, inputs):
        queries, encoder = inputs[0], inputs[1]
        traced, eager = self._resolve_impl(interpreter, op)
        n_rows = int(np.asarray(queries).shape[0])
        if n_rows == 0:
            return self._empty_result(op)
        cache: dict[int, np.ndarray] = {}

        def row_result(i: int) -> np.ndarray:
            if i not in cache:
                cache[i] = np.asarray(
                    self._apply_once(interpreter, op, traced, eager, [self._row_of(queries, i), encoder])
                )
            return cache[i]

        if self.batched:
            out = self._try_batched(
                interpreter, op, traced, eager, [queries, encoder], row_result, n_rows
            )
            if out is not None:
                return out
        return np.stack([row_result(i) for i in range(n_rows)])

    def _inference(self, interpreter, op, inputs):
        queries, classes = inputs[0], inputs[1]
        extra = list(inputs[2:]) if op.attrs.get("has_encoder") else []
        traced, eager = self._resolve_impl(interpreter, op)
        n_rows = int(np.asarray(queries).shape[0])
        if n_rows == 0:
            return np.zeros((0,), dtype=np.int64)
        cache: dict[int, np.ndarray] = {}

        def row_result(i: int) -> np.ndarray:
            if i not in cache:
                out = self._apply_once(
                    interpreter, op, traced, eager, [self._row_of(queries, i), classes] + extra
                )
                cache[i] = np.asarray(out, dtype=np.int64).reshape(())
            return cache[i]

        if self.batched:
            out = self._try_batched(
                interpreter,
                op,
                traced,
                eager,
                [queries, classes] + extra,
                row_result,
                n_rows,
                transform=lambda a: np.asarray(a, dtype=np.int64).reshape(-1),
            )
            if out is not None:
                return out
        return np.asarray([int(row_result(i)) for i in range(n_rows)], dtype=np.int64)

    #: Mini-batch size used when a batched training implementation is
    #: available (the same default the CUDA baselines use).
    training_batch_size = 256

    def _training(self, interpreter, op, inputs):
        queries, labels, classes = inputs[0], inputs[1], inputs[2]
        extra = list(inputs[3:]) if op.attrs.get("has_encoder") else []
        traced, eager = self._resolve_impl(interpreter, op)
        epochs = int(op.attrs.get("epochs", 1))
        labels_arr = np.asarray(labels, dtype=np.int64).reshape(-1)
        current = np.array(classes, copy=True)
        queries_arr = np.asarray(queries)

        batch_impl = op.attrs.get("batch_impl")
        if self.batched and batch_impl is not None:
            # GPU strategy: one library call per mini-batch, mirroring the
            # scatter-add training kernels of the CUDA baselines.  The
            # bit-identity gate does not apply here: mini-batched training
            # is a *declared* semantic (update ordering differs from the
            # per-sample rule by construction), so the declared route is
            # trusted and counted as vectorized.
            self._record_vectorized(op)
            size = self.training_batch_size
            for _ in range(epochs):
                for begin in range(0, queries_arr.shape[0], size):
                    args = [
                        self._wrap(queries_arr[begin : begin + size], op.operands[0]),
                        labels_arr[begin : begin + size],
                        self._wrap(current, op.operands[2]),
                    ]
                    if extra:
                        args.append(self._wrap(extra[0], op.operands[3]))
                    current = as_numpy(batch_impl(*args))
            return current

        if self.batched:
            self._record_fallback(
                op, "training_loop has no batch_impl (data-dependent per-sample update rule)"
            )
        if eager is None:
            raise ExecutionError(
                "training_loop on CPU/GPU requires a Python-callable implementation "
                "(the update rule is data dependent); traced implementations are only "
                "used by the accelerator back ends"
            )
        for _ in range(epochs):
            for i in range(queries_arr.shape[0]):
                args = [
                    self._wrap(queries_arr[i], op.operands[0]),
                    int(labels_arr[i]),
                    self._wrap(current, op.operands[2]),
                ]
                if extra:
                    args.append(self._wrap(extra[0], op.operands[3]))
                current = as_numpy(eager(*args))
        return current

    # ------------------------------------------------------------ parallel map --
    def execute_parallel_map(self, interpreter: OpInterpreter, op: Operation, inputs: list[np.ndarray]):
        return self._run_profiled(self._parallel_map, interpreter, op, inputs)

    def _parallel_map(self, interpreter: OpInterpreter, op: Operation, inputs: list[np.ndarray]):
        data = inputs[0]
        extra = inputs[1] if len(inputs) > 1 else None
        traced, eager = self._resolve_impl(interpreter, op)
        n_rows = int(np.asarray(data).shape[0])
        if n_rows == 0:
            return self._empty_result(op)
        batched_args = [data] if extra is None else [data, extra]
        cache: dict[int, np.ndarray] = {}

        def row_result(i: int) -> np.ndarray:
            if i not in cache:
                args = [self._row_of(data, i)]
                if extra is not None:
                    args.append(extra)
                cache[i] = np.asarray(self._apply_once(interpreter, op, traced, eager, args))
            return cache[i]

        if self.batched:
            out = self._try_batched(
                interpreter, op, traced, eager, batched_args, row_result, n_rows
            )
            if out is not None:
                return out
        return np.stack([row_result(i) for i in range(n_rows)])
