"""GPU back end.

When targeting NVIDIA GPUs, HPVM-HDC lowers HDC primitives directly to
cuBLAS calls, Thrust calls, or CUDA kernels instead of generic HPVM IR
(Section 4.3).  Offline we have no GPU, so this back end substitutes the
:class:`~repro.backends.kernelsets.LibraryKernelSet` — whole-hypermatrix
"library routine" kernels — and an analytical :class:`GPUDeviceModel` that
accounts for the host/device transfers of the program inputs and outputs
and the per-primitive kernel-launch overhead.  The substitution preserves
the properties the paper's evaluation rests on: stage primitives execute as
a handful of coarse batched routines over device-resident data, and the
approximation transforms shrink both the data transferred and the work per
routine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import Backend, CompiledProgram, ExecutionReport
from repro.backends.executor import HostStageExecutor, OpInterpreter
from repro.backends.kernelsets import LibraryKernelSet
from repro.hdcpp.program import Program
from repro.hdcpp.types import HyperMatrixType, HyperVectorType
from repro.ir.dataflow import DataflowGraph, Target
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["GPUBackend", "GPUDeviceModel"]


@dataclass(frozen=True)
class GPUDeviceModel:
    """Analytical model of the discrete GPU used for accounting.

    Defaults approximate the RTX 2080 Ti of the paper's evaluation setup:
    PCIe 3.0 x16 transfers and a fixed launch overhead per lowered kernel.
    Only the *modeled* quantities in the execution report come from this
    class; wall-clock time is measured on the host.
    """

    pcie_bytes_per_second: float = 12e9
    kernel_launch_seconds: float = 5e-6
    device_power_watts: float = 250.0

    def transfer_seconds(self, num_bytes: float) -> float:
        return num_bytes / self.pcie_bytes_per_second

    def launch_seconds(self, launches: int) -> float:
        return launches * self.kernel_launch_seconds


class GPUBackend(Backend):
    """Compile HDC++ programs to batched library-routine execution."""

    target = Target.GPU
    name = "gpu"

    def __init__(self, seed: int = 0, device_model: GPUDeviceModel | None = None):
        self.seed = seed
        self.device_model = device_model or GPUDeviceModel()

    def prepare(self, program: Program, graph: DataflowGraph, config: ApproximationConfig) -> None:
        return None

    # -- data movement accounting -----------------------------------------------------
    def _value_bytes(self, value) -> float:
        if isinstance(value.type, (HyperMatrixType, HyperVectorType)):
            return value.type.num_bytes
        return 8.0

    def execute(
        self, compiled: CompiledProgram, env: dict[int, np.ndarray], report: ExecutionReport
    ) -> dict[str, object]:
        kernels = LibraryKernelSet(seed=self.seed)
        stages = HostStageExecutor(batched=True)
        interpreter = OpInterpreter(compiled.program, kernels, stages)

        # Program inputs are copied to the device once, before execution —
        # the binarized inputs of Section 5.3 therefore cost 32x less here.
        for param in compiled.entry.params:
            report.bytes_to_device += self._value_bytes(param)

        interpreter.run_entry(env)

        for result in compiled.entry.results:
            report.bytes_from_device += self._value_bytes(result)

        report.kernel_launches = kernels.kernel_launches
        report.transfer_seconds = self.device_model.transfer_seconds(
            report.bytes_to_device + report.bytes_from_device
        )
        report.device_seconds = report.transfer_seconds + self.device_model.launch_seconds(
            kernels.kernel_launches
        )
        report.energy_joules = report.device_seconds * self.device_model.device_power_watts
        report.notes["kernel_set"] = kernels.name
        report.record_stage_counters(stages)
        return self.collect_outputs(compiled.entry, env)
