"""HPVM-HDC back ends (Section 4.3 of the paper).

Four back ends are provided, mirroring the paper's targets:

* :class:`~repro.backends.cpu.CPUBackend` — lowers HDC primitives into
  per-row loop kernels (the analogue of expanding primitives into HPVM IR
  sub-graphs and compiling them for the host CPU).
* :class:`~repro.backends.gpu.GPUBackend` — lowers HDC primitives into
  batched "library routine" kernels (the analogue of cuBLAS / Thrust /
  CUDA-kernel lowering) with a device model accounting for transfers and
  kernel launches.
* :class:`~repro.backends.asic.DigitalASICBackend` — offloads the stage
  primitives to the digital HDC ASIC simulator through its functional
  interface, generating the call sequence of Listing 6.
* :class:`~repro.backends.reram.ReRAMBackend` — the same for the ReRAM
  HDC accelerator simulator.

:func:`compile` is the user-facing entry point: it clones the traced
program, runs the approximation passes requested by the
:class:`~repro.transforms.ApproximationConfig`, lowers to HPVM-HDC IR,
verifies it and hands it to the selected back end.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.backends.asic import DigitalASICBackend
from repro.backends.base import (
    Backend,
    BoundProgram,
    CompiledProgram,
    ExecutionReport,
    ExecutionResult,
)
from repro.backends.cpu import CPUBackend
from repro.backends.gpu import GPUBackend
from repro.backends.reram import ReRAMBackend
from repro.hdcpp.program import Program
from repro.ir.dataflow import Target
from repro.transforms.pipeline import ApproximationConfig

__all__ = [
    "Backend",
    "BoundProgram",
    "CompiledProgram",
    "ExecutionReport",
    "ExecutionResult",
    "CPUBackend",
    "GPUBackend",
    "DigitalASICBackend",
    "ReRAMBackend",
    "compile",
    "compile_cached",
    "backend_for_target",
]

_BACKENDS = {
    Target.CPU: CPUBackend,
    Target.GPU: GPUBackend,
    Target.HDC_ASIC: DigitalASICBackend,
    Target.HDC_RERAM: ReRAMBackend,
}


def backend_for_target(target: Union[str, Target], **kwargs) -> Backend:
    """Instantiate the back end responsible for ``target``."""
    target = Target(target) if not isinstance(target, Target) else target
    return _BACKENDS[target](**kwargs)


def compile(
    program: Program,
    target: Union[str, Target] = Target.CPU,
    config: Optional[ApproximationConfig] = None,
    **backend_kwargs,
) -> CompiledProgram:
    """Compile a traced HDC++ program for a hardware target.

    Args:
        program: The traced application.
        target: ``"cpu"``, ``"gpu"``, ``"hdc_asic"`` or ``"hdc_reram"``
            (or a :class:`~repro.ir.dataflow.Target`).
        config: Optional approximation configuration (automatic
            binarization and/or reduction perforation).
        **backend_kwargs: Extra arguments forwarded to the back end
            constructor (e.g. a custom device simulator instance).

    Returns:
        A :class:`CompiledProgram` ready to execute with concrete inputs.
    """
    backend = backend_for_target(target, **backend_kwargs)
    return backend.compile(program, config=config)


def compile_cached(
    program: Program,
    target: Union[str, Target] = Target.CPU,
    config: Optional[ApproximationConfig] = None,
    cache=None,
    key=None,
    backend: Optional[Backend] = None,
    **backend_kwargs,
) -> CompiledProgram:
    """Cache-friendly variant of :func:`compile` for repeat deployments.

    Repeat compilations of the same traced program for the same target and
    approximation configuration return the cached artifact and skip the
    transform/lower/verify pipeline entirely — the workflow of a serving
    registry that re-registers models or compiles one model per micro-batch
    bucket.

    Args:
        program: The traced application.
        target: Hardware target, as for :func:`compile`.
        config: Optional approximation configuration.
        cache: A :class:`repro.serving.cache.CompiledProgramCache`; defaults
            to the process-wide cache.
        key: Explicit cache key (from ``CompiledProgramCache.make_key``).
            By default the key is derived from the program's printed IR —
            see :func:`repro.serving.cache.program_signature` for the
            closure caveat.
        backend: Reuse an existing back-end instance instead of
            constructing one (required for warm accelerator sessions).
        **backend_kwargs: Forwarded to the back end constructor.
    """
    # Imported lazily: repro.serving depends on repro.backends.
    from repro.serving.cache import CompiledProgramCache, default_cache, program_signature

    cache = cache if cache is not None else default_cache()
    backend = backend if backend is not None else backend_for_target(target, **backend_kwargs)
    if key is None:
        key = CompiledProgramCache.make_key(program_signature(program), backend.target, config)
    return cache.get_or_compile(key, backend, lambda: program, config=config)
