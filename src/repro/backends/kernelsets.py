"""Kernel sets used by the CPU and GPU back ends.

A *kernel set* maps one HPVM-HDC IR operation plus its concrete operand
arrays to a result array.  Two implementations exist:

* :class:`ReferenceKernelSet` (CPU) — executes the straightforward
  reference kernels, i.e. the behaviour of HDC primitives expanded into
  HPVM IR loop sub-graphs and compiled for the host.
* :class:`LibraryKernelSet` (GPU) — executes the batched "library routine"
  kernels standing in for cuBLAS / Thrust / hand-written CUDA kernels, and
  counts one kernel launch per lowered primitive so the GPU device model
  can account for launch overhead.

Both kernel sets automatically switch the similarity primitives to the
packed-bit kernels when their operands are 1-bit bipolar (the payoff of the
automatic-binarization transform on general-purpose hardware).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.hdcpp.program import Operation
from repro.hdcpp.types import binary
from repro.ir.ops import Opcode
from repro.kernels import batched, binary as binkern, reference as ref

__all__ = ["KernelSet", "ReferenceKernelSet", "LibraryKernelSet"]


def _perforation(op: Operation) -> dict:
    """Extract the perforation window recorded by the perforation pass."""
    return {
        "begin": op.attrs.get("perf_begin", 0),
        "end": op.attrs.get("perf_end", None),
        "stride": op.attrs.get("perf_stride", 1),
    }


def _operands_are_binary(op: Operation) -> bool:
    return all(
        getattr(v.type, "element", None) is not None and v.type.element.is_binary
        for v in op.operands
    )


def _binary_route(op: Operation, inputs: list[np.ndarray]) -> bool:
    """Whether a similarity op should take the packed word-parallel kernels.

    True when the IR declares 1-bit operands (the automatic-binarization
    taint reached the comparison) — or when a packed-storage deployment
    already delivered a :class:`~repro.kernels.binary.PackedBits` operand
    at runtime, which the float kernels could not interpret.
    """
    return _operands_are_binary(op) or any(binkern.is_packed(v) for v in inputs)


class KernelSet:
    """Base class: dispatches one operation to a kernel implementation."""

    #: Human readable name used in reports.
    name = "kernels"

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)
        self.kernel_invocations = 0

    # -- public entry -----------------------------------------------------------------
    def run(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        self.kernel_invocations += 1
        handler = self._dispatch(op.opcode)
        return handler(op, inputs)

    def _dispatch(self, opcode: Opcode) -> Callable:
        try:
            return self._HANDLERS[opcode].__get__(self)
        except KeyError as exc:  # pragma: no cover - defensive
            raise NotImplementedError(f"{self.name} cannot execute {opcode}") from exc

    # -- init primitives ---------------------------------------------------------------
    def _shape_of(self, op: Operation) -> tuple[int, ...]:
        attrs = op.attrs
        if "dim" in attrs:
            return (attrs["dim"],)
        return (attrs["rows"], attrs["cols"])

    def _element(self, op: Operation):
        return op.attrs.get("element", None)

    def op_empty(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        element = self._element(op)
        return ref.empty(self._shape_of(op), element.numpy_dtype)

    def op_create(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        element = self._element(op)
        return ref.create(self._shape_of(op), element.numpy_dtype, op.attrs["init_fn"])

    def op_random(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        element = self._element(op)
        rng = self._seeded_rng(op)
        return ref.random_values(
            self._shape_of(op), element.numpy_dtype, rng, bipolar=element.is_binary
        )

    def op_gaussian(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        element = self._element(op)
        rng = self._seeded_rng(op)
        return ref.gaussian_values(self._shape_of(op), element.numpy_dtype, rng)

    def _seeded_rng(self, op: Operation) -> np.random.Generator:
        seed = op.attrs.get("seed")
        return self.rng if seed is None else np.random.default_rng(seed)

    # -- element-wise primitives ---------------------------------------------------------
    def op_wrap_shift(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.wrap_shift(inputs[0], op.attrs["shift_amount"])

    def op_sign(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.sign(inputs[0])

    def op_sign_flip(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.sign_flip(inputs[0])

    def op_add(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.elementwise("add", inputs[0], inputs[1])

    def op_sub(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.elementwise("sub", inputs[0], inputs[1])

    def op_mul(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.elementwise("mul", inputs[0], inputs[1])

    def op_div(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.elementwise("div", inputs[0], inputs[1])

    def op_abs(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.absolute_value(inputs[0])

    def op_cosine(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.cosine(inputs[0])

    def op_type_cast(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        element = op.attrs["element"]
        if element.is_binary:
            return ref.sign(inputs[0])
        return ref.type_cast(inputs[0], element.numpy_dtype)

    # -- access primitives ----------------------------------------------------------------
    def op_get_element(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return np.asarray(ref.get_element(inputs[0], op.attrs["row_idx"], op.attrs["col_idx"]))

    def op_arg_min(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.arg_min(inputs[0])

    def op_arg_max(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.arg_max(inputs[0])

    def op_set_matrix_row(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.set_matrix_row(inputs[0], inputs[1], op.attrs["row_idx"])

    def op_get_matrix_row(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.get_matrix_row(inputs[0], op.attrs["row_idx"])

    def op_transpose(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.matrix_transpose(inputs[0])

    # -- reduction primitives ----------------------------------------------------------------
    def op_l2norm(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return ref.l2norm(inputs[0], **_perforation(op))

    def op_cossim(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        if _binary_route(op, inputs):
            return batched.pairwise_cossim_packed(inputs[0], inputs[1], **_perforation(op))
        return ref.cossim(inputs[0], inputs[1], **_perforation(op))

    def op_hamming(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        if _binary_route(op, inputs):
            return batched.pairwise_hamming_packed(inputs[0], inputs[1], **_perforation(op))
        return ref.hamming_distance(inputs[0], inputs[1], **_perforation(op))

    def op_matmul(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        out = ref.matmul(inputs[0], inputs[1], **_perforation(op))
        return self._maybe_binarize_result(op, out)

    @staticmethod
    def _maybe_binarize_result(op: Operation, out: np.ndarray) -> np.ndarray:
        """Binarized reductions emit bipolar results (Section 4.2).

        When automatic binarization marks a reduction result as 1-bit, the
        lowered kernel produces the sign of the accumulated value directly
        (the bit-vector lowering of Algorithm 1), so downstream operations
        see data that matches the rewritten IR type.
        """
        result = op.result
        if result is not None and getattr(result.type, "element", None) is not None:
            if result.type.element.is_binary:
                return ref.sign(out)
        return out

    # -- directives --------------------------------------------------------------------------
    def op_red_perf(self, op: Operation, inputs: list[np.ndarray]) -> Optional[np.ndarray]:
        # Left in the stream only if the perforation pass did not run; it is
        # a pure annotation, so executing it is a no-op.
        return None

    _HANDLERS = {
        Opcode.EMPTY_HYPERVECTOR: op_empty,
        Opcode.EMPTY_HYPERMATRIX: op_empty,
        Opcode.CREATE_HYPERVECTOR: op_create,
        Opcode.CREATE_HYPERMATRIX: op_create,
        Opcode.RANDOM_HYPERVECTOR: op_random,
        Opcode.RANDOM_HYPERMATRIX: op_random,
        Opcode.GAUSSIAN_HYPERVECTOR: op_gaussian,
        Opcode.GAUSSIAN_HYPERMATRIX: op_gaussian,
        Opcode.WRAP_SHIFT: op_wrap_shift,
        Opcode.SIGN: op_sign,
        Opcode.SIGN_FLIP: op_sign_flip,
        Opcode.ADD: op_add,
        Opcode.SUB: op_sub,
        Opcode.MUL: op_mul,
        Opcode.DIV: op_div,
        Opcode.ABSOLUTE_VALUE: op_abs,
        Opcode.COSINE: op_cosine,
        Opcode.TYPE_CAST: op_type_cast,
        Opcode.GET_ELEMENT: op_get_element,
        Opcode.ARG_MIN: op_arg_min,
        Opcode.ARG_MAX: op_arg_max,
        Opcode.SET_MATRIX_ROW: op_set_matrix_row,
        Opcode.GET_MATRIX_ROW: op_get_matrix_row,
        Opcode.MATRIX_TRANSPOSE: op_transpose,
        Opcode.L2NORM: op_l2norm,
        Opcode.COSSIM: op_cossim,
        Opcode.HAMMING_DISTANCE: op_hamming,
        Opcode.MATMUL: op_matmul,
        Opcode.RED_PERF: op_red_perf,
    }


class ReferenceKernelSet(KernelSet):
    """CPU kernel set — reference (row-at-a-time) kernels."""

    name = "cpu-reference"


class LibraryKernelSet(KernelSet):
    """GPU kernel set — batched library routines plus launch accounting."""

    name = "gpu-library"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self.kernel_launches = 0

    def run(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        self.kernel_launches += 1
        return super().run(op, inputs)

    # Reductions and similarity search map to the batched library routines.
    def op_l2norm(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return batched.rowwise_l2norm(inputs[0], **_perforation(op))

    def op_cossim(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        if _binary_route(op, inputs):
            return batched.pairwise_cossim_packed(inputs[0], inputs[1], **_perforation(op))
        return batched.pairwise_cossim(inputs[0], inputs[1], **_perforation(op))

    def op_hamming(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        # Binarized operands take the word-parallel packed kernels (the
        # distances are exact integer bit counts, so the result matches
        # the GEMM identity (D - a.b)/2 this routed to previously, bit
        # for bit); float operands keep the broadcast/GEMM route.
        if _binary_route(op, inputs):
            return batched.pairwise_hamming_packed(inputs[0], inputs[1], **_perforation(op))
        return batched.pairwise_hamming(inputs[0], inputs[1], **_perforation(op))

    def op_matmul(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        out = batched.gemm(inputs[0], inputs[1], **_perforation(op))
        return self._maybe_binarize_result(op, out)

    def op_arg_min(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return batched.rowwise_argmin(inputs[0])

    def op_arg_max(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return batched.rowwise_argmax(inputs[0])

    def op_transpose(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        return batched.transpose(inputs[0])

    _HANDLERS = dict(KernelSet._HANDLERS)
    _HANDLERS.update(
        {
            Opcode.L2NORM: op_l2norm,
            Opcode.COSSIM: op_cossim,
            Opcode.HAMMING_DISTANCE: op_hamming,
            Opcode.MATMUL: op_matmul,
            Opcode.ARG_MIN: op_arg_min,
            Opcode.ARG_MAX: op_arg_max,
            Opcode.MATRIX_TRANSPOSE: op_transpose,
        }
    )
