"""Digital HDC ASIC back end.

Lowers the HDC++ stage primitives onto the digital HDC ASIC simulator
(:class:`repro.accelerators.digital_asic.DigitalHDCASIC`) through the
functional interface of Listing 6, and executes every other operation on
the host.  See :mod:`repro.backends.accelerator` for the shared lowering.
"""

from __future__ import annotations

from repro.accelerators.digital_asic import DigitalASICParameters, DigitalHDCASIC
from repro.backends.accelerator import AcceleratorBackend
from repro.ir.dataflow import Target

__all__ = ["DigitalASICBackend"]


class DigitalASICBackend(AcceleratorBackend):
    """Compile HDC++ programs for the digital HDC ASIC."""

    target = Target.HDC_ASIC
    name = "hdc_asic"

    def __init__(
        self,
        device: DigitalHDCASIC | None = None,
        params: DigitalASICParameters | None = None,
        seed: int = 0,
        reuse_session: bool = False,
    ):
        self._params = params
        super().__init__(device=device, seed=seed, reuse_session=reuse_session)

    def make_device(self) -> DigitalHDCASIC:
        return DigitalHDCASIC(self._params)
