"""Host runtime for the HDC accelerator back ends.

The accelerators expose coarse-grain operations over device-resident data
(Listing 6 of the paper).  Because the digital ASIC talks to its host over
a ~10 kbps link, the single most important job of the generated host code
is to avoid redundant data movement: the random-projection base memory and
the class memory must be programmed once and reused across the training and
inference loops rather than re-sent per sample or per stage.

:class:`DeviceSession` implements that policy.  It wraps a device simulator
and tracks what is currently resident on the device; ``ensure_*`` methods
re-program memories only when the configuration or the data actually
changed, which is the "lift redundant data movements outside of loops"
optimization HPVM-HDC applies when lowering the stage primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.accelerators.interface import AcceleratorConfig, DeviceCounters, HDCAcceleratorDevice

__all__ = ["DeviceSession"]


class DeviceSession:
    """Tracks device residency and accumulates device counters across stages."""

    def __init__(self, device: HDCAcceleratorDevice):
        self.device = device
        self.totals = DeviceCounters()
        self._config: Optional[AcceleratorConfig] = None
        self._resident_base: Optional[np.ndarray] = None
        self._resident_classes: Optional[np.ndarray] = None
        #: Number of transfers skipped because the data was already resident.
        self.elided_transfers = 0

    # -- configuration -------------------------------------------------------------
    def ensure_config(self, dimension: int, features: int, classes: int) -> None:
        """(Re)initialize the device if the programmed shape changed."""
        config = AcceleratorConfig(dimension=dimension, features=features, classes=classes)
        if self._config == config:
            return
        self._accumulate()
        self.device.initialize_device(config)
        self._config = config
        self._resident_base = None
        self._resident_classes = None

    # -- residency-aware data movement ------------------------------------------------
    def ensure_base(self, base: np.ndarray) -> None:
        base = np.asarray(base)
        if self._resident_base is not None and np.array_equal(self._resident_base, base):
            self.elided_transfers += 1
            return
        self.device.allocate_base_mem(base)
        self._resident_base = np.array(base, copy=True)

    def ensure_classes(self, classes: np.ndarray) -> None:
        classes = np.asarray(classes)
        if self._resident_classes is not None and np.array_equal(self._resident_classes, classes):
            self.elided_transfers += 1
            return
        self.device.allocate_class_mem(classes)
        self._resident_classes = np.array(classes, copy=True)

    def invalidate_classes(self) -> None:
        """Mark device class memory as modified (after on-device training)."""
        self._resident_classes = None

    # -- counters -----------------------------------------------------------------------
    def _accumulate(self) -> None:
        counters = self.device.counters
        self.totals.merge(counters)
        counters.reset()

    def finalize(self) -> DeviceCounters:
        """Fold outstanding device counters into the session totals."""
        self._accumulate()
        return self.totals
