"""Host runtime for the HDC accelerator back ends.

The accelerators expose coarse-grain operations over device-resident data
(Listing 6 of the paper).  Because the digital ASIC talks to its host over
a ~10 kbps link, the single most important job of the generated host code
is to avoid redundant data movement: the random-projection base memory and
the class memory must be programmed once and reused across the training and
inference loops rather than re-sent per sample or per stage.

:class:`DeviceSession` implements that policy.  It wraps a device simulator
and tracks what is currently resident on the device; ``ensure_*`` methods
re-program memories only when the configuration or the data actually
changed, which is the "lift redundant data movements outside of loops"
optimization HPVM-HDC applies when lowering the stage primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.accelerators.interface import AcceleratorConfig, DeviceCounters, HDCAcceleratorDevice

__all__ = ["DeviceSession"]


class DeviceSession:
    """Tracks device residency and accumulates device counters across stages."""

    def __init__(self, device: HDCAcceleratorDevice):
        self.device = device
        self.totals = DeviceCounters()
        self._config: Optional[AcceleratorConfig] = None
        self._resident_base: Optional[np.ndarray] = None
        self._resident_classes: Optional[np.ndarray] = None
        # The host array object each resident memory was programmed from
        # (a strong reference, so the identity can never be a recycled
        # id).  Serving hands the session the *same* cached constants
        # object on every batch (Deployment constants are immutable once
        # registered), so an `is` check elides the transfer in O(1)
        # instead of re-comparing the whole memory byte-for-byte — on an
        # oversized class memory the value comparison itself costs a full
        # memory stream per batch.  Mutating a previously ensured array
        # in place would defeat the check; deployment constants are never
        # mutated (updates build new arrays), matching the contract the
        # value comparison's defensive copy already assumed.
        self._resident_base_src: Optional[np.ndarray] = None
        self._resident_classes_src: Optional[np.ndarray] = None
        #: Number of transfers skipped because the data was already resident.
        self.elided_transfers = 0
        #: Class-memory transfers forced by the device's fixed bank size
        #: (``class_mem_capacity_rows``): the memory was unchanged but too
        #: large to stay resident, so it re-streamed to the device.
        self.capacity_evictions = 0

    # -- configuration -------------------------------------------------------------
    def ensure_config(self, dimension: int, features: int, classes: int) -> None:
        """(Re)initialize the device if the programmed shape changed."""
        config = AcceleratorConfig(dimension=dimension, features=features, classes=classes)
        if self._config == config:
            return
        self._accumulate()
        self.device.initialize_device(config)
        self._config = config
        self._resident_base = None
        self._resident_classes = None
        self._resident_base_src = None
        self._resident_classes_src = None

    # -- residency-aware data movement ------------------------------------------------
    def ensure_base(self, base: np.ndarray) -> None:
        source = base
        base = np.asarray(base)
        if source is self._resident_base_src and self._resident_base is not None:
            self.elided_transfers += 1
            return
        if self._resident_base is not None and np.array_equal(self._resident_base, base):
            self.elided_transfers += 1
            self._resident_base_src = source
            return
        self.device.allocate_base_mem(base)
        self._resident_base = np.array(base, copy=True)
        self._resident_base_src = source

    def ensure_classes(self, classes: np.ndarray) -> None:
        source = classes
        classes = np.asarray(classes)
        capacity = getattr(self.device, "class_mem_capacity_rows", None)
        if capacity is not None and classes.shape[0] > int(capacity):
            # Too large for the device's class-memory bank: it can never
            # stay resident, so every execution round re-streams it.
            # This is the cost model that makes "a memory too big for one
            # worker" mean something — and the cost shard-pinned
            # placement exists to avoid, by keeping each (bank-sized)
            # slice resident on its own worker.
            self.capacity_evictions += 1
            self.device.allocate_class_mem(classes)
            self._resident_classes = None
            self._resident_classes_src = None
            return
        if source is self._resident_classes_src and self._resident_classes is not None:
            self.elided_transfers += 1
            return
        if self._resident_classes is not None and np.array_equal(self._resident_classes, classes):
            self.elided_transfers += 1
            self._resident_classes_src = source
            return
        self.device.allocate_class_mem(classes)
        self._resident_classes = np.array(classes, copy=True)
        self._resident_classes_src = source

    def invalidate_classes(self) -> None:
        """Mark device class memory as modified (after on-device training)."""
        self._resident_classes = None
        self._resident_classes_src = None

    # -- counters -----------------------------------------------------------------------
    def _accumulate(self) -> None:
        counters = self.device.counters
        self.totals.merge(counters)
        counters.reset()

    def finalize(self) -> DeviceCounters:
        """Fold outstanding device counters into the session totals."""
        self._accumulate()
        return self.totals
