"""Shared implementation of the HDC accelerator back ends.

The accelerator back ends lower the three HDC++ stage primitives to the
devices' coarse-grain functional interface (the call sequence of Listing 6)
and execute every other operation on the host CPU.  Granular HDC primitives
are *not* offloaded: the devices only understand whole encoding / training /
inference operations, which is precisely why the paper introduces the stage
primitives in the first place.

The generated call sequence for a training + inference program matches
Listing 6 of the paper::

    initialize_device(&config)
    allocate_base_mem(random_projection)
    allocate_class_mem(classes)
    for n in range(EPOCHS):
        for i in range(N_TRAIN):
            allocate_feature_mem(train_inputs[i])
            execute_retrain(train_labels[i])
    read_class_mem(classes)
    # base memory stays resident — the redundant transfer is elided
    allocate_class_mem(classes)
    for i in range(N_TEST):
        allocate_feature_mem(infer_inputs[i])
        infer_labels[i] = execute_inference()
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.accelerators.interface import HDCAcceleratorDevice
from repro.backends.base import Backend, CompiledProgram, ExecutionReport
from repro.backends.executor import ExecutionError, HostStageExecutor, OpInterpreter
from repro.backends.kernelsets import ReferenceKernelSet
from repro.backends.runtime import DeviceSession
from repro.hdcpp.program import Operation, Program
from repro.hdcpp.types import HyperMatrixType
from repro.ir.dataflow import DataflowGraph, Target
from repro.ir.ops import Opcode
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["AcceleratorBackend", "AcceleratorStageExecutor"]


class AcceleratorStageExecutor(HostStageExecutor):
    """Stage executor that offloads the stage primitives to a device session."""

    def __init__(self, session: DeviceSession):
        super().__init__(batched=False)
        self.session = session

    # -- helpers ------------------------------------------------------------------------
    @staticmethod
    def _encoder_operand(op: Operation, inputs: list[np.ndarray], position: int) -> np.ndarray:
        if not op.attrs.get("has_encoder") and op.opcode != Opcode.ENCODING_LOOP:
            raise ExecutionError(
                f"{op.opcode} cannot be offloaded to an HDC accelerator without an encoder "
                "operand: the device programs its base memory from the random projection"
            )
        return inputs[position]

    @staticmethod
    def _dimension_of(encoder: np.ndarray, classes: Optional[np.ndarray]) -> int:
        if classes is not None:
            return int(np.asarray(classes).shape[1])
        return int(np.asarray(encoder).shape[0])

    # -- stage offloading ------------------------------------------------------------------
    def execute_stage(self, interpreter, op: Operation, inputs: list[np.ndarray]):
        if op.opcode == Opcode.ENCODING_LOOP:
            return self._encoding(op, inputs)
        if op.opcode == Opcode.INFERENCE_LOOP:
            return self._inference(op, inputs)
        if op.opcode == Opcode.TRAINING_LOOP:
            return self._training(op, inputs)
        raise ExecutionError(f"unsupported stage {op.opcode}")

    def _encoding(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        queries, encoder = np.asarray(inputs[0]), np.asarray(inputs[1])
        dimension = int(encoder.shape[0])
        self.session.ensure_config(dimension, queries.shape[1], classes=1)
        self.session.ensure_base(encoder)
        # The device encodes but has no class memory requirement here; a
        # single placeholder row satisfies the functional interface.
        self.session.ensure_classes(np.zeros((1, dimension), dtype=np.float32))
        device = self.session.device
        encoded = []
        for i in range(queries.shape[0]):
            device.allocate_feature_mem(queries[i])
            encoded.append(device.execute_encode())
        return np.stack(encoded)

    def _inference(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        queries, classes = np.asarray(inputs[0]), np.asarray(inputs[1])
        device = self.session.device
        labels = np.empty(queries.shape[0], dtype=np.int64)

        if not op.attrs.get("has_encoder"):
            # No encoder operand: the queries are already encoded
            # hypervectors (e.g. produced by a previous ``encoding_loop``
            # offload), so only the devices' Hamming unit is exercised.
            if queries.shape[1] != classes.shape[1]:
                raise ExecutionError(
                    "inference_loop without an encoder requires pre-encoded queries whose "
                    "dimension matches the class hypervectors"
                )
            self.session.ensure_config(classes.shape[1], classes.shape[1], classes.shape[0])
            self.session.ensure_classes(classes)
            for i in range(queries.shape[0]):
                device.allocate_encoded_mem(queries[i])
                labels[i] = device.execute_inference_encoded()
            return labels

        encoder = np.asarray(self._encoder_operand(op, inputs, 2))
        dimension = self._dimension_of(encoder, classes)
        self.session.ensure_config(dimension, queries.shape[1], classes.shape[0])
        self.session.ensure_base(encoder)
        self.session.ensure_classes(classes)
        for i in range(queries.shape[0]):
            device.allocate_feature_mem(queries[i])
            labels[i] = device.execute_inference()
        return labels

    def _training(self, op: Operation, inputs: list[np.ndarray]) -> np.ndarray:
        queries, labels, classes = (np.asarray(inputs[0]), np.asarray(inputs[1]), np.asarray(inputs[2]))
        encoder = np.asarray(self._encoder_operand(op, inputs, 3))
        dimension = self._dimension_of(encoder, classes)
        epochs = int(op.attrs.get("epochs", 1))
        self.session.ensure_config(dimension, queries.shape[1], classes.shape[0])
        self.session.ensure_base(encoder)
        self.session.ensure_classes(classes)
        device = self.session.device
        labels_arr = np.asarray(labels, dtype=np.int64).reshape(-1)
        for _ in range(epochs):
            for i in range(queries.shape[0]):
                device.allocate_feature_mem(queries[i])
                device.execute_retrain(int(labels_arr[i]))
        self.session.invalidate_classes()
        return device.read_class_mem()


class AcceleratorBackend(Backend):
    """Base class of the digital-ASIC and ReRAM back ends."""

    name = "accelerator"

    def __init__(
        self,
        device: Optional[HDCAcceleratorDevice] = None,
        seed: int = 0,
        reuse_session: bool = False,
    ):
        self.device = device or self.make_device()
        self.seed = seed
        #: Keep one :class:`DeviceSession` alive across ``execute`` calls so
        #: residency tracking spans a whole stream of requests: a serving
        #: worker that classifies batch after batch programs the base and
        #: class memories once and elides every later transfer.  Reports
        #: still carry per-call deltas, not session totals.
        self.reuse_session = reuse_session
        self.last_session: Optional[DeviceSession] = None

    def make_device(self) -> HDCAcceleratorDevice:
        raise NotImplementedError

    def prepare(self, program: Program, graph: DataflowGraph, config: ApproximationConfig) -> None:
        if not config.is_identity:
            raise ValueError(
                f"the {self.name} back end does not support the approximation transforms: "
                "the accelerators implement fixed-function encoding/inference (Section 4.2)"
            )
        # Every stage node must be mappable onto the device.
        for node in graph.leaf_nodes():
            for op in node.ops:
                if op.opcode in (Opcode.ENCODING_LOOP, Opcode.INFERENCE_LOOP, Opcode.TRAINING_LOOP):
                    if self.target not in node.targets:
                        raise ValueError(f"stage node {node.name} is not annotated for {self.target}")

    def execute(
        self, compiled: CompiledProgram, env: dict[int, np.ndarray], report: ExecutionReport
    ) -> dict[str, object]:
        if self.reuse_session and self.last_session is not None:
            session = self.last_session
        else:
            session = DeviceSession(self.device)
        self.last_session = session
        before = session.totals.copy()
        before_elided = session.elided_transfers
        kernels = ReferenceKernelSet(seed=self.seed)
        interpreter = OpInterpreter(
            compiled.program, kernels, AcceleratorStageExecutor(session)
        )
        interpreter.run_entry(env)
        call = session.finalize().delta(before)
        report.merge_device_counters(call)
        report.kernel_launches = kernels.kernel_invocations
        report.notes["elided_transfers"] = session.elided_transfers - before_elided
        report.notes["device"] = type(self.device).__name__
        report.notes["encodes"] = call.encodes
        report.notes["inferences"] = call.inferences
        report.notes["train_iterations"] = call.train_iterations
        return self.collect_outputs(compiled.entry, env)
