"""ReRAM HDC accelerator back end.

Lowers the HDC++ stage primitives onto the ReRAM accelerator simulator
(:class:`repro.accelerators.reram.ReRAMAccelerator`) through the shared
coarse-grain functional interface, and executes every other operation on
the host.  See :mod:`repro.backends.accelerator` for the shared lowering.
"""

from __future__ import annotations

from repro.accelerators.reram import ReRAMAccelerator, ReRAMParameters
from repro.backends.accelerator import AcceleratorBackend
from repro.ir.dataflow import Target

__all__ = ["ReRAMBackend"]


class ReRAMBackend(AcceleratorBackend):
    """Compile HDC++ programs for the ReRAM HDC accelerator simulator."""

    target = Target.HDC_RERAM
    name = "hdc_reram"

    def __init__(
        self,
        device: ReRAMAccelerator | None = None,
        params: ReRAMParameters | None = None,
        seed: int = 0,
        reuse_session: bool = False,
    ):
        self._params = params
        super().__init__(device=device, seed=seed, reuse_session=reuse_session)

    def make_device(self) -> ReRAMAccelerator:
        return ReRAMAccelerator(self._params)
