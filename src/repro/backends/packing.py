"""Packed-residency analysis: which entry params can live bit-packed.

A packed-storage deployment wants to bind its class memory as
:class:`~repro.kernels.binary.PackedBits` — ``uint64`` words, ~32x
smaller than the float hypermatrix — and have every kernel that touches
it operate word-parallel.  That is only sound for values whose *every*
consumer understands the packed representation:

* the similarity reductions (``hamming_distance`` / ``cossim``) — the
  kernel sets route binary operands to the packed kernels;
* ``sign`` and a binary ``type_cast`` — the identity on packed bipolar
  words, provided the result is itself only consumed packably;
* the batch axis of a stage primitive is row-sliced by the executor
  (which strips the packed type), so only the **whole-tensor operands**
  (index >= 1: class memory, encoder) of ``inference_loop`` /
  ``encoding_loop`` / ``parallel_map`` qualify, and only when the
  implementation is a traced function — eager callables and declared
  ``batch_impl`` routes receive :class:`~repro.hdcpp.arrays.HyperMatrix`
  wrappers that would silently reinterpret the words as data;
* ``training_loop`` copies and arithmetically mutates its class operand,
  and entry results must be plain arrays — both reject packing.

Anything else (``matmul``, element-wise arithmetic, row access, ...)
would corrupt a packed operand, so the value is rejected.  The analysis
is a recursive use-walk over the *compiled* (post-transform) program —
it sees the element types the automatic-binarization pass produced, so
only genuinely 1-bit values are ever considered.
"""

from __future__ import annotations

from repro.hdcpp.program import Program, TracedFunction, Value
from repro.ir.ops import Opcode

__all__ = ["packable_entry_params"]

_SIMILARITY_OPS = {Opcode.HAMMING_DISTANCE, Opcode.COSSIM}

#: Stage primitives whose operands at index >= 1 are passed whole (not
#: row-sliced) to the implementation function's parameter at the same
#: index.  ``TRAINING_LOOP`` is deliberately absent.
_WHOLE_OPERAND_STAGES = {
    Opcode.ENCODING_LOOP,
    Opcode.INFERENCE_LOOP,
    Opcode.PARALLEL_MAP,
}


def _use_map(program: Program) -> dict:
    """``{function name: {value id: [consuming operations]}}``."""
    uses: dict = {}
    for fn in program.functions.values():
        per_fn = uses.setdefault(fn.name, {})
        for op in fn.ops:
            for operand in op.operands:
                per_fn.setdefault(operand.id, []).append(op)
    return uses


def _value_packable(
    program: Program,
    fn: TracedFunction,
    value: Value,
    uses: dict,
    visited: set,
) -> bool:
    key = (fn.name, value.id)
    if key in visited:
        return True
    visited.add(key)
    if any(result.id == value.id for result in fn.results):
        return False
    for op in uses.get(fn.name, {}).get(value.id, []):
        if op.opcode in _SIMILARITY_OPS:
            continue
        if op.opcode == Opcode.SIGN:
            if op.result is None or not _value_packable(
                program, fn, op.result, uses, visited
            ):
                return False
            continue
        if op.opcode == Opcode.TYPE_CAST:
            element = op.attrs.get("element")
            if (
                element is None
                or not getattr(element, "is_binary", False)
                or op.result is None
                or not _value_packable(program, fn, op.result, uses, visited)
            ):
                return False
            continue
        if op.opcode in _WHOLE_OPERAND_STAGES:
            impl_name = op.attrs.get("impl")
            if impl_name is None or op.attrs.get("batch_impl") is not None:
                return False
            impl = program.function(impl_name)
            for index, operand in enumerate(op.operands):
                if operand.id != value.id:
                    continue
                if index == 0 or index >= len(impl.params):
                    return False
                if not _value_packable(
                    program, impl, impl.params[index], uses, visited
                ):
                    return False
            continue
        return False
    return True


def packable_entry_params(program: Program) -> list[str]:
    """Entry-param names that can safely be bound as packed words.

    Only 1-bit (post-binarization) hypervector/hypermatrix params are
    candidates; each is accepted iff the recursive use-walk proves every
    transitive consumer handles the packed representation.  The result
    is deterministic for a given compiled program, so packing the listed
    constants is a pure function of the servable's float state — which
    is what makes hot-swap and update-log replay rebuild bit-identical
    packed bytes.
    """
    entry = program.entry_function
    uses = _use_map(program)
    names = []
    for param in entry.params:
        element = getattr(param.type, "element", None)
        if element is None or not element.is_binary:
            continue
        if _value_packable(program, entry, param, uses, set()):
            names.append(param.name)
    return names
