"""The app axis of the scenario matrix: named workload builders.

Each catalog entry packages one stock application
(:mod:`repro.apps`) as a benchmark workload: a trained
:class:`~repro.serving.servable.Servable`, a pool of request samples the
load generator indexes into, and — for updatable apps — a labelled pool
the serve-while-retraining shape slices into update-log mini-batches.

Builders take a *derived* :class:`numpy.random.Generator` (see
:func:`repro.bench.loadgen.derive_rng`), so a workload's trained state
and sample pool are a pure function of (bench seed, cell ID, app spec):
the same cell always serves the same model over the same samples.

The ``params`` dict of each :class:`AppKind` doubles as the allowed-key
schema — the config parser rejects any app-spec key not present here,
so a typo fails parsing instead of silently running with defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["Workload", "AppKind", "CATALOG", "build_workload"]


@dataclass
class Workload:
    """One cell's served application and its request/update pools."""

    servable: object
    #: Request sample pool; the schedule's ``sample`` array indexes rows.
    samples: np.ndarray
    #: Labelled update pool (samples, labels) for retraining shapes;
    #: ``None`` for apps without an online-update rule.
    update_samples: Optional[np.ndarray] = None
    update_labels: Optional[np.ndarray] = None
    #: Row pool for growth shapes — raw rows for the servable's
    #: ``append_batch`` rule; ``None`` for apps without one.
    append_rows: Optional[np.ndarray] = None


def _classification(params: dict, rng: np.random.Generator) -> Workload:
    from repro.apps import HDClassificationInference
    from repro.datasets import IsoletConfig, make_isolet_like

    dataset = make_isolet_like(
        IsoletConfig(
            n_features=params["n_features"],
            n_classes=params["n_classes"],
            n_train=params["n_train"],
            n_test=params["n_test"],
            seed=int(rng.integers(0, 2**31 - 1)),
        )
    )
    app = HDClassificationInference(
        dimension=params["dimension"], similarity=params["similarity"]
    )
    return Workload(
        servable=app.as_servable(dataset=dataset),
        samples=dataset.test_features,
        update_samples=dataset.train_features,
        update_labels=dataset.train_labels,
    )


def _hyperoms(params: dict, rng: np.random.Generator) -> Workload:
    from repro.apps import HyperOMS

    n_bins, n_library = params["n_bins"], params["n_library"]
    occupancy = params["occupancy"]

    def sparse_spectra(count: int) -> np.ndarray:
        return (
            rng.random((count, n_bins)) * (rng.random((count, n_bins)) > 1.0 - occupancy)
        ).astype(np.float32)

    app = HyperOMS(
        dimension=params["dimension"],
        n_levels=params["n_levels"],
        seed=int(rng.integers(0, 2**31 - 1)),
    )
    library = sparse_spectra(n_library)
    return Workload(
        servable=app.as_servable(app.encode_library(library), n_bins=n_bins),
        samples=sparse_spectra(params["pool"]),
        # Growth pool: raw spectra the servable's append rule encodes
        # into new library rows server-side.
        append_rows=sparse_spectra(params["append_pool"]),
    )


def _clustering(params: dict, rng: np.random.Generator) -> Workload:
    from repro.apps import HDClustering

    dim, n_features = params["dimension"], params["n_features"]
    app = HDClustering(dimension=dim)
    rp = np.sign(rng.standard_normal((dim, n_features))).astype(np.float32)
    clusters = np.sign(rng.standard_normal((params["n_clusters"], dim))).astype(np.float32)
    return Workload(
        servable=app.as_servable(rp, clusters),
        samples=rng.standard_normal((params["pool"], n_features)).astype(np.float32),
        # Growth pool: new cluster hypervectors appended verbatim.
        append_rows=np.sign(
            rng.standard_normal((params["append_pool"], dim))
        ).astype(np.float32),
    )


def _relhd(params: dict, rng: np.random.Generator) -> Workload:
    from repro.apps import RelHD

    dim, n_classes = params["dimension"], params["n_classes"]
    app = RelHD(dimension=dim)
    classes = np.sign(rng.standard_normal((n_classes, dim))).astype(np.float32)

    def encodings(count: int) -> np.ndarray:
        return np.sign(rng.standard_normal((count, dim))).astype(np.float32)

    return Workload(
        servable=app.as_servable(classes),
        samples=encodings(params["pool"]),
        update_samples=encodings(params["update_pool"]),
        update_labels=rng.integers(0, n_classes, size=params["update_pool"]),
    )


def _hashtable(params: dict, rng: np.random.Generator) -> Workload:
    from repro.apps import HDHashtable
    from repro.datasets.genomics import GenomicsConfig, base_indices, make_genomics_dataset

    dataset = make_genomics_dataset(
        GenomicsConfig(
            genome_length=params["genome_length"],
            bucket_size=params["bucket_size"],
            read_length=params["read_length"],
            n_reads=params["n_reads"],
            n_decoys=0,
            kmer_length=params["kmer_length"],
        )
    )
    app = HDHashtable(dimension=params["dimension"])
    base_hvs = app.make_base_hypervectors()
    table = app.encode_reference_buckets(dataset, base_hvs)
    reads = np.stack([base_indices(read) for read in dataset.reads])
    return Workload(
        servable=app.as_servable(
            table,
            read_length=params["read_length"],
            kmer_length=params["kmer_length"],
            base_hvs=base_hvs,
        ),
        samples=reads,
        # Growth pool: fresh reference sequences (base-index rows) the
        # servable's append rule k-mer encodes into new table rows.
        append_rows=rng.integers(
            0, 4, (params["append_pool"], params["read_length"]), dtype=np.int64
        ),
    )


@dataclass(frozen=True)
class AppKind:
    """One application family: its builder and its parameter schema."""

    build: Callable[[dict, np.random.Generator], Workload]
    #: Parameter defaults; the keys are also the allowed-key schema.
    params: Dict[str, object] = field(default_factory=dict)
    #: Whether the servable carries an online ``update_batch`` rule
    #: (required by serve-while-retraining cells, checked at parse time).
    updatable: bool = False
    #: Whether the servable carries a shape-changing ``append_batch``
    #: rule and the builder materializes an append-row pool (required by
    #: growth cells, checked at parse time).
    appendable: bool = False


#: Registry of application kinds, keyed by the ``kind`` field of an app
#: spec.  Sizes default to smoke scale — a full matrix of these cells
#: runs in seconds, not minutes; configs scale them up explicitly.
CATALOG: Dict[str, AppKind] = {
    "classification": AppKind(
        build=_classification,
        params={
            "dimension": 512,
            "n_features": 64,
            "n_classes": 8,
            "n_train": 192,
            "n_test": 64,
            "similarity": "hamming",
        },
        updatable=True,
    ),
    "hyperoms": AppKind(
        build=_hyperoms,
        params={
            "dimension": 256,
            "n_levels": 8,
            "n_bins": 32,
            "n_library": 32,
            "pool": 128,
            "occupancy": 0.2,
            "append_pool": 24,
        },
        appendable=True,
    ),
    "clustering": AppKind(
        build=_clustering,
        params={
            "dimension": 256,
            "n_features": 16,
            "n_clusters": 8,
            "pool": 128,
            "append_pool": 24,
        },
        appendable=True,
    ),
    "relhd": AppKind(
        build=_relhd,
        params={"dimension": 256, "n_classes": 7, "pool": 128, "update_pool": 192},
        updatable=True,
    ),
    "hashtable": AppKind(
        build=_hashtable,
        params={
            "dimension": 256,
            "genome_length": 4000,
            "bucket_size": 500,
            "read_length": 60,
            "n_reads": 64,
            "kmer_length": 8,
            "append_pool": 24,
        },
        appendable=True,
    ),
}


def build_workload(spec: dict, rng: np.random.Generator) -> Workload:
    """Build the workload for one validated app spec (see CATALOG)."""
    kind = CATALOG[spec["kind"]]
    params = dict(kind.params)
    params.update({key: value for key, value in spec.items() if key != "kind"})
    return kind.build(params, rng)
