"""Threshold gates over benchmark and serving-metrics documents.

This module is the single implementation behind every ``--fail-on``
expression in the repo — ``tools/scrape_stats.py`` (live scraping and
``--check`` offline mode) and ``python -m repro.bench`` (per-cell matrix
gating) both parse and evaluate thresholds here, so a gate written for
one tool means exactly the same thing in the other.

An expression is a dotted metric path, a comparison operator and a
numeric limit, stating the *failure* condition::

    fallback_stages>0
    model_stats.isolet.histograms.latency.p99_ms>25
    cell.isolet.steady.p99_ms>40

Paths walk nested dicts; a path that lands on a serialized
:class:`~repro.serving.observability.LatencyHistogram` may end with one
stat token (``count``, ``mean_ms``, ``p50``, ``p99_9_ms``, ...) derived
from the bucket data.

**Cell paths** extend the syntax for matrix documents (the
``BENCH_matrix.json`` a :mod:`repro.bench` run writes, whose ``cells``
mapping keys cell IDs like ``isolet.cpu.exact.steady`` to metric dicts).
A path starting with ``cell.`` (or ``cells.``) consumes *selector*
tokens — each must match one of the cell's coordinate values (app,
backend, config or shape) — and evaluates the remaining metric path
against **every** matching cell::

    cell.isolet.steady.p99_ms>40      # one app, one shape, any backend/config
    cell.burst.failures>0             # every burst cell, all apps
    cell.isolet.cpu.exact.steady.served_rps<50   # exactly one cell

Each violating cell yields its own violation message, and a selector
matching *no* cell is itself a violation — an alerting expression that
silently never matches is worse than a false alarm.
"""

from __future__ import annotations

import operator
import re
from typing import Dict, List, Optional, Tuple

from repro.serving.observability.histogram import LatencyHistogram

__all__ = [
    "GateError",
    "Threshold",
    "resolve",
    "histogram_stat",
    "match_cells",
    "COORD_KEYS",
]


class GateError(ValueError):
    """A malformed threshold expression (unparsable path/operator/limit).

    Subclasses :class:`ValueError` so pre-existing ``except ValueError``
    callers keep working; tools map it to a distinct usage exit code.
    """


_EXPR_RE = re.compile(
    r"^\s*(?P<path>[A-Za-z0-9_.\- ]+?)\s*(?P<op>>=|<=|==|!=|>|<)\s*(?P<limit>-?\d+(?:\.\d+)?)\s*$"
)

_OPERATORS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
    "==": operator.eq,
    "!=": operator.ne,
}

#: The coordinate fields of a matrix cell, in cell-ID order.  Cell
#: selectors match against these values.
COORD_KEYS = ("app", "backend", "config", "shape")

#: Quantile tokens a dotted path may end with when it walks into a
#: serialized histogram: ``p99``, ``p99_9`` (99.9) — with an optional
#: ``_ms`` suffix converting the histogram's seconds to milliseconds.
_HIST_QUANTILE_RE = re.compile(r"^p(?P<whole>\d+)(?:_(?P<frac>\d+))?(?P<ms>_ms)?$")


def histogram_stat(data: dict, token: str):
    """Resolve a stat token against a serialized log-linear histogram.

    ``data`` is a :meth:`LatencyHistogram.to_dict` document (recognized
    by its ``"buckets"`` key); tokens are exact fields (``count``,
    ``sum``, ``min``, ``max``), ``mean`` / ``mean_ms``, or quantiles
    like ``p50`` / ``p99_9`` / ``p99_ms``.  Returns ``None`` for an
    unknown token, which the threshold reports as a missing metric.
    """
    if token in ("count", "sum", "min", "max", "zero_count"):
        return data.get(token)
    if token in ("mean", "mean_ms"):
        count = data.get("count") or 0
        mean = (float(data.get("sum", 0.0)) / count) if count else 0.0
        return mean * 1e3 if token == "mean_ms" else mean
    match = _HIST_QUANTILE_RE.match(token)
    if match is None:
        return None
    p = float(
        f"{match.group('whole')}.{match.group('frac')}" if match.group("frac") else match.group("whole")
    )
    if not 0.0 <= p <= 100.0:
        return None
    value = LatencyHistogram.from_dict(data).percentile(p)
    return value * 1e3 if match.group("ms") else value


def resolve(record: dict, path: str):
    """Walk a dotted path through nested dicts (None when absent).

    A path whose walk lands on a serialized latency histogram may end
    with one extra stat token resolved *from* the histogram — e.g.
    ``model_stats.isolet.histograms.latency.p99_ms`` derives the p99 (in
    milliseconds) from the bucket data, so thresholds can gate on any
    quantile, not just the pre-derived ``latency_p99_ms`` fields.
    """
    node = record
    parts = path.split(".")
    for index, part in enumerate(parts):
        if not isinstance(node, dict) or part not in node:
            if (
                isinstance(node, dict)
                and "buckets" in node
                and index == len(parts) - 1
            ):
                return histogram_stat(node, part)
            return None
        node = node[part]
    return node


def _cell_coords(cell: dict) -> set:
    return {str(cell[key]) for key in COORD_KEYS if key in cell}


def match_cells(cells: Dict[str, dict], tokens: List[str]) -> Tuple[Dict[str, dict], str]:
    """Split a cell path's tokens into (matched cells, metric path).

    Selector tokens are consumed greedily from the front: a token is a
    selector while it equals a coordinate value (app/backend/config/
    shape) of at least one still-matching cell; the first token that
    isn't starts the metric path.  Matching cells are those whose
    coordinates contain *every* consumed selector.
    """
    matched = {
        cell_id: cell for cell_id, cell in cells.items() if isinstance(cell, dict)
    }
    index = 0
    while index < len(tokens):
        token = tokens[index]
        narrowed = {
            cell_id: cell
            for cell_id, cell in matched.items()
            if token in _cell_coords(cell)
        }
        if not narrowed:
            break
        matched = narrowed
        index += 1
    return matched, ".".join(tokens[index:])


class Threshold:
    """One ``--fail-on`` expression: a dotted metric path, a comparison
    operator and a numeric limit.  The expression states the *failure*
    condition — ``fallback_stages>0`` means "fail when positive".

    Raises:
        GateError: The expression does not parse.
    """

    def __init__(self, expression: str):
        match = _EXPR_RE.match(expression)
        if match is None:
            raise GateError(
                f"cannot parse threshold {expression!r} "
                f"(expected e.g. 'fallback_stages>0', 'model_stats.m.slo_violations>=5' "
                f"or 'cell.isolet.steady.p99_ms>40')"
            )
        self.expression = expression.strip()
        self.path = match.group("path").strip()
        self.op = match.group("op")
        self.limit = float(match.group("limit"))

    # -- evaluation ---------------------------------------------------------------
    def _check_value(self, value, where: str) -> Optional[str]:
        if value is None:
            return f"{self.expression}: metric missing {where}"
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            return f"{self.expression}: non-numeric metric {where} ({value!r})"
        if _OPERATORS[self.op](numeric, self.limit):
            return f"{self.expression}: violated {where} with value {numeric:g}"
        return None

    def violations(self, record: dict) -> List[str]:
        """Every violation message for one record (empty when clean).

        A plain path yields at most one message; a ``cell.`` path yields
        one per violating matched cell, and a selector matching no cell
        is itself a violation.
        """
        tokens = self.path.split(".")
        if tokens[0] in ("cell", "cells"):
            return self._cell_violations(record, tokens[1:])
        message = self._check_value(
            resolve(record, self.path), f"at {self.path!r}"
        )
        return [] if message is None else [message]

    def _cell_violations(self, record: dict, tokens: List[str]) -> List[str]:
        cells = record.get("cells") if isinstance(record, dict) else None
        if not isinstance(cells, dict) or not cells:
            return [f"{self.expression}: record has no 'cells' mapping"]
        if not tokens:
            return [f"{self.expression}: cell path needs selector and metric tokens"]
        matched, metric = match_cells(cells, tokens)
        if not metric:
            return [f"{self.expression}: no metric path after the cell selector"]
        messages = []
        for cell_id in sorted(matched):
            message = self._check_value(
                resolve(matched[cell_id], metric),
                f"in cell {cell_id} at {metric!r}",
            )
            if message is not None:
                messages.append(message)
        return messages

    def violation(self, record: dict) -> Optional[str]:
        """The first violation message for one record, or ``None`` when
        clean (compatibility shim over :meth:`violations`)."""
        messages = self.violations(record)
        return messages[0] if messages else None

    def __repr__(self) -> str:
        return f"Threshold({self.expression!r})"


def evaluate(record: dict, thresholds) -> List[str]:
    """All violation messages from evaluating thresholds against a record."""
    messages: List[str] = []
    for threshold in thresholds:
        messages.extend(threshold.violations(record))
    return messages
