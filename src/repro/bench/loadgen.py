"""Deterministic, seedable load-shape generators for the scenario matrix.

Every stochastic choice a matrix run makes — arrival times, which sample
each request carries, which model clone it targets, when re-training
rounds land — is drawn from generators rooted in **one** integer seed:
the ``REPRO_BENCH_SEED`` environment variable (default
:data:`DEFAULT_SEED`).  Per-cell generators are derived by hashing the
seed with the cell ID (:func:`derive_rng`), so cells are independent of
each other *and* of the matrix order: adding a cell to a config never
changes the request stream of any existing cell.

A :class:`Schedule` is the fully materialized request stream of one
cell — arrays of arrival offsets, sample-pool indices and model-clone
indices, plus the offsets at which online-update rounds apply.  Its
:meth:`~Schedule.fingerprint` hashes the raw array bytes, so "two
same-seed runs produce identical request streams" is a one-line
assertion on two hex digests.

Load shapes (the glossary lives in ``docs/BENCHMARKING.md``):

* ``steady`` — Poisson arrivals at a constant rate.
* ``burst`` — a steady baseline with evenly spaced bursts of
  back-to-back arrivals (queue-depth spikes).
* ``diurnal`` — arrival rate follows a raised-cosine ramp between a
  floor and the peak rate, ``periods`` times over the run.
* ``hot_skew`` — steady arrivals, but each request targets one of
  ``clones`` model replicas drawn from a Zipf distribution: one hot
  model dominates, exercising the fair scheduler under skew.
* ``serve_while_retraining`` — steady arrivals with ``updates`` online
  re-training rounds evenly spaced through the run; the mini-batches
  come from a pre-materialized :class:`~repro.serving.update_log
  .UpdateLog`, never from live RNG.
* ``growth`` — steady arrivals with ``appends`` shape-changing append
  rounds (``append_rows`` rows each) evenly spaced through the run; the
  rows come from the workload's pre-materialized append pool, so the
  grown constants are a pure function of the bench seed.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "SEED_ENV",
    "bench_seed",
    "derive_rng",
    "Schedule",
    "build_schedule",
    "SHAPE_KINDS",
]

#: The fixed default seed (today's date when the harness landed); any
#: run without ``REPRO_BENCH_SEED`` set uses exactly this stream.
DEFAULT_SEED = 20250808

#: The single environment variable seeding every benchmark RNG.
SEED_ENV = "REPRO_BENCH_SEED"


def bench_seed(default: int = DEFAULT_SEED) -> int:
    """The benchmark seed: ``REPRO_BENCH_SEED`` if set, else ``default``.

    Raises:
        ValueError: The environment variable is set but not an integer.
    """
    raw = os.environ.get(SEED_ENV)
    if raw is None or not raw.strip():
        return int(default)
    try:
        return int(raw, 0)
    except ValueError as exc:
        raise ValueError(
            f"{SEED_ENV}={raw!r} is not an integer seed"
        ) from exc


def derive_rng(seed: int, *salts: str) -> np.random.Generator:
    """A generator derived from (seed, salts) by hashing, order-stable.

    Hashing (rather than ``seed + offset`` arithmetic) keeps derived
    streams independent: ``derive_rng(s, "a.b")`` and
    ``derive_rng(s, "a.c")`` share no structure, and neither moves when
    unrelated salts are added elsewhere.
    """
    digest = hashlib.sha256(
        ":".join([str(int(seed)), *map(str, salts)]).encode("utf-8")
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


@dataclass(frozen=True)
class Schedule:
    """One cell's materialized request stream.

    Attributes:
        at: Arrival offsets in seconds from the run start (sorted,
            float64, one per request).
        sample: Index into the workload's sample pool per request.
        model: Model-clone index per request (all zeros unless the shape
            spreads load across clones, e.g. ``hot_skew``).
        updates: Offsets (seconds) at which online re-training rounds
            apply, in order — one per pre-materialized update-log record.
        n_models: Number of model clones the schedule targets.
    """

    at: np.ndarray
    sample: np.ndarray
    model: np.ndarray
    updates: Tuple[float, ...] = ()
    n_models: int = 1

    def __len__(self) -> int:
        return int(self.at.shape[0])

    @property
    def duration(self) -> float:
        """The last arrival offset (0.0 for an empty schedule)."""
        return float(self.at[-1]) if len(self) else 0.0

    def fingerprint(self) -> str:
        """SHA-1 over the canonical little-endian bytes of the stream.

        Two schedules with the same fingerprint carry byte-identical
        arrival times, sample choices, clone targets and update offsets
        — the reproducibility assertion for same-seed runs.
        """
        payload = b"".join(
            [
                np.ascontiguousarray(self.at, dtype="<f8").tobytes(),
                np.ascontiguousarray(self.sample, dtype="<i8").tobytes(),
                np.ascontiguousarray(self.model, dtype="<i8").tobytes(),
                np.asarray(self.updates, dtype="<f8").tobytes(),
                np.asarray([self.n_models], dtype="<i8").tobytes(),
            ]
        )
        return hashlib.sha1(payload).hexdigest()


def _arrival_gaps(rng: np.random.Generator, n: int, rate_rps: float) -> np.ndarray:
    return rng.exponential(1.0 / rate_rps, size=n)


def _steady(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n = params["requests"]
    at = np.cumsum(_arrival_gaps(rng, n, params["rate_rps"]))
    return Schedule(
        at=at,
        sample=rng.integers(0, n_pool, size=n),
        model=np.zeros(n, dtype=np.int64),
    )


def _burst(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n, bursts, burst_size = params["requests"], params["bursts"], params["burst_size"]
    baseline = n - bursts * burst_size
    gaps = _arrival_gaps(rng, baseline, params["rate_rps"])
    at = list(np.cumsum(gaps))
    span = at[-1] if at else bursts / params["rate_rps"]
    # Bursts land at evenly spaced instants; every burst arrival shares
    # its instant, so the batcher sees a queue-depth spike, not a ramp.
    for b in range(bursts):
        instant = span * (b + 1) / (bursts + 1)
        at.extend([instant] * burst_size)
    order = np.argsort(np.asarray(at), kind="stable")
    return Schedule(
        at=np.asarray(at, dtype=np.float64)[order],
        sample=rng.integers(0, n_pool, size=n),
        model=np.zeros(n, dtype=np.int64),
    )


def _diurnal(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n = params["requests"]
    peak, floor_fraction, periods = (
        params["rate_rps"],
        params["floor_fraction"],
        params["periods"],
    )
    floor = peak * floor_fraction
    phase = np.arange(n) / max(n, 1)
    # Raised-cosine rate ramp between floor and peak, `periods` cycles.
    rate = floor + (peak - floor) * 0.5 * (1.0 - np.cos(2.0 * np.pi * periods * phase))
    gaps = rng.exponential(1.0, size=n) / rate
    return Schedule(
        at=np.cumsum(gaps),
        sample=rng.integers(0, n_pool, size=n),
        model=np.zeros(n, dtype=np.int64),
    )


def _hot_skew(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n, clones, s = params["requests"], params["clones"], params["zipf_s"]
    weights = (1.0 + np.arange(clones)) ** -float(s)
    weights /= weights.sum()
    at = np.cumsum(_arrival_gaps(rng, n, params["rate_rps"]))
    return Schedule(
        at=at,
        sample=rng.integers(0, n_pool, size=n),
        model=rng.choice(clones, size=n, p=weights).astype(np.int64),
        n_models=clones,
    )


def _serve_while_retraining(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n, updates = params["requests"], params["updates"]
    at = np.cumsum(_arrival_gaps(rng, n, params["rate_rps"]))
    span = float(at[-1]) if n else 1.0
    offsets = tuple(span * (u + 1) / (updates + 1) for u in range(updates))
    return Schedule(
        at=at,
        sample=rng.integers(0, n_pool, size=n),
        model=np.zeros(n, dtype=np.int64),
        updates=offsets,
    )


def _growth(params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    n, appends = params["requests"], params["appends"]
    at = np.cumsum(_arrival_gaps(rng, n, params["rate_rps"]))
    span = float(at[-1]) if n else 1.0
    # Append rounds land at the same evenly spaced instants retraining
    # rounds would; the ``updates`` field carries their offsets.
    offsets = tuple(span * (a + 1) / (appends + 1) for a in range(appends))
    return Schedule(
        at=at,
        sample=rng.integers(0, n_pool, size=n),
        model=np.zeros(n, dtype=np.int64),
        updates=offsets,
    )


@dataclass(frozen=True)
class ShapeKind:
    """One load-shape family: its builder and its parameter schema."""

    build: object
    #: Parameter defaults; the *keys* double as the allowed-key schema
    #: the config parser validates shape specs against.
    params: Dict[str, object] = field(default_factory=dict)
    #: Whether cells of this shape apply online updates (and therefore
    #: need an updatable app and a pre-materialized update log).
    retraining: bool = False
    #: Whether cells of this shape apply shape-changing appends (and
    #: therefore need an appendable app with a pre-materialized row pool).
    growing: bool = False


#: Registry of load-shape kinds, keyed by the ``kind`` field of a shape
#: spec.  Every kind shares ``requests`` and ``rate_rps``.
SHAPE_KINDS: Dict[str, ShapeKind] = {
    "steady": ShapeKind(build=_steady, params={"requests": 128, "rate_rps": 400.0}),
    "burst": ShapeKind(
        build=_burst,
        params={"requests": 128, "rate_rps": 200.0, "bursts": 3, "burst_size": 24},
    ),
    "diurnal": ShapeKind(
        build=_diurnal,
        params={
            "requests": 128,
            "rate_rps": 400.0,
            "periods": 2,
            "floor_fraction": 0.25,
        },
    ),
    "hot_skew": ShapeKind(
        build=_hot_skew,
        params={"requests": 128, "rate_rps": 400.0, "clones": 3, "zipf_s": 1.5},
    ),
    "serve_while_retraining": ShapeKind(
        build=_serve_while_retraining,
        params={
            "requests": 128,
            "rate_rps": 300.0,
            "updates": 3,
            "update_batch": 48,
        },
        retraining=True,
    ),
    "growth": ShapeKind(
        build=_growth,
        params={
            "requests": 128,
            "rate_rps": 300.0,
            "appends": 3,
            "append_rows": 4,
        },
        growing=True,
    ),
}


def build_schedule(kind: str, params: dict, rng: np.random.Generator, n_pool: int) -> Schedule:
    """Materialize one cell's request stream.

    ``params`` must already be validated/defaulted by the config layer
    (:func:`repro.bench.config.load_config`); unknown kinds raise
    ``KeyError`` here because reaching this point with one is a
    programming error, not a user-input error.
    """
    shape = SHAPE_KINDS[kind]
    merged = dict(shape.params)
    merged.update(params)
    return shape.build(merged, rng, n_pool)
