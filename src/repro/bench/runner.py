"""The scenario-matrix executor: one cell, one real serving stack.

Each cell builds its workload (:mod:`repro.bench.workloads`), stands up
a real :class:`~repro.serving.server.InferenceServer` — and, for
transport backends, the asyncio socket front end — then plays the
cell's materialized :class:`~repro.bench.loadgen.Schedule` against it:
paced arrivals, clone targeting, and (for retraining shapes) online
update rounds **fed from a pre-materialized update log**, never from
live RNG.  The emitted metrics come straight from
:meth:`ServerStats.to_dict`, so every number CI gates on is the same
number the serving runtime itself reports.

The per-cell document (one entry in ``BENCH_matrix.json``'s ``cells``
mapping, keyed by ``app.backend.config.shape``) carries the cell
coordinates, throughput, latency quantiles plus the full serialized
latency histogram (so gates can derive *any* quantile), the
failure/shed/swap/fallback counters, the request-stream fingerprint
(``stream_sha1`` — two same-seed runs must agree byte-for-byte), and a
``trend`` block with deltas against the checked-in history run.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Callable, List, Optional

import numpy as np

from repro.bench.config import Cell, MatrixConfig, MatrixConfigError, build_approximation
from repro.bench.loadgen import SHAPE_KINDS, build_schedule, derive_rng
from repro.bench.workloads import build_workload

__all__ = ["run_matrix", "run_cell", "trend_deltas"]

#: Per-request settle timeout — generous, the cells themselves are small.
_RESULT_TIMEOUT_S = 60.0


def _clone_names(cell: Cell, n_models: int) -> List[str]:
    if n_models == 1:
        return [cell.app]
    return [f"{cell.app}-{k}" for k in range(n_models)]


def _append_pool_rows(cell, workload, shape_params):
    """The growth shape's append rounds, sliced from the workload pool.

    The pool — materialized by the workload builder from the derived
    RNG — is what the run appends, so the grown constants are a pure
    function of (bench seed, cell ID), like every other stream choice.
    """
    appends, batch = shape_params["appends"], shape_params["append_rows"]
    pool = workload.append_rows
    if pool is None or appends * batch > pool.shape[0]:
        have = 0 if pool is None else pool.shape[0]
        raise MatrixConfigError(
            f"cell {cell.cell_id}: {appends} append rounds x {batch} rows "
            f"need {appends * batch} pooled rows, but app {cell.app!r} "
            f"provides {have} — shrink the shape or grow the app's append_pool"
        )
    return [pool[round_index * batch : (round_index + 1) * batch] for round_index in range(appends)]


def _materialize_update_log(cell, workload, shape_params, model_name, directory):
    """Slice the workload's labelled pool into the cell's update log.

    The log — not the pool arrays — is what the run replays, so the
    exact bytes behind every hot-swap are on disk before the first
    request is submitted.
    """
    from repro.serving.update_log import UpdateLog

    updates, batch = shape_params["updates"], shape_params["update_batch"]
    pool = workload.update_samples
    if pool is None or updates * batch > pool.shape[0]:
        have = 0 if pool is None else pool.shape[0]
        raise MatrixConfigError(
            f"cell {cell.cell_id}: {updates} update rounds x batch {batch} "
            f"need {updates * batch} labelled samples, but app {cell.app!r} "
            f"provides {have} — shrink the shape or grow the app's pool"
        )
    log = UpdateLog(os.path.join(directory, "source.updatelog"))
    labels = np.asarray(workload.update_labels, dtype=np.int64)
    for round_index in range(updates):
        sl = slice(round_index * batch, (round_index + 1) * batch)
        log.append(model_name, pool[sl], labels[sl])
    return log


def _drive_in_process(server, names, workload, schedule):
    """Paced submission through the broker's future contract."""
    from repro.serving.batching import DeadlineExceeded

    futures = []
    t0 = time.perf_counter()
    for at, sample, model in zip(schedule.at, schedule.sample, schedule.model):
        delay = t0 + float(at) - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(server.submit(names[int(model)], workload.samples[int(sample)]))
    failures = shed = 0
    for future in futures:
        try:
            future.result(timeout=_RESULT_TIMEOUT_S)
        except DeadlineExceeded:
            shed += 1
        except Exception:
            failures += 1
    return failures, shed


def _drive_transport(server, names, workload, schedule, clients):
    """Paced submission over the socket front end, N concurrent clients."""
    from repro.serving.transport import ServingClient, TransportServer

    transport = TransportServer(server)
    host, port = transport.start()
    failures = [0] * clients
    try:
        t0 = time.perf_counter()

        def client_loop(c: int) -> None:
            with ServingClient(host, port, timeout=_RESULT_TIMEOUT_S) as client:
                for index in range(c, len(schedule), clients):
                    delay = t0 + float(schedule.at[index]) - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        client.infer(
                            names[int(schedule.model[index])],
                            workload.samples[int(schedule.sample[index])],
                        )
                    except Exception:
                        failures[c] += 1

        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"bench-client-{c}")
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        transport.stop()
    return sum(failures), 0


def _drive_pool(group, names, workload, schedule, clients):
    """Paced submission against a replica group through a rendezvous-
    routing client pool — each model consistently lands on its replica."""
    from repro.serving.replica import ClientPool

    pool = ClientPool(group, timeout=_RESULT_TIMEOUT_S)
    failures = [0] * clients
    try:
        t0 = time.perf_counter()

        def client_loop(c: int) -> None:
            for index in range(c, len(schedule), clients):
                delay = t0 + float(schedule.at[index]) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    pool.infer(
                        names[int(schedule.model[index])],
                        workload.samples[int(schedule.sample[index])],
                    )
                except Exception:
                    failures[c] += 1

        threads = [
            threading.Thread(target=client_loop, args=(c,), name=f"bench-pool-{c}")
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        pool.close()
    return sum(failures), 0


def run_cell(cell: Cell, config: MatrixConfig, seed: int) -> dict:
    """Execute one matrix cell; returns its metrics dict."""
    from repro.serving import InferenceServer, merge_server_stats
    from repro.serving.replica import ReplicaGroup
    from repro.serving.update_log import UpdateLog

    app_spec = config.apps[cell.app]
    backend = config.backends[cell.backend]
    approx = build_approximation(config.configs[cell.config])
    shape = config.shapes[cell.shape]
    shape_kind = SHAPE_KINDS[shape["kind"]]

    rng = derive_rng(seed, cell.cell_id)
    workload = build_workload(app_spec, rng)
    schedule = build_schedule(
        shape["kind"],
        {key: value for key, value in shape.items() if key != "kind"},
        rng,
        n_pool=workload.samples.shape[0],
    )
    names = _clone_names(cell, schedule.n_models)

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        source_log = None
        live_log = None
        append_rounds = None
        if shape_kind.retraining:
            source_log = _materialize_update_log(cell, workload, shape, names[0], tmp)
            # The server also keeps its own log, so the run exercises the
            # append hook; it must end up mirroring the source log 1:1.
            live_log = UpdateLog(os.path.join(tmp, "live.updatelog"))
        if shape_kind.growing:
            append_rounds = _append_pool_rows(cell, workload, shape)
            # Growth cells log too: every applied append must land as a
            # typed growth record in the server's own log.
            live_log = UpdateLog(os.path.join(tmp, "live.updatelog"))

        n_replicas = int(backend.get("replicas", 1))
        if n_replicas > 1:
            # Replica cells front the brokers with a ReplicaGroup; the
            # group owns the update log (it refuses one in server
            # options) and fans register/update/drain across members.
            server = ReplicaGroup(
                replicas=n_replicas,
                update_log=live_log,
                workers=tuple(backend["workers"]),
                policy=backend["policy"],
                max_batch_size=int(backend["max_batch_size"]),
                max_wait_seconds=float(backend["max_wait_ms"]) / 1e3,
            )
        else:
            server = InferenceServer(
                workers=tuple(backend["workers"]),
                policy=backend["policy"],
                max_batch_size=int(backend["max_batch_size"]),
                max_wait_seconds=float(backend["max_wait_ms"]) / 1e3,
                update_log=live_log,
            )
        for name in names:
            server.register(
                workload.servable, name=name, config=approx, shards=backend["shards"]
            )

        versions: List[int] = []
        update_errors: List[str] = []
        appended_rows = 0
        updater = None
        apply_rounds = None
        if source_log is not None:
            records = source_log.read_all()

            def apply_updates(t0: float) -> None:
                for offset, record in zip(schedule.updates, records):
                    delay = t0 + offset - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        versions.append(server.update(record.model, record.samples, record.labels))
                    except Exception as exc:  # surfaced as cell failures below
                        update_errors.append(f"{type(exc).__name__}: {exc}")

            apply_rounds = apply_updates
        if append_rounds is not None:

            def apply_appends(t0: float) -> None:
                nonlocal appended_rows
                for offset, rows in zip(schedule.updates, append_rounds):
                    delay = t0 + offset - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    try:
                        versions.append(server.append(names[0], rows))
                        appended_rows += int(rows.shape[0])
                    except Exception as exc:  # surfaced as cell failures below
                        update_errors.append(f"{type(exc).__name__}: {exc}")

            apply_rounds = apply_appends

        start = time.perf_counter()
        with server:
            if apply_rounds is not None:
                updater = threading.Thread(target=apply_rounds, args=(start,), name="bench-updater")
                updater.start()
            if n_replicas > 1:
                failures, shed = _drive_pool(
                    server, names, workload, schedule, int(backend["clients"])
                )
            elif backend["transport"]:
                failures, shed = _drive_transport(
                    server, names, workload, schedule, int(backend["clients"])
                )
            else:
                failures, shed = _drive_in_process(server, names, workload, schedule)
            if updater is not None:
                updater.join()
            server.drain()
            if n_replicas > 1:
                # Per-replica snapshots, merged into one group-wide view
                # (already dict-shaped — counters summed, histograms and
                # quantiles merged, model versions reconciled).
                stats = merge_server_stats(server.stats())
            else:
                stats = server.stats().to_dict()
        elapsed = time.perf_counter() - start

        # Packed class-memory residency, pooled over the cell's model
        # clones: 0 bytes / 0.0 shrink when the config serves unpacked.
        resident = unpacked = 0
        for name in names:
            residency = stats["model_stats"].get(name, {}).get("residency")
            if residency:
                resident += int(residency["class_memory_bytes"])
                unpacked += int(residency["class_memory_unpacked_bytes"])

        metrics = {
            **cell.coords(),
            "replicas": n_replicas,
            "requests": len(schedule),
            "duration_s": elapsed,
            "served_rps": len(schedule) / elapsed if elapsed > 0 else 0.0,
            "p50_ms": stats["latency_p50_ms"],
            "p95_ms": stats["latency_p95_ms"],
            "p99_ms": stats["latency_p99_ms"],
            "mean_ms": stats["mean_latency_ms"],
            "mean_batch_size": stats["mean_batch_size"],
            "failures": int(stats["failures"]) + failures + len(update_errors),
            "shed": int(stats["deadline_exceeded"]) + shed,
            "swaps": int(stats["swaps"]),
            "vectorized_stages": int(stats["vectorized_stages"]),
            "fallback_stages": int(stats["fallback_stages"]),
            "resident_class_memory_bytes": resident,
            "class_memory_shrink": (unpacked / resident) if resident else 0.0,
            "stream_sha1": schedule.fingerprint(),
            "latency_histogram": stats["latency_histogram"],
        }
        # ``dropped`` is the zero-drop contract in one number: every
        # request that failed or was shed, server- or client-side.
        metrics["dropped"] = int(metrics["failures"]) + int(metrics["shed"])
        if source_log is not None:
            metrics["versions"] = versions
            metrics["update_errors"] = update_errors
            # The hook must have mirrored every applied round.
            metrics["update_log_records"] = len(live_log)
        if append_rounds is not None:
            metrics["versions"] = versions
            metrics["update_errors"] = update_errors
            metrics["appended_rows"] = appended_rows
            metrics["append_rows_per_s"] = appended_rows / elapsed if elapsed > 0 else 0.0
            # Every applied append must land as a typed growth record.
            metrics["update_log_records"] = len(live_log)
        return metrics


#: (metric, higher_is_better) pairs the trend block reports deltas for.
#: ``append_rows_per_s`` only exists on growth cells; trend_deltas skips
#: metrics absent from either run.
_TREND_METRICS = (("served_rps", True), ("p99_ms", False), ("append_rows_per_s", True))


def trend_deltas(metrics: dict, baseline: dict) -> dict:
    """Percent deltas of one cell against its history-run counterpart.

    Positive ``*_delta_pct`` always means *regression* — throughput
    deltas are sign-flipped — so a trend gate is uniformly
    ``cell.<...>.trend.p99_ms_delta_pct>25``-shaped regardless of the
    metric's polarity.
    """
    trend = {}
    for metric, higher_is_better in _TREND_METRICS:
        old = baseline.get(metric)
        new = metrics.get(metric)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)) or old <= 0:
            continue
        delta_pct = (new - old) / old * 100.0
        trend[f"{metric}_delta_pct"] = -delta_pct if higher_is_better else delta_pct
    return trend


def run_matrix(
    config: MatrixConfig,
    seed: int,
    cells: Optional[List[Cell]] = None,
    history: Optional[dict] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the matrix (or a cell subset) and return the summary document.

    The document is what ``BENCH_matrix.json`` holds: run metadata plus
    the per-cell metrics mapping that ``cell.``-path gates resolve
    against.  ``history`` is a previously emitted document; when given,
    each cell present in both runs gains a ``trend`` block.
    """
    selected = config.cells if cells is None else cells
    baseline_cells = (history or {}).get("cells", {})
    results = {}
    for index, cell in enumerate(selected):
        if progress is not None:
            progress(f"[{index + 1}/{len(selected)}] {cell.cell_id}")
        metrics = run_cell(cell, config, seed)
        baseline = baseline_cells.get(cell.cell_id)
        if isinstance(baseline, dict):
            metrics["trend"] = trend_deltas(metrics, baseline)
        results[cell.cell_id] = metrics
    timestamp = float(os.environ.get("REPRO_BENCH_TIMESTAMP", time.time()))
    return {
        "benchmark": "matrix",
        "config_name": config.name,
        "seed": int(seed),
        "timestamp": timestamp,
        "cells": results,
    }
