"""repro.bench — the config-driven scenario-matrix benchmark harness.

The paper's evaluation is a *matrix* — application × accelerator ×
approximation configuration — and so is this harness: one JSON config
declares named **apps**, **backends**, **configs** and load **shapes**,
and every cell of their cross product drives the real serving stack
(:class:`~repro.serving.broker.RequestBroker` via
:class:`~repro.serving.server.InferenceServer`, optionally through the
socket transport) under a deterministic, seeded request stream.  One
command runs it all::

    PYTHONPATH=src python -m repro.bench \\
        --config benchmarks/configs/matrix_smoke.json --out BENCH_matrix.json

See ``docs/BENCHMARKING.md`` for the config schema, the load-shape
glossary and the per-cell gating recipe.  The pieces:

* :mod:`repro.bench.config` — schema parsing/validation with typed
  :class:`~repro.bench.config.MatrixConfigError` diagnostics.
* :mod:`repro.bench.loadgen` — seeded deterministic load shapes
  (steady, burst, diurnal ramp, adversarial hot-model skew,
  serve-while-retraining), all rooted in ``REPRO_BENCH_SEED`` with
  per-cell derived streams and SHA-1 fingerprints.
* :mod:`repro.bench.workloads` — the app catalog turning stock
  :mod:`repro.apps` applications into served workloads.
* :mod:`repro.bench.runner` — the per-cell executor; retraining cells
  feed their update rounds from a pre-materialized
  :class:`~repro.serving.update_log.UpdateLog`, never live RNG.
* :mod:`repro.bench.gates` — the shared ``--fail-on`` threshold grammar
  (also behind ``tools/scrape_stats.py``) with per-cell
  ``cell.<app>.<shape>.p99_ms>limit`` paths and trend-delta gating.
"""

from repro.bench.config import (
    Cell,
    MatrixConfig,
    MatrixConfigError,
    build_approximation,
    load_config,
    parse_config,
)
from repro.bench.gates import GateError, Threshold, evaluate, match_cells, resolve
from repro.bench.loadgen import (
    DEFAULT_SEED,
    SEED_ENV,
    SHAPE_KINDS,
    Schedule,
    bench_seed,
    build_schedule,
    derive_rng,
)
from repro.bench.runner import run_cell, run_matrix, trend_deltas
from repro.bench.workloads import CATALOG, Workload, build_workload

__all__ = [
    "MatrixConfig",
    "MatrixConfigError",
    "Cell",
    "load_config",
    "parse_config",
    "build_approximation",
    "Threshold",
    "GateError",
    "evaluate",
    "resolve",
    "match_cells",
    "Schedule",
    "build_schedule",
    "bench_seed",
    "derive_rng",
    "DEFAULT_SEED",
    "SEED_ENV",
    "SHAPE_KINDS",
    "CATALOG",
    "Workload",
    "build_workload",
    "run_matrix",
    "run_cell",
    "trend_deltas",
]
