"""The scenario-matrix config schema: parsing, validation, typed errors.

A matrix config is one JSON document (YAML is accepted only when PyYAML
happens to be installed — CI does not install it, so checked-in configs
are JSON) declaring the four axes and the cells swept over them::

    {
      "name": "smoke",
      "apps":     {"isolet": {"kind": "classification"}},
      "backends": {"cpu": {"workers": ["cpu"]}},
      "configs":  {"exact": {}},
      "shapes":   {"steady": {"kind": "steady", "requests": 96}},
      "matrix":   {"apps": ["isolet"], "shapes": ["steady"]},
      "gates":    ["cell.isolet.steady.failures>0"]
    }

* **apps** — named app specs; ``kind`` selects a
  :data:`repro.bench.workloads.CATALOG` entry, the remaining keys
  override that kind's parameters.
* **backends** — worker/transport topology: worker targets, optional
  class-memory ``shards``, ``transport: true`` to drive the cell over
  the socket front end with ``clients`` concurrent clients,
  ``replicas: N`` to serve the cell from an N-replica
  :class:`~repro.serving.replica.ReplicaGroup` behind a rendezvous-
  routing client pool (implies the socket transports; per-replica
  stats are merged into one cell view), and the micro-batching
  watermarks.
* **configs** — approximation presets (``binarize``,
  ``binarize_reduce``, ``perforations``); ``{}`` is exact serving.
* **shapes** — load shapes; ``kind`` selects a
  :data:`repro.bench.loadgen.SHAPE_KINDS` entry.
* **matrix** — the axis values to sweep (each key defaults to *all*
  defined names of that axis); the cell set is their cross product,
  minus ``exclude`` entries (partial coordinate matches), plus any
  explicit ``cells``.
* **gates** — ``--fail-on`` expressions evaluated against the emitted
  document after every run (see :mod:`repro.bench.gates`).

Everything wrong with a config raises :class:`MatrixConfigError` with a
message naming the offending key — unknown axis/kind/parameter names,
malformed gate limits, duplicate cell IDs, an empty matrix, a
retraining shape paired with a non-updatable app, a growth shape
paired with a non-appendable one.  The CLI maps this
error class to exit code 2 (usage error), distinct from exit code 1
(gate violations).
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.gates import COORD_KEYS, GateError, Threshold
from repro.bench.loadgen import SHAPE_KINDS
from repro.bench.workloads import CATALOG
from repro.ir.dataflow import Target

__all__ = ["MatrixConfigError", "Cell", "MatrixConfig", "load_config", "build_approximation"]


class MatrixConfigError(ValueError):
    """A structurally invalid matrix config (unknown key, bad limit,
    duplicate cell, empty matrix, ...).  Tools map it to exit code 2."""


#: Axis names live inside dotted gate paths, so they must be dot-free
#: and must not shadow the tokens the path grammar already claims.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")

_RESERVED_NAMES = frozenset(
    {
        "cell",
        "cells",
        "trend",
        *COORD_KEYS,
        "requests",
        "duration_s",
        "served_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "mean_ms",
        "mean_batch_size",
        "failures",
        "shed",
        "swaps",
        "versions",
        "fallback_stages",
        "vectorized_stages",
        "replicas",
        "resident_class_memory_bytes",
        "class_memory_shrink",
        "stream_sha1",
        "latency_histogram",
        "dropped",
        "appended_rows",
        "append_rows_per_s",
    }
)

_TOP_LEVEL_KEYS = frozenset(
    {"name", "seed", "history", "apps", "backends", "configs", "shapes", "matrix", "cells", "exclude", "gates"}
)

_BACKEND_DEFAULTS = {
    "workers": ["cpu"],
    "shards": None,
    "replicas": 1,
    "transport": False,
    "clients": 4,
    "max_batch_size": 32,
    "max_wait_ms": 2.0,
    "policy": "least_loaded",
}

_CONFIG_KEYS = frozenset({"binarize", "binarize_reduce", "perforations"})
_PERFORATION_KEYS = frozenset({"opcode", "begin", "end", "stride"})
_PERFORATABLE_OPCODES = frozenset({"matmul", "cossim", "hamming_distance", "l2norm"})

_TARGETS = frozenset(t.value for t in Target)


@dataclass(frozen=True)
class Cell:
    """One matrix cell: a coordinate on each of the four axes."""

    app: str
    backend: str
    config: str
    shape: str

    @property
    def cell_id(self) -> str:
        return f"{self.app}.{self.backend}.{self.config}.{self.shape}"

    def coords(self) -> Dict[str, str]:
        return {"app": self.app, "backend": self.backend, "config": self.config, "shape": self.shape}


@dataclass
class MatrixConfig:
    """A fully validated matrix config (see the module docstring)."""

    name: str
    apps: Dict[str, dict]
    backends: Dict[str, dict]
    configs: Dict[str, dict]
    shapes: Dict[str, dict]
    cells: List[Cell]
    gates: List[str] = field(default_factory=list)
    seed: Optional[int] = None
    history: Optional[str] = None

    @property
    def cell_ids(self) -> List[str]:
        return [cell.cell_id for cell in self.cells]


def _require_mapping(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise MatrixConfigError(f"{what} must be a mapping, got {type(value).__name__}")
    return value


def _check_name(name, axis: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise MatrixConfigError(
            f"invalid {axis} name {name!r}: names are lowercase [a-z0-9_-], no dots "
            f"(they become path segments in cell IDs and gate expressions)"
        )
    if name in _RESERVED_NAMES:
        raise MatrixConfigError(
            f"{axis} name {name!r} is reserved (it collides with a cell metric "
            f"or path token in gate expressions)"
        )
    return name


def _check_keys(spec: dict, allowed, what: str) -> None:
    unknown = sorted(set(spec) - set(allowed))
    if unknown:
        raise MatrixConfigError(
            f"unknown key(s) {', '.join(map(repr, unknown))} in {what} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _positive(spec: dict, key: str, what: str, integer: bool = False) -> None:
    value = spec.get(key)
    if value is None:
        return
    number_types = (int,) if integer else (int, float)
    if isinstance(value, bool) or not isinstance(value, number_types) or value <= 0:
        kind = "a positive integer" if integer else "a positive number"
        raise MatrixConfigError(f"{what}: {key!r} must be {kind}, got {value!r}")


def _parse_apps(section) -> Dict[str, dict]:
    apps = {}
    for name, spec in _require_mapping(section, "'apps'").items():
        _check_name(name, "app")
        spec = dict(_require_mapping(spec, f"app {name!r}"))
        kind = spec.get("kind")
        if kind not in CATALOG:
            raise MatrixConfigError(
                f"app {name!r}: unknown kind {kind!r} "
                f"(known kinds: {', '.join(sorted(CATALOG))})"
            )
        _check_keys(spec, set(CATALOG[kind].params) | {"kind"}, f"app {name!r} (kind {kind!r})")
        apps[name] = spec
    if not apps:
        raise MatrixConfigError("'apps' must define at least one app")
    return apps


def _parse_backends(section) -> Dict[str, dict]:
    backends = {}
    for name, spec in _require_mapping(section, "'backends'").items():
        _check_name(name, "backend")
        spec = dict(_require_mapping(spec, f"backend {name!r}"))
        _check_keys(spec, _BACKEND_DEFAULTS, f"backend {name!r}")
        merged = dict(_BACKEND_DEFAULTS)
        merged.update(spec)
        workers = merged["workers"]
        if not isinstance(workers, list) or not workers:
            raise MatrixConfigError(f"backend {name!r}: 'workers' must be a non-empty list")
        for worker in workers:
            if worker not in _TARGETS:
                raise MatrixConfigError(
                    f"backend {name!r}: unknown worker target {worker!r} "
                    f"(targets: {', '.join(sorted(_TARGETS))})"
                )
        shards = merged["shards"]
        if shards is not None and (isinstance(shards, bool) or not isinstance(shards, int) or shards < 2):
            raise MatrixConfigError(f"backend {name!r}: 'shards' must be an integer >= 2 or null")
        _positive(merged, "replicas", f"backend {name!r}", integer=True)
        if merged["replicas"] > 1 and merged["transport"]:
            raise MatrixConfigError(
                f"backend {name!r}: 'transport' is implied by 'replicas' > 1 "
                "(the replica group is always driven over its socket "
                "transports); drop the 'transport' flag"
            )
        _positive(merged, "clients", f"backend {name!r}", integer=True)
        _positive(merged, "max_batch_size", f"backend {name!r}", integer=True)
        _positive(merged, "max_wait_ms", f"backend {name!r}")
        backends[name] = merged
    if not backends:
        raise MatrixConfigError("'backends' must define at least one backend")
    return backends


def _parse_configs(section) -> Dict[str, dict]:
    configs = {}
    for name, spec in _require_mapping(section, "'configs'").items():
        _check_name(name, "config")
        spec = dict(_require_mapping(spec, f"config {name!r}"))
        _check_keys(spec, _CONFIG_KEYS, f"config {name!r}")
        for flag in ("binarize", "binarize_reduce"):
            if not isinstance(spec.get(flag, False), bool):
                raise MatrixConfigError(f"config {name!r}: {flag!r} must be a boolean")
        for index, perf in enumerate(spec.get("perforations", [])):
            what = f"config {name!r} perforation #{index + 1}"
            perf = _require_mapping(perf, what)
            _check_keys(perf, _PERFORATION_KEYS, what)
            if perf.get("opcode") not in _PERFORATABLE_OPCODES:
                raise MatrixConfigError(
                    f"{what}: unknown opcode {perf.get('opcode')!r} "
                    f"(perforatable: {', '.join(sorted(_PERFORATABLE_OPCODES))})"
                )
            stride = perf.get("stride", 1)
            if isinstance(stride, bool) or not isinstance(stride, int) or stride < 1:
                raise MatrixConfigError(f"{what}: 'stride' must be an integer >= 1")
        configs[name] = spec
    if not configs:
        raise MatrixConfigError("'configs' must define at least one config (use {} for exact)")
    return configs


def _parse_shapes(section) -> Dict[str, dict]:
    shapes = {}
    for name, spec in _require_mapping(section, "'shapes'").items():
        _check_name(name, "shape")
        spec = dict(_require_mapping(spec, f"shape {name!r}"))
        kind = spec.get("kind")
        if kind not in SHAPE_KINDS:
            raise MatrixConfigError(
                f"shape {name!r}: unknown kind {kind!r} "
                f"(known kinds: {', '.join(sorted(SHAPE_KINDS))})"
            )
        allowed = set(SHAPE_KINDS[kind].params) | {"kind"}
        _check_keys(spec, allowed, f"shape {name!r} (kind {kind!r})")
        for key in SHAPE_KINDS[kind].params:
            integer = key in ("requests", "bursts", "burst_size", "periods", "clones", "updates", "update_batch", "appends", "append_rows")
            _positive(spec, key, f"shape {name!r}", integer=integer)
        merged = dict(SHAPE_KINDS[kind].params)
        merged.update(spec)
        if kind == "burst" and merged["requests"] <= merged["bursts"] * merged["burst_size"]:
            raise MatrixConfigError(
                f"shape {name!r}: 'requests' ({merged['requests']}) must exceed "
                f"bursts*burst_size ({merged['bursts']}*{merged['burst_size']}) — "
                f"there would be no baseline arrivals"
            )
        if merged.get("floor_fraction") is not None and not 0 < merged["floor_fraction"] <= 1:
            raise MatrixConfigError(f"shape {name!r}: 'floor_fraction' must be in (0, 1]")
        shapes[name] = merged
    if not shapes:
        raise MatrixConfigError("'shapes' must define at least one shape")
    return shapes


def _resolve_cells(data: dict, apps, backends, configs, shapes) -> List[Cell]:
    axes = {"apps": apps, "backends": backends, "configs": configs, "shapes": shapes}
    matrix = _require_mapping(data.get("matrix", {}), "'matrix'")
    _check_keys(matrix, axes, "'matrix'")
    selected = {}
    for axis, defined in axes.items():
        names = matrix.get(axis, sorted(defined))
        if not isinstance(names, list) or not names:
            raise MatrixConfigError(f"matrix.{axis} must be a non-empty list of names")
        for name in names:
            if name not in defined:
                raise MatrixConfigError(
                    f"matrix.{axis} references undefined name {name!r} "
                    f"(defined: {', '.join(sorted(defined))})"
                )
        selected[axis] = list(dict.fromkeys(names))

    cells = [
        Cell(app=a, backend=b, config=c, shape=s)
        for a in selected["apps"]
        for b in selected["backends"]
        for c in selected["configs"]
        for s in selected["shapes"]
    ]

    for index, excl in enumerate(data.get("exclude", [])):
        what = f"exclude #{index + 1}"
        excl = _require_mapping(excl, what)
        _check_keys(excl, COORD_KEYS, what)
        if not excl:
            raise MatrixConfigError(f"{what} is empty — it would exclude every cell")
        cells = [
            cell
            for cell in cells
            if not all(cell.coords()[key] == value for key, value in excl.items())
        ]

    for index, extra in enumerate(data.get("cells", [])):
        what = f"cells #{index + 1}"
        extra = _require_mapping(extra, what)
        _check_keys(extra, COORD_KEYS, what)
        missing = [key for key in COORD_KEYS if key not in extra]
        if missing:
            raise MatrixConfigError(f"{what} is missing coordinate(s): {', '.join(missing)}")
        for key, defined in (
            ("app", apps), ("backend", backends), ("config", configs), ("shape", shapes)
        ):
            if extra[key] not in defined:
                raise MatrixConfigError(
                    f"{what}: undefined {key} {extra[key]!r} "
                    f"(defined: {', '.join(sorted(defined))})"
                )
        cells.append(Cell(**extra))

    seen, duplicates = set(), []
    for cell in cells:
        if cell.cell_id in seen:
            duplicates.append(cell.cell_id)
        seen.add(cell.cell_id)
    if duplicates:
        raise MatrixConfigError(f"duplicate cell ID(s): {', '.join(sorted(set(duplicates)))}")
    if not cells:
        raise MatrixConfigError("the matrix resolves to zero cells (empty matrix)")

    for cell in cells:
        shape_kind = SHAPE_KINDS[shapes[cell.shape]["kind"]]
        app_kind = CATALOG[apps[cell.app]["kind"]]
        if shape_kind.retraining and not app_kind.updatable:
            raise MatrixConfigError(
                f"cell {cell.cell_id}: shape {cell.shape!r} replays online updates, "
                f"but app {cell.app!r} (kind {apps[cell.app]['kind']!r}) has no "
                f"update rule (updatable kinds: "
                f"{', '.join(sorted(k for k, v in CATALOG.items() if v.updatable))})"
            )
        if shape_kind.growing and not app_kind.appendable:
            raise MatrixConfigError(
                f"cell {cell.cell_id}: shape {cell.shape!r} applies shape-changing "
                f"appends, but app {cell.app!r} (kind {apps[cell.app]['kind']!r}) has "
                f"no append rule (appendable kinds: "
                f"{', '.join(sorted(k for k, v in CATALOG.items() if v.appendable))})"
            )
    return cells


def parse_config(data: dict, name: str = "matrix") -> MatrixConfig:
    """Validate a raw config mapping into a :class:`MatrixConfig`.

    Raises:
        MatrixConfigError: Any structural problem, with a message naming
            the offending key (see the module docstring for the rules).
    """
    data = _require_mapping(data, "the matrix config")
    _check_keys(data, _TOP_LEVEL_KEYS, "the matrix config")
    for section in ("apps", "backends", "configs", "shapes"):
        if section not in data:
            raise MatrixConfigError(f"the matrix config is missing the {section!r} section")

    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise MatrixConfigError(f"'seed' must be an integer, got {seed!r}")
    history = data.get("history")
    if history is not None and not isinstance(history, str):
        raise MatrixConfigError(f"'history' must be a path string, got {history!r}")

    apps = _parse_apps(data["apps"])
    backends = _parse_backends(data["backends"])
    configs = _parse_configs(data["configs"])
    shapes = _parse_shapes(data["shapes"])
    cells = _resolve_cells(data, apps, backends, configs, shapes)

    gates = data.get("gates", [])
    if not isinstance(gates, list):
        raise MatrixConfigError("'gates' must be a list of threshold expressions")
    for expression in gates:
        try:
            Threshold(expression)
        except GateError as exc:
            raise MatrixConfigError(f"malformed gate: {exc}") from exc

    return MatrixConfig(
        name=str(data.get("name", name)),
        apps=apps,
        backends=backends,
        configs=configs,
        shapes=shapes,
        cells=cells,
        gates=list(gates),
        seed=seed,
        history=history,
    )


def load_config(path) -> MatrixConfig:
    """Load and validate a matrix config file (JSON; YAML if available).

    Raises:
        MatrixConfigError: The file is unreadable, unparsable, or fails
            validation.  YAML configs additionally require PyYAML, which
            CI does not install — checked-in configs are JSON.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise MatrixConfigError(f"cannot read config {path}: {exc}") from exc
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:
            raise MatrixConfigError(
                f"config {path} is YAML but PyYAML is not installed — "
                f"use the JSON config format"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise MatrixConfigError(f"config {path} is not valid YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise MatrixConfigError(f"config {path} is not valid JSON: {exc}") from exc
    return parse_config(data, name=path.stem)


def build_approximation(spec: dict):
    """An :class:`~repro.transforms.pipeline.ApproximationConfig` for one
    validated config spec, or ``None`` for the exact (empty) preset."""
    from repro.transforms.perforation import PerforationSpec
    from repro.transforms.pipeline import ApproximationConfig

    perforations = tuple(
        PerforationSpec(
            opcode=perf["opcode"],
            begin=int(perf.get("begin", 0)),
            end=None if perf.get("end") is None else int(perf["end"]),
            stride=int(perf.get("stride", 1)),
        )
        for perf in spec.get("perforations", [])
    )
    config = ApproximationConfig(
        binarize=bool(spec.get("binarize", False)),
        binarize_reduce=bool(spec.get("binarize_reduce", False)),
        perforations=perforations,
    )
    return None if config.is_identity else config
