"""The scenario-matrix CLI: ``python -m repro.bench --config ...``.

One command runs a config's full matrix (or a ``--cell``-selected
subset), writes ``BENCH_matrix.json``, and gates the result::

    PYTHONPATH=src python -m repro.bench \\
        --config benchmarks/configs/matrix_smoke.json \\
        --out BENCH_matrix.json \\
        --fail-on "cell.isolet.steady.failures>0"

Gates come from the config's ``gates`` list plus any ``--fail-on``
arguments; both use the shared threshold grammar of
:mod:`repro.bench.gates` (also behind ``tools/scrape_stats.py``), so a
gate validated here can be re-checked offline against the emitted file::

    PYTHONPATH=src python tools/scrape_stats.py --check BENCH_matrix.json \\
        --fail-on "cell.isolet.steady.p99_ms>40"

Exit codes: **0** clean, **1** at least one gate violated, **2** usage
error (unreadable/invalid config, malformed gate, unknown ``--cell``
selector).  Trend deltas are computed against ``--history`` (default:
the config's ``history`` path, resolved relative to the config file;
``--history none`` disables).

Reproducibility: the run seed is ``--seed``, else ``REPRO_BENCH_SEED``,
else the config's ``seed``, else the fixed default — and every cell
records its request-stream fingerprint (``stream_sha1``), so two
same-seed runs are checkably identical.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

from repro.bench.config import MatrixConfigError, load_config
from repro.bench.gates import GateError, Threshold, evaluate, match_cells
from repro.bench.loadgen import DEFAULT_SEED, SEED_ENV, bench_seed
from repro.bench.runner import run_matrix


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--config", type=pathlib.Path, required=True, help="matrix config (JSON)"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="summary path (default BENCH_matrix.json, honouring REPRO_BENCH_DIR)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH|none",
        help="baseline BENCH_matrix.json for trend deltas "
        "(default: the config's 'history' path; 'none' disables)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"override the bench seed (else {SEED_ENV}, else the config, "
        f"else {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--cell",
        action="append",
        default=[],
        metavar="SELECTOR",
        help="run only cells matching these coordinate tokens, e.g. "
        "'isolet.steady' (repeatable; tokens match app/backend/config/shape)",
    )
    parser.add_argument(
        "--fail-on",
        action="append",
        default=[],
        metavar="EXPR",
        help="extra gate expression (repeatable), e.g. 'cell.isolet.steady.p99_ms>40'",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the resolved cell IDs and exit"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress lines")
    return parser.parse_args(argv)


def _default_out() -> pathlib.Path:
    root = os.environ.get("REPRO_BENCH_DIR")
    base = pathlib.Path(root) if root else pathlib.Path.cwd()
    return base / "BENCH_matrix.json"


def _select_cells(config, selectors):
    """Filter the config's cells by ``--cell`` coordinate selectors."""
    if not selectors:
        return config.cells
    by_id = {cell.cell_id: cell for cell in config.cells}
    cell_docs = {cell_id: cell.coords() for cell_id, cell in by_id.items()}
    chosen = {}
    for selector in selectors:
        tokens = [token for token in selector.split(".") if token]
        matched, leftover = match_cells(cell_docs, tokens)
        if leftover or not matched:
            raise MatrixConfigError(
                f"--cell {selector!r} matches no cell "
                f"(cells: {', '.join(sorted(by_id))})"
            )
        chosen.update({cell_id: by_id[cell_id] for cell_id in matched})
    return [cell for cell in config.cells if cell.cell_id in chosen]


def main(argv=None) -> int:
    args = parse_args(argv)
    try:
        config = load_config(args.config)
        cells = _select_cells(config, args.cell)
        thresholds = [Threshold(expr) for expr in [*config.gates, *args.fail_on]]
    except (MatrixConfigError, GateError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list:
        for cell in cells:
            print(cell.cell_id)
        return 0

    if args.seed is not None:
        seed = args.seed
    else:
        try:
            seed = bench_seed(DEFAULT_SEED if config.seed is None else config.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    history = None
    history_arg = args.history if args.history is not None else config.history
    if history_arg and str(history_arg).lower() != "none":
        history_path = pathlib.Path(history_arg)
        if not history_path.is_absolute() and args.history is None:
            # A config-relative default keeps checked-in configs portable.
            history_path = args.config.resolve().parent / history_path
        if history_path.exists():
            history = json.loads(history_path.read_text(encoding="utf-8"))
        else:
            print(f"note: no history at {history_path}, skipping trends", file=sys.stderr)

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    try:
        document = run_matrix(config, seed, cells=cells, history=history, progress=progress)
    except MatrixConfigError as exc:
        # Cross-field problems only a built workload can reveal (e.g. an
        # update pool too small for the shape's rounds) surface here.
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = args.out if args.out is not None else _default_out()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"wrote {out} ({len(document['cells'])} cells, seed {seed})", file=sys.stderr)

    violations = evaluate(document, thresholds)
    for message in violations:
        print(f"FAIL {message}", file=sys.stderr)
    if violations:
        print(f"{len(violations)} gate violation(s)", file=sys.stderr)
        return 1
    if thresholds:
        print(f"all {len(thresholds)} gate(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
