"""Lines-of-code accounting for the programmability study (Table 4).

Table 4 of the paper compares the lines of code of each application's
per-target baseline implementations against the single HDC++ source.  The
reproduction applies the same counting rules to its own sources:
non-blank, non-comment physical lines (module docstrings are treated as
documentation, not code, and are excluded as well — baseline research
scripts typically carry no such documentation, so counting ours would bias
the comparison against the DSL).
"""

from __future__ import annotations

import inspect
import io
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

__all__ = ["count_lines_of_code", "LocRow", "table4_rows"]


def count_lines_of_code(source: str) -> int:
    """Count non-blank, non-comment, non-docstring lines of Python source."""
    doc_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        tokens = []
    previous_significant = None
    for token in tokens:
        if token.type == tokenize.STRING:
            # A string expression that does not follow an operator/name is a
            # docstring (module, class or function level).
            if previous_significant in (None, ":", "NEWLINE", "INDENT", "DEDENT"):
                for line in range(token.start[0], token.end[0] + 1):
                    doc_lines.add(line)
        if token.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            previous_significant = tokenize.tok_name[token.type]
        elif token.type not in (tokenize.COMMENT, tokenize.NL):
            previous_significant = token.string if token.type == tokenize.OP else "TOKEN"

    count = 0
    for number, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if number in doc_lines:
            continue
        count += 1
    return count


def _module_loc(module) -> int:
    source = Path(inspect.getsourcefile(module)).read_text()
    return count_lines_of_code(source)


def _objects_loc(objects) -> int:
    """Count the HDC++ application code proper.

    For the HDC++ side of Table 4 we count the program-definition functions
    (the code a standalone HDC++ source file would contain: encoders, stage
    implementations, program construction and the host-side algorithmic
    steps), excluding the evaluation scaffolding (result dataclasses,
    dataset plumbing, report merging) that has no counterpart in the
    baseline scripts.
    """
    import textwrap

    total = 0
    for obj in objects:
        source = textwrap.dedent(inspect.getsource(obj))
        total += count_lines_of_code(source)
    return total


@dataclass
class LocRow:
    """One application row of Table 4."""

    app: str
    cpu_baseline_loc: Optional[int]
    gpu_baseline_loc: Optional[int]
    hdcpp_loc: int

    @property
    def total_baseline_loc(self) -> int:
        return (self.cpu_baseline_loc or 0) + (self.gpu_baseline_loc or 0)

    @property
    def reduction(self) -> float:
        """Total baseline LoC divided by HDC++ LoC (higher favours HDC++)."""
        return self.total_baseline_loc / self.hdcpp_loc

    @property
    def cpu_reduction(self) -> Optional[float]:
        if self.cpu_baseline_loc is None:
            return None
        return self.cpu_baseline_loc / self.hdcpp_loc

    @property
    def gpu_reduction(self) -> Optional[float]:
        if self.gpu_baseline_loc is None:
            return None
        return self.gpu_baseline_loc / self.hdcpp_loc


def table4_rows() -> list[LocRow]:
    """Count LoC for every application and its baselines.

    Baselines are whole scripts (they contain nothing but the application);
    the HDC++ entries count the application code proper (program
    construction, stage implementations, encoders, and the host-side
    algorithmic steps such as the k-means update or the neighbour
    aggregation).
    """
    from repro.apps import classification, clustering, hashtable, hyperoms, relhd
    from repro.apps.clustering import _farthest_first_init, clustering_purity
    from repro.apps.hyperoms import make_level_hypervectors
    from repro.baselines import (
        classification_cuda,
        classification_python,
        clustering_cuda,
        clustering_python,
        hashtable_python,
        hyperoms_cuda,
        relhd_cuda,
        relhd_python,
    )

    hashtable_loc = _module_loc(hashtable_python)
    return [
        LocRow(
            "HD-Classification",
            _module_loc(classification_python),
            _module_loc(classification_cuda),
            _objects_loc(
                [
                    classification.HDClassification.build_program,
                    classification.HDClassificationInference.train_offline,
                    classification.HDClassificationInference.build_program,
                ]
            ),
        ),
        LocRow(
            "HD-Clustering",
            _module_loc(clustering_python),
            _module_loc(clustering_cuda),
            _objects_loc(
                [
                    clustering.HDClustering.build_encode_program,
                    clustering.HDClustering.build_assign_program,
                    clustering.HDClustering.run,
                    _farthest_first_init,
                    clustering_purity,
                ]
            ),
        ),
        LocRow(
            "HyperOMS",
            None,
            _module_loc(hyperoms_cuda),
            _objects_loc(
                [
                    make_level_hypervectors,
                    hyperoms.HyperOMS._make_encoder,
                    hyperoms.HyperOMS.build_program,
                ]
            ),
        ),
        LocRow(
            "RelHD",
            _module_loc(relhd_python),
            _module_loc(relhd_cuda),
            _objects_loc(
                [
                    relhd.RelHD.build_encode_program,
                    relhd.RelHD.build_classify_program,
                    relhd.RelHD.aggregate_neighbours,
                    relhd.RelHD.run,
                ]
            ),
        ),
        LocRow(
            "HD-Hashtable",
            hashtable_loc,
            hashtable_loc,
            _objects_loc(
                [
                    hashtable.HDHashtable.make_base_hypervectors,
                    hashtable.HDHashtable._make_read_encoder,
                    hashtable.HDHashtable.encode_reference_buckets,
                    hashtable.HDHashtable.build_program,
                ]
            ),
        ),
    ]
