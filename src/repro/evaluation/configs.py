"""The ten optimization settings of Table 3 (Figure 7's sweep).

Each setting combines an application-level choice (which similarity metric
the inference implementation uses — a one-line change in the HDC++ source)
with an :class:`~repro.transforms.ApproximationConfig` (automatic
binarization flags and reduction-perforation specs — compiler options that
do not touch the application source at all).  ``loc_changes`` records the
number of application source lines the paper reports each setting needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transforms.perforation import PerforationSpec
from repro.transforms.pipeline import ApproximationConfig

__all__ = ["OptimizationSetting", "table3_settings"]


@dataclass(frozen=True)
class OptimizationSetting:
    """One row of Table 3."""

    id: str
    name: str
    description: str
    similarity: str
    config: ApproximationConfig
    loc_changes: int
    #: Expected quality band from Figure 7: "green" (better than or equal to
    #: the baseline), "yellow" (moderate loss) or "red" (significant loss).
    expected_band: str


def table3_settings(dimension: int = 10240) -> list[OptimizationSetting]:
    """Build the ten Table 3 settings for a given encoding dimension."""
    none = ApproximationConfig.none()
    binarize = ApproximationConfig(binarize=True)
    binarize_aggressive = ApproximationConfig(binarize=True, binarize_reduce=True)

    def perf(opcode: str, stride: int, end: int | None = None) -> PerforationSpec:
        return PerforationSpec(opcode, begin=0, end=end, stride=stride)

    return [
        OptimizationSetting(
            "I",
            "Cosine Similarity (Baseline)",
            "Inference using 32-bit floats with cosine similarity",
            similarity="cosine",
            config=none,
            loc_changes=0,
            expected_band="baseline",
        ),
        OptimizationSetting(
            "II",
            "Hamming Distance",
            "Inference using 32-bit floats with Hamming distance",
            similarity="hamming",
            config=none,
            loc_changes=1,
            expected_band="green",
        ),
        OptimizationSetting(
            "III",
            "Auto Binarize (Enc + Out)",
            "Binarization of class & encoded HVs with Hamming distance",
            similarity="hamming",
            config=binarize,
            loc_changes=1,
            expected_band="green",
        ),
        OptimizationSetting(
            "IV",
            "Auto Binarize (Enc + In/Out)",
            "III with casting input features to 32-bit ints before encoding",
            similarity="hamming",
            config=binarize_aggressive,
            loc_changes=1,
            expected_band="yellow",
        ),
        OptimizationSetting(
            "V",
            "Auto Binarize (Enc + Out + Strided Matmul [2])",
            "III with loop-perforated matrix multiplication with stride of 2",
            similarity="hamming",
            config=binarize.with_perforation(perf("matmul", 2)),
            loc_changes=2,
            expected_band="red",
        ),
        OptimizationSetting(
            "VI",
            "Auto Binarize (Enc + Out + Strided Matmul [4])",
            "III with loop-perforated matrix multiplication with stride of 4",
            similarity="hamming",
            config=binarize.with_perforation(perf("matmul", 4)),
            loc_changes=2,
            expected_band="red",
        ),
        OptimizationSetting(
            "VII",
            "Auto Binarize (Enc + Out + Strided Hamming [2])",
            "III with loop-perforated Hamming distance with stride of 2",
            similarity="hamming",
            config=binarize.with_perforation(perf("hamming_distance", 2)),
            loc_changes=3,
            expected_band="green",
        ),
        OptimizationSetting(
            "VIII",
            "Auto Binarize (Enc + Out + First Half Hamming)",
            "III with Hamming distance only on the first half of hypervectors",
            similarity="hamming",
            config=binarize.with_perforation(perf("hamming_distance", 1, end=dimension // 2)),
            loc_changes=3,
            expected_band="green",
        ),
        OptimizationSetting(
            "IX",
            "Cosine Similarity (Strided Encoding [2])",
            "I with the encoding loop perforated with stride 2",
            similarity="cosine",
            config=none.with_perforation(perf("matmul", 2)),
            loc_changes=1,
            expected_band="red",
        ),
        OptimizationSetting(
            "X",
            "Cosine Similarity (Strided Similarity [2])",
            "I with cosine similarity loop perforated with stride 2",
            similarity="cosine",
            config=none.with_perforation(perf("cossim", 2)),
            loc_changes=1,
            expected_band="yellow",
        ),
    ]
