"""Experiment drivers regenerating every table and figure of the evaluation.

Each driver returns plain dataclasses that the benchmark harnesses print and
that EXPERIMENTS.md summarizes.  All drivers accept an
:class:`EvaluationScale`, which controls dataset sizes and encoding
dimensions: ``smoke`` keeps everything tiny (seconds, used by the test
suite), ``default`` is the scale used for the numbers recorded in
EXPERIMENTS.md, and ``paper`` approaches the workload sizes of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.accelerators.jetson import JetsonOrinModel
from repro.apps import (
    HDClassification,
    HDClassificationInference,
    HDClustering,
    HDHashtable,
    HyperOMS,
    RelHD,
)
from repro.baselines import (
    classification_cuda,
    classification_python,
    clustering_cuda,
    clustering_python,
    hashtable_python,
    hyperoms_cuda,
    relhd_cuda,
    relhd_python,
)
from repro.datasets import (
    CoraConfig,
    GenomicsConfig,
    IsoletConfig,
    SpectraConfig,
    make_cora_like,
    make_genomics_dataset,
    make_isolet_like,
    make_spectral_library,
)
from repro.evaluation.configs import OptimizationSetting, table3_settings
from repro.evaluation.loc import LocRow, table4_rows
from repro.evaluation.metrics import format_table, geomean, relative_speedup

__all__ = [
    "EvaluationScale",
    "Fig5Row",
    "Fig5Result",
    "Fig6Row",
    "Fig6Result",
    "Fig7Row",
    "Fig7Result",
    "fig5_performance",
    "fig6_accelerators",
    "fig7_optimizations",
    "table2_applications",
    "table4_loc",
]


@dataclass(frozen=True)
class EvaluationScale:
    """Dataset sizes and encoding dimensions used by the experiment drivers."""

    name: str = "default"
    # ISOLET-like (classification / clustering)
    isolet_train: int = 800
    isolet_test: int = 300
    classification_dim: int = 2048
    classification_epochs: int = 3
    clustering_samples: int = 500
    clustering_iterations: int = 6
    # Figure 7
    fig7_dim: int = 10240
    fig7_test: int = 300
    fig7_train: int = 800
    # HyperOMS
    spectra_library: int = 300
    spectra_queries: int = 150
    oms_dim: int = 4096
    # RelHD
    cora_nodes: int = 800
    relhd_dim: int = 4096
    # HD-Hashtable
    genome_length: int = 16000
    genome_reads: int = 100
    hashtable_dim: int = 4096

    @staticmethod
    def smoke() -> "EvaluationScale":
        """A tiny scale for unit/integration tests (a few seconds total)."""
        return EvaluationScale(
            name="smoke",
            isolet_train=200,
            isolet_test=80,
            classification_dim=512,
            classification_epochs=2,
            clustering_samples=150,
            clustering_iterations=3,
            fig7_dim=1024,
            fig7_test=80,
            fig7_train=200,
            spectra_library=60,
            spectra_queries=30,
            oms_dim=1024,
            cora_nodes=200,
            relhd_dim=1024,
            genome_length=6000,
            genome_reads=30,
            hashtable_dim=1024,
        )

    @staticmethod
    def default() -> "EvaluationScale":
        return EvaluationScale()

    @staticmethod
    def paper() -> "EvaluationScale":
        """Workload sizes close to the paper's datasets (slow: minutes)."""
        return EvaluationScale(
            name="paper",
            isolet_train=6238,
            isolet_test=1559,
            classification_dim=2048,
            classification_epochs=5,
            clustering_samples=2000,
            clustering_iterations=10,
            fig7_dim=10240,
            fig7_test=1559,
            fig7_train=6238,
            spectra_library=1000,
            spectra_queries=500,
            oms_dim=8192,
            cora_nodes=2708,
            relhd_dim=8192,
            genome_length=50000,
            genome_reads=300,
            hashtable_dim=8192,
        )

    # -- dataset builders ---------------------------------------------------------
    def isolet(self) -> "IsoletConfig":
        return IsoletConfig(n_train=self.isolet_train, n_test=self.isolet_test)

    def fig7_isolet(self) -> "IsoletConfig":
        return IsoletConfig(n_train=self.fig7_train, n_test=self.fig7_test)


# ---------------------------------------------------------------------------
# Figure 5 — CPU/GPU performance vs hand-written baselines
# ---------------------------------------------------------------------------


@dataclass
class Fig5Row:
    app: str
    cpu_speedup: Optional[float]
    gpu_speedup: float
    hdcpp_quality: float
    baseline_quality: float
    hdcpp_cpu_seconds: Optional[float]
    hdcpp_gpu_seconds: float
    cpu_baseline_seconds: Optional[float]
    gpu_baseline_seconds: float


@dataclass
class Fig5Result:
    rows: list[Fig5Row]
    cpu_geomean: float
    gpu_geomean: float

    def format(self) -> str:
        table_rows = [
            [
                row.app,
                "N/A" if row.cpu_speedup is None else f"{row.cpu_speedup:.2f}x",
                f"{row.gpu_speedup:.2f}x",
                f"{row.hdcpp_quality:.3f}",
                f"{row.baseline_quality:.3f}",
            ]
            for row in self.rows
        ]
        table_rows.append(
            ["GEOMEAN", f"{self.cpu_geomean:.2f}x", f"{self.gpu_geomean:.2f}x", "", ""]
        )
        return format_table(
            ["Application", "CPU speedup", "GPU speedup", "HDC++ quality", "Baseline quality"],
            table_rows,
        )


def fig5_performance(scale: Optional[EvaluationScale] = None) -> Fig5Result:
    """Regenerate Figure 5: HPVM-HDC vs per-target baselines on CPU and GPU."""
    scale = scale or EvaluationScale.default()
    rows: list[Fig5Row] = []

    # -- HD-Classification -------------------------------------------------------
    isolet = make_isolet_like(scale.isolet())
    app = HDClassification(dimension=scale.classification_dim, epochs=scale.classification_epochs)
    hdc_cpu = app.run(isolet, target="cpu")
    hdc_gpu = app.run(isolet, target="gpu")
    base_cpu = classification_python.run(
        isolet, dimension=scale.classification_dim, epochs=scale.classification_epochs
    )
    base_gpu = classification_cuda.run(
        isolet, dimension=scale.classification_dim, epochs=scale.classification_epochs
    )
    rows.append(
        Fig5Row(
            "HD-Classification",
            relative_speedup(base_cpu.wall_seconds, hdc_cpu.wall_seconds),
            relative_speedup(base_gpu.wall_seconds, hdc_gpu.wall_seconds),
            hdc_gpu.quality,
            base_gpu.quality,
            hdc_cpu.wall_seconds,
            hdc_gpu.wall_seconds,
            base_cpu.wall_seconds,
            base_gpu.wall_seconds,
        )
    )

    # -- HD-Clustering -------------------------------------------------------------
    clustering_data = make_isolet_like(
        IsoletConfig(n_train=scale.clustering_samples, n_test=64)
    )
    capp = HDClustering(
        dimension=scale.classification_dim,
        n_clusters=clustering_data.n_classes,
        iterations=scale.clustering_iterations,
    )
    chdc_cpu = capp.run(clustering_data, target="cpu")
    chdc_gpu = capp.run(clustering_data, target="gpu")
    cbase_cpu = clustering_python.run(
        clustering_data,
        dimension=scale.classification_dim,
        n_clusters=clustering_data.n_classes,
        iterations=scale.clustering_iterations,
    )
    cbase_gpu = clustering_cuda.run(
        clustering_data,
        dimension=scale.classification_dim,
        n_clusters=clustering_data.n_classes,
        iterations=scale.clustering_iterations,
    )
    rows.append(
        Fig5Row(
            "HD-Clustering",
            relative_speedup(cbase_cpu.wall_seconds, chdc_cpu.wall_seconds),
            relative_speedup(cbase_gpu.wall_seconds, chdc_gpu.wall_seconds),
            chdc_gpu.quality,
            cbase_gpu.quality,
            chdc_cpu.wall_seconds,
            chdc_gpu.wall_seconds,
            cbase_cpu.wall_seconds,
            cbase_gpu.wall_seconds,
        )
    )

    # -- HyperOMS (no CPU baseline) -------------------------------------------------
    spectra = make_spectral_library(
        SpectraConfig(n_library=scale.spectra_library, n_queries=scale.spectra_queries)
    )
    oms = HyperOMS(dimension=scale.oms_dim)
    oms_gpu = oms.run(spectra, target="gpu")
    oms_base = hyperoms_cuda.run(spectra, dimension=scale.oms_dim)
    rows.append(
        Fig5Row(
            "HyperOMS",
            None,
            relative_speedup(oms_base.wall_seconds, oms_gpu.wall_seconds),
            oms_gpu.quality,
            oms_base.quality,
            None,
            oms_gpu.wall_seconds,
            None,
            oms_base.wall_seconds,
        )
    )

    # -- RelHD ------------------------------------------------------------------------
    cora = make_cora_like(CoraConfig(n_nodes=scale.cora_nodes))
    rel = RelHD(dimension=scale.relhd_dim)
    rel_cpu = rel.run(cora, target="cpu")
    rel_gpu = rel.run(cora, target="gpu")
    rel_base_cpu = relhd_python.run(cora, dimension=scale.relhd_dim)
    rel_base_gpu = relhd_cuda.run(cora, dimension=scale.relhd_dim)
    rows.append(
        Fig5Row(
            "RelHD",
            relative_speedup(rel_base_cpu.wall_seconds, rel_cpu.wall_seconds),
            relative_speedup(rel_base_gpu.wall_seconds, rel_gpu.wall_seconds),
            rel_gpu.quality,
            rel_base_gpu.quality,
            rel_cpu.wall_seconds,
            rel_gpu.wall_seconds,
            rel_base_cpu.wall_seconds,
            rel_base_gpu.wall_seconds,
        )
    )

    # -- HD-Hashtable -------------------------------------------------------------------
    genomics = make_genomics_dataset(
        GenomicsConfig(genome_length=scale.genome_length, n_reads=scale.genome_reads)
    )
    hsh = HDHashtable(dimension=scale.hashtable_dim)
    hsh_cpu = hsh.run(genomics, target="cpu")
    hsh_gpu = hsh.run(genomics, target="gpu")
    hsh_base_cpu = hashtable_python.run(genomics, dimension=scale.hashtable_dim)
    hsh_base_gpu = hashtable_python.run(genomics, dimension=scale.hashtable_dim, use_batched_search=True)
    rows.append(
        Fig5Row(
            "HD-Hashtable",
            relative_speedup(hsh_base_cpu.wall_seconds, hsh_cpu.wall_seconds),
            relative_speedup(hsh_base_gpu.wall_seconds, hsh_gpu.wall_seconds),
            hsh_gpu.quality,
            hsh_base_gpu.quality,
            hsh_cpu.wall_seconds,
            hsh_gpu.wall_seconds,
            hsh_base_cpu.wall_seconds,
            hsh_base_gpu.wall_seconds,
        )
    )

    cpu_geomean = geomean([r.cpu_speedup for r in rows if r.cpu_speedup is not None])
    gpu_geomean = geomean([r.gpu_speedup for r in rows])
    return Fig5Result(rows, cpu_geomean, gpu_geomean)


# ---------------------------------------------------------------------------
# Figure 6 — HDC accelerators vs an edge GPU (device-only latency)
# ---------------------------------------------------------------------------


@dataclass
class Fig6Row:
    app: str
    device: str
    device_seconds: float
    jetson_seconds: float
    speedup: float
    quality: float


@dataclass
class Fig6Result:
    rows: list[Fig6Row]

    def format(self) -> str:
        return format_table(
            ["Application", "Device", "Device-only (ms)", "Jetson Orin (ms)", "Speedup", "Quality"],
            [
                [
                    row.app,
                    row.device,
                    f"{row.device_seconds * 1e3:.2f}",
                    f"{row.jetson_seconds * 1e3:.2f}",
                    f"{row.speedup:.2f}x",
                    f"{row.quality:.3f}",
                ]
                for row in self.rows
            ],
        )


def fig6_accelerators(scale: Optional[EvaluationScale] = None) -> Fig6Result:
    """Regenerate Figure 6: device-only latency of the HDC accelerators
    against the Jetson Orin edge-GPU model."""
    scale = scale or EvaluationScale.default()
    jetson = JetsonOrinModel()
    rows: list[Fig6Row] = []

    # -- HD-Classification ---------------------------------------------------------
    isolet = make_isolet_like(scale.isolet())
    app = HDClassification(dimension=scale.classification_dim, epochs=scale.classification_epochs)
    n_train, n_test = scale.isolet_train, scale.isolet_test
    jetson_cls = jetson.training_stage_time(
        n_train, scale.classification_epochs, scale.classification_dim, isolet.n_features, isolet.n_classes
    ) + jetson.inference_stage_time(
        n_test, scale.classification_dim, isolet.n_features, isolet.n_classes
    )
    for target, device_name in (("hdc_asic", "HDC Digital ASIC"), ("hdc_reram", "HDC ReRAM Accelerator")):
        result = app.run(isolet, target=target)
        rows.append(
            Fig6Row(
                "HD-Classification",
                device_name,
                result.report.device_seconds,
                jetson_cls,
                relative_speedup(jetson_cls, result.report.device_seconds),
                result.quality,
            )
        )

    # -- HD-Clustering ----------------------------------------------------------------
    clustering_data = make_isolet_like(IsoletConfig(n_train=scale.clustering_samples, n_test=64))
    capp = HDClustering(
        dimension=scale.classification_dim,
        n_clusters=clustering_data.n_classes,
        iterations=scale.clustering_iterations,
    )
    for target, device_name in (("hdc_asic", "HDC Digital ASIC"), ("hdc_reram", "HDC ReRAM Accelerator")):
        result = capp.run(clustering_data, target=target)
        iterations = int(result.outputs["iterations_run"])
        jetson_clu = jetson.encoding_stage_time(
            scale.clustering_samples, scale.classification_dim, clustering_data.n_features
        ) + iterations * scale.clustering_samples * jetson.similarity_time(
            scale.classification_dim, clustering_data.n_classes
        )
        rows.append(
            Fig6Row(
                "HD-Clustering",
                device_name,
                result.report.device_seconds,
                jetson_clu,
                relative_speedup(jetson_clu, result.report.device_seconds),
                result.quality,
            )
        )

    return Fig6Result(rows)


# ---------------------------------------------------------------------------
# Figure 7 / Table 3 — approximation optimizations
# ---------------------------------------------------------------------------


@dataclass
class Fig7Row:
    setting: OptimizationSetting
    accuracy: float
    wall_seconds: float
    speedup: float
    bytes_to_device: float


@dataclass
class Fig7Result:
    rows: list[Fig7Row]
    baseline_accuracy: float

    def format(self) -> str:
        return format_table(
            ["ID", "Setting", "Accuracy", "Speedup", "LOC changes", "Bytes to device"],
            [
                [
                    row.setting.id,
                    row.setting.name,
                    f"{row.accuracy:.3f}",
                    f"{row.speedup:.2f}x",
                    row.setting.loc_changes,
                    f"{row.bytes_to_device / 1e6:.2f} MB",
                ]
                for row in self.rows
            ],
        )


def fig7_optimizations(
    scale: Optional[EvaluationScale] = None, target: str = "gpu", repeats: int = 3
) -> Fig7Result:
    """Regenerate Figure 7 / Table 3: speedup vs accuracy for settings I-X."""
    scale = scale or EvaluationScale.default()
    isolet = make_isolet_like(scale.fig7_isolet())
    settings = table3_settings(dimension=scale.fig7_dim)

    # Class hypervectors are trained offline once and reused by every setting.
    trainer = HDClassificationInference(dimension=scale.fig7_dim, similarity="cosine")
    trained = trainer.train_offline(isolet)

    rows: list[Fig7Row] = []
    baseline_seconds = None
    baseline_accuracy = None
    for setting in settings:
        app = HDClassificationInference(dimension=scale.fig7_dim, similarity=setting.similarity)
        best_wall = None
        accuracy = 0.0
        bytes_to_device = 0.0
        for _ in range(max(1, repeats)):
            result = app.run(isolet, target=target, config=setting.config, trained=trained)
            accuracy = result.quality
            bytes_to_device = result.report.bytes_to_device
            wall = result.wall_seconds
            best_wall = wall if best_wall is None else min(best_wall, wall)
        if setting.id == "I":
            baseline_seconds = best_wall
            baseline_accuracy = accuracy
        rows.append(Fig7Row(setting, accuracy, best_wall, 0.0, bytes_to_device))

    assert baseline_seconds is not None
    for row in rows:
        row.speedup = relative_speedup(baseline_seconds, row.wall_seconds)
    return Fig7Result(rows, baseline_accuracy if baseline_accuracy is not None else 0.0)


# ---------------------------------------------------------------------------
# Table 2 and Table 4
# ---------------------------------------------------------------------------


def table2_applications() -> list[dict]:
    """The application inventory of Table 2."""
    return [
        {
            "application": "HD-Classification",
            "workload": "Classification implemented using HDC",
            "stages": ["random-projection encoding", "inference", "training"],
            "targets": ["cpu", "gpu", "hdc_asic", "hdc_reram"],
        },
        {
            "application": "HD-Clustering",
            "workload": "K-means clustering implemented using HDC",
            "stages": ["random-projection encoding", "inference"],
            "targets": ["cpu", "gpu", "hdc_asic", "hdc_reram"],
        },
        {
            "application": "HyperOMS",
            "workload": "Open modification search for mass spectrometry",
            "stages": ["level-ID encoding", "inference"],
            "targets": ["cpu", "gpu"],
        },
        {
            "application": "RelHD",
            "workload": "GNN learning, data relationship analysis",
            "stages": ["graph-neighbour encoding", "inference", "training"],
            "targets": ["cpu", "gpu"],
        },
        {
            "application": "HD-Hashtable",
            "workload": "Genome sequence search for long reads",
            "stages": ["k-mer based encoding", "inference"],
            "targets": ["cpu", "gpu"],
        },
    ]


@dataclass
class Table4Result:
    rows: list[LocRow]
    geomean_reduction: float

    def format(self) -> str:
        table_rows = [
            [
                row.app,
                row.cpu_baseline_loc if row.cpu_baseline_loc is not None else "N/A",
                row.gpu_baseline_loc if row.gpu_baseline_loc is not None else "N/A",
                row.hdcpp_loc,
                f"{row.reduction:.2f}x",
            ]
            for row in self.rows
        ]
        table_rows.append(["GEOMEAN", "", "", "", f"{self.geomean_reduction:.2f}x"])
        return format_table(
            ["Application", "CPU baseline LoC", "GPU baseline LoC", "HDC++ LoC", "Reduction"],
            table_rows,
        )


def table4_loc() -> Table4Result:
    """Regenerate Table 4: lines of code of baselines vs the HDC++ sources."""
    rows = table4_rows()
    return Table4Result(rows, geomean([row.reduction for row in rows]))
