"""Small metric helpers shared by the experiment drivers and benchmarks."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["geomean", "relative_speedup", "accuracy", "format_table"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the paper's summary statistic)."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("geomean of an empty sequence")
    if np.any(array <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.mean(np.log(array))))


def relative_speedup(baseline_seconds: float, measured_seconds: float) -> float:
    """``baseline / measured`` — higher is better for the measured system."""
    if measured_seconds <= 0:
        raise ValueError("measured time must be positive")
    return float(baseline_seconds) / float(measured_seconds)


def accuracy(predictions, labels) -> float:
    """Fraction of predictions matching the reference labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    return float((predictions == labels).mean())


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (used by the bench harnesses)."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
