"""Evaluation harness: metrics, Table 3 configurations, LoC counting and
experiment drivers for every table and figure of the paper's evaluation.

Experiment index (see DESIGN.md for the full mapping):

* Figure 5 — :func:`repro.evaluation.experiments.fig5_performance`
* Figure 6 — :func:`repro.evaluation.experiments.fig6_accelerators`
* Figure 7 / Table 3 — :func:`repro.evaluation.experiments.fig7_optimizations`
* Table 2 — :func:`repro.evaluation.experiments.table2_applications`
* Table 4 — :func:`repro.evaluation.experiments.table4_loc`
"""

from repro.evaluation.configs import OptimizationSetting, table3_settings
from repro.evaluation.metrics import geomean, relative_speedup
from repro.evaluation.loc import count_lines_of_code, table4_rows
from repro.evaluation.experiments import (
    EvaluationScale,
    fig5_performance,
    fig6_accelerators,
    fig7_optimizations,
    table2_applications,
    table4_loc,
)

__all__ = [
    "OptimizationSetting",
    "table3_settings",
    "geomean",
    "relative_speedup",
    "count_lines_of_code",
    "table4_rows",
    "EvaluationScale",
    "fig5_performance",
    "fig6_accelerators",
    "fig7_optimizations",
    "table2_applications",
    "table4_loc",
]
