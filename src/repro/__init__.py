"""repro — a Python reproduction of HPVM-HDC (ISCA 2025).

HPVM-HDC is a heterogeneous programming system for Hyperdimensional
Computing.  This package reproduces it end to end:

* :mod:`repro.hdcpp` — the HDC++ embedded DSL (types, the 24 HDC
  primitives, stage primitives, Hetero-style parallel constructs, tracing).
* :mod:`repro.ir` — the HPVM-HDC intermediate representation: a
  hierarchical dataflow graph with HDC intrinsics, plus verifier/printer.
* :mod:`repro.transforms` — the approximation transforms: automatic
  binarization and reduction perforation.
* :mod:`repro.backends` — CPU, GPU, digital HDC ASIC and ReRAM back ends.
* :mod:`repro.accelerators` — the device simulators and the edge-GPU model.
* :mod:`repro.apps` / :mod:`repro.baselines` — the five evaluated HDC
  applications in HDC++ and their hand-written per-target baselines.
* :mod:`repro.datasets` — synthetic surrogates of the paper's datasets.
* :mod:`repro.evaluation` — experiment drivers regenerating every table
  and figure of the paper's evaluation.
* :mod:`repro.serving` — the inference-serving runtime: a model registry
  with compiled-program caching, dynamic micro-batching of single-sample
  requests, and a multi-backend worker pool with warm device sessions.

Quickstart::

    import numpy as np
    from repro import hdcpp as H
    from repro.backends import compile

    prog = H.Program("inference")

    @prog.entry(H.hv(617), H.hm(2048, 617), H.hm(26, 2048))
    def infer(features, rp_matrix, classes):
        encoded = H.sign(H.matmul(features, rp_matrix))
        distances = H.hamming_distance(encoded, H.sign(classes))
        return H.arg_min(distances)

    compiled = compile(prog, target="cpu")
    result = compiled.run(features=np.random.rand(617),
                          rp_matrix=np.random.choice([-1.0, 1.0], (2048, 617)),
                          classes=np.random.rand(26, 2048))
    print(result.output)

Serving quickstart (see ``examples/serving_quickstart.py``)::

    from repro.apps import HDClassificationInference
    from repro.serving import InferenceServer

    app = HDClassificationInference(dimension=2048)
    servable = app.as_servable(dataset=dataset)     # trains offline

    server = InferenceServer(workers=("cpu", "cpu"), max_batch_size=64)
    server.register(servable)
    with server:
        label = server.infer(servable.name, dataset.test_features[0])
    print(server.stats())   # p50/p95/p99 latency, batch sizes, cache hits
"""

from repro import hdcpp, serving
from repro.backends import compile, compile_cached
from repro.ir.dataflow import Target
from repro.transforms import ApproximationConfig, PerforationSpec

__version__ = "1.0.0"

__all__ = [
    "hdcpp",
    "serving",
    "compile",
    "compile_cached",
    "Target",
    "ApproximationConfig",
    "PerforationSpec",
    "__version__",
]
