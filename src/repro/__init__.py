"""repro — a Python reproduction of HPVM-HDC (ISCA 2025).

HPVM-HDC is a heterogeneous programming system for Hyperdimensional
Computing.  This package reproduces it end to end:

* :mod:`repro.hdcpp` — the HDC++ embedded DSL (types, the 24 HDC
  primitives, stage primitives, Hetero-style parallel constructs, tracing).
* :mod:`repro.ir` — the HPVM-HDC intermediate representation: a
  hierarchical dataflow graph with HDC intrinsics, plus verifier/printer.
* :mod:`repro.transforms` — the approximation transforms: automatic
  binarization and reduction perforation.
* :mod:`repro.backends` — CPU, GPU, digital HDC ASIC and ReRAM back ends.
* :mod:`repro.accelerators` — the device simulators and the edge-GPU model.
* :mod:`repro.apps` / :mod:`repro.baselines` — the five evaluated HDC
  applications in HDC++ and their hand-written per-target baselines.
* :mod:`repro.datasets` — synthetic surrogates of the paper's datasets.
* :mod:`repro.evaluation` — experiment drivers regenerating every table
  and figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import hdcpp as H
    from repro.backends import compile

    prog = H.Program("inference")

    @prog.entry(H.hv(617), H.hm(2048, 617), H.hm(26, 2048))
    def infer(features, rp_matrix, classes):
        encoded = H.sign(H.matmul(features, rp_matrix))
        distances = H.hamming_distance(encoded, H.sign(classes))
        return H.arg_min(distances)

    compiled = compile(prog, target="cpu")
    result = compiled.run(features=np.random.rand(617),
                          rp_matrix=np.random.choice([-1.0, 1.0], (2048, 617)),
                          classes=np.random.rand(26, 2048))
    print(result.output)
"""

from repro import hdcpp
from repro.backends import compile
from repro.ir.dataflow import Target
from repro.transforms import ApproximationConfig, PerforationSpec

__version__ = "1.0.0"

__all__ = ["hdcpp", "compile", "Target", "ApproximationConfig", "PerforationSpec", "__version__"]
