"""Eager (concrete) hypervector and hypermatrix values.

HDC++ programs can be *traced* into HPVM-HDC IR and compiled by a back end,
or the very same primitives can be executed *eagerly* on concrete data for
prototyping and testing (much like a small torchhd-style library).  This
module provides the concrete value classes used in eager mode and at the
boundary between host NumPy data and compiled programs.

A :class:`HyperVector` / :class:`HyperMatrix` is a thin wrapper around a
NumPy array plus the HDC++ element type, so that type-dependent behaviour
(e.g. 1-bit bipolar storage after ``sign``) is tracked explicitly.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.types import (
    ElementType,
    HyperMatrixType,
    HyperVectorType,
    binary,
    float32,
)
from repro.kernels import reference as ref

__all__ = ["HyperVector", "HyperMatrix", "as_numpy", "wrap_like"]

ArrayLike = Union[np.ndarray, "HyperVector", "HyperMatrix", list, tuple, float, int]


def as_numpy(value: ArrayLike) -> np.ndarray:
    """Extract the underlying NumPy array from eager values / array-likes."""
    if isinstance(value, (HyperVector, HyperMatrix)):
        return value.data
    return np.asarray(value)


def wrap_like(data: np.ndarray, element: ElementType):
    """Wrap a NumPy array as a :class:`HyperVector` or :class:`HyperMatrix`."""
    arr = np.asarray(data)
    if arr.ndim == 1:
        return HyperVector(arr, element)
    if arr.ndim == 2:
        return HyperMatrix(arr, element)
    raise ValueError(f"cannot wrap array of rank {arr.ndim} as an HDC value")


class _HDArray:
    """Shared behaviour of eager hypervectors and hypermatrices."""

    def __init__(self, data: np.ndarray, element: ElementType = float32):
        arr = np.asarray(data)
        if element.is_binary:
            arr = ref.sign(arr)
        else:
            arr = arr.astype(element.numpy_dtype, copy=False)
        self.data = arr
        self.element = element

    # -- NumPy interoperability ------------------------------------------------
    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        out = self.data if dtype is None else self.data.astype(dtype)
        if copy:
            out = np.array(out, copy=True)
        return out

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def copy(self):
        return type(self)(np.array(self.data, copy=True), self.element)

    # -- equality helpers (used heavily by tests) -------------------------------
    def allclose(self, other: ArrayLike, rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        return bool(np.allclose(self.data, as_numpy(other), rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shape={self.shape}, element={self.element.name})"


class HyperVector(_HDArray):
    """A concrete 1-D hypervector."""

    def __init__(self, data: np.ndarray, element: ElementType = float32):
        super().__init__(data, element)
        if self.data.ndim != 1:
            raise ValueError(f"HyperVector requires rank-1 data, got {self.data.ndim}")

    @property
    def type(self) -> HyperVectorType:
        return HyperVectorType(self.data.shape[0], self.element)

    @property
    def dim(self) -> int:
        return self.data.shape[0]

    # -- constructors ------------------------------------------------------------
    @classmethod
    def empty(cls, dim: int, element: ElementType = float32) -> "HyperVector":
        return cls(ref.empty((dim,), element.numpy_dtype), element)

    @classmethod
    def random(
        cls,
        dim: int,
        element: ElementType = float32,
        rng: Optional[np.random.Generator] = None,
    ) -> "HyperVector":
        rng = rng if rng is not None else np.random.default_rng()
        data = ref.random_values((dim,), element.numpy_dtype, rng, bipolar=element.is_binary)
        return cls(data, element)

    @classmethod
    def gaussian(
        cls,
        dim: int,
        element: ElementType = float32,
        rng: Optional[np.random.Generator] = None,
    ) -> "HyperVector":
        rng = rng if rng is not None else np.random.default_rng()
        return cls(ref.gaussian_values((dim,), element.numpy_dtype, rng), element)

    @classmethod
    def create(
        cls,
        dim: int,
        init: Callable[[int], float],
        element: ElementType = float32,
    ) -> "HyperVector":
        return cls(ref.create((dim,), element.numpy_dtype, init), element)

    def __getitem__(self, idx: int):
        return self.data[idx]

    def __len__(self) -> int:
        return self.dim


class HyperMatrix(_HDArray):
    """A concrete 2-D hypermatrix (a stack of hypervectors)."""

    def __init__(self, data: np.ndarray, element: ElementType = float32):
        super().__init__(data, element)
        if self.data.ndim != 2:
            raise ValueError(f"HyperMatrix requires rank-2 data, got {self.data.ndim}")

    @property
    def type(self) -> HyperMatrixType:
        return HyperMatrixType(self.data.shape[0], self.data.shape[1], self.element)

    @property
    def rows(self) -> int:
        return self.data.shape[0]

    @property
    def cols(self) -> int:
        return self.data.shape[1]

    # -- constructors ------------------------------------------------------------
    @classmethod
    def empty(cls, rows: int, cols: int, element: ElementType = float32) -> "HyperMatrix":
        return cls(ref.empty((rows, cols), element.numpy_dtype), element)

    @classmethod
    def random(
        cls,
        rows: int,
        cols: int,
        element: ElementType = float32,
        rng: Optional[np.random.Generator] = None,
    ) -> "HyperMatrix":
        rng = rng if rng is not None else np.random.default_rng()
        data = ref.random_values(
            (rows, cols), element.numpy_dtype, rng, bipolar=element.is_binary
        )
        return cls(data, element)

    @classmethod
    def gaussian(
        cls,
        rows: int,
        cols: int,
        element: ElementType = float32,
        rng: Optional[np.random.Generator] = None,
    ) -> "HyperMatrix":
        rng = rng if rng is not None else np.random.default_rng()
        return cls(ref.gaussian_values((rows, cols), element.numpy_dtype, rng), element)

    @classmethod
    def create(
        cls,
        rows: int,
        cols: int,
        init: Callable[[int, int], float],
        element: ElementType = float32,
    ) -> "HyperMatrix":
        return cls(ref.create((rows, cols), element.numpy_dtype, init), element)

    @classmethod
    def from_rows(cls, rows_data, element: ElementType = float32) -> "HyperMatrix":
        """Stack a sequence of hypervectors / arrays into a hypermatrix."""
        return cls(np.stack([as_numpy(r) for r in rows_data]), element)

    def row(self, idx: int) -> HyperVector:
        """Extract one row as a hypervector (``get_matrix_row``)."""
        return HyperVector(ref.get_matrix_row(self.data, idx), self.element)

    def __getitem__(self, idx):
        out = self.data[idx]
        if np.isscalar(out) or out.ndim == 0:
            return out
        if out.ndim == 1:
            return HyperVector(out, self.element)
        return HyperMatrix(out, self.element)

    def __len__(self) -> int:
        return self.rows


def _binary_or(a: ElementType, b: ElementType) -> ElementType:
    """Result element type of a binary element-wise op in eager mode."""
    if a.is_binary and b.is_binary:
        return binary
    if a.is_float or b.is_float:
        return a if a.is_float and a.bits >= b.bits else (b if b.is_float else a)
    return a if a.bits >= b.bits else b


# Re-exported for use by the primitives module.
result_element_type = _binary_or
