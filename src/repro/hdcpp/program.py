"""Tracing infrastructure for the HDC++ embedded DSL.

An HDC++ application is a :class:`Program` containing one or more
:class:`TracedFunction`\\ s.  Functions are defined by decorating ordinary
Python functions with :meth:`Program.define` (or :meth:`Program.entry`);
the decorator immediately *traces* the function: it installs an active
:class:`FunctionBuilder`, calls the Python function with symbolic
:class:`Value` parameters, and records every HDC primitive the function
invokes as an :class:`Operation`.

The recorded program is hardware agnostic.  It is subsequently lowered to
HPVM-HDC IR (:mod:`repro.ir.builder`), optionally transformed
(:mod:`repro.transforms`), and compiled by a back end
(:mod:`repro.backends`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.hdcpp.types import HDType

__all__ = [
    "Value",
    "Operation",
    "TracedFunction",
    "Program",
    "FunctionBuilder",
    "current_builder",
    "TracingError",
]


class TracingError(RuntimeError):
    """Raised when the DSL is used incorrectly while tracing."""


@dataclass(eq=False)
class Value:
    """A symbolic SSA value produced while tracing an HDC++ function."""

    type: HDType
    name: str = ""
    producer: Optional["Operation"] = None

    _counter = 0

    def __post_init__(self) -> None:
        Value._counter += 1
        self.id = Value._counter
        if not self.name:
            self.name = f"v{self.id}"

    def __repr__(self) -> str:
        return f"%{self.name}: {self.type}"


@dataclass(eq=False)
class Operation:
    """A single HPVM-HDC IR operation recorded by the tracer.

    Attributes:
        opcode: The :class:`repro.ir.ops.Opcode` of the operation.
        operands: Input :class:`Value`\\ s.
        attrs: Static attributes (dimensions, element types, perforation
            parameters, referenced implementation-function names, ...).
        result: The produced :class:`Value`, or ``None`` for pure
            directives such as ``red_perf``.
    """

    opcode: object
    operands: list[Value]
    attrs: dict = field(default_factory=dict)
    result: Optional[Value] = None

    def operand_types(self) -> list[HDType]:
        return [v.type for v in self.operands]

    def __repr__(self) -> str:
        res = f"{self.result!r} = " if self.result is not None else ""
        args = ", ".join(f"%{v.name}" for v in self.operands)
        attrs = f" {self.attrs}" if self.attrs else ""
        return f"{res}{self.opcode}({args}){attrs}"


@dataclass(eq=False)
class TracedFunction:
    """A traced HDC++ function: typed parameters, an op list, and results."""

    name: str
    params: list[Value]
    ops: list[Operation] = field(default_factory=list)
    results: list[Value] = field(default_factory=list)
    docstring: str = ""

    @property
    def param_types(self) -> list[HDType]:
        return [p.type for p in self.params]

    @property
    def result_types(self) -> list[HDType]:
        return [r.type for r in self.results]

    def values(self) -> list[Value]:
        """All values defined in this function (parameters then op results)."""
        out = list(self.params)
        for op in self.ops:
            if op.result is not None:
                out.append(op.result)
        return out

    def __repr__(self) -> str:
        return f"TracedFunction({self.name}, {len(self.ops)} ops)"


class FunctionBuilder:
    """Mutable builder that accumulates operations for one traced function."""

    def __init__(self, program: "Program", name: str):
        self.program = program
        self.name = name
        self.params: list[Value] = []
        self.ops: list[Operation] = []

    def add_param(self, type_: HDType, name: str) -> Value:
        value = Value(type_, name=name)
        self.params.append(value)
        return value

    def emit(self, opcode, operands: Sequence[Value], attrs: dict, result_type: Optional[HDType]) -> Optional[Value]:
        """Record an operation and return its result value (if any)."""
        operands = list(operands)
        for operand in operands:
            if not isinstance(operand, Value):
                raise TracingError(
                    f"operand {operand!r} of {opcode} is not a traced value; "
                    "concrete data must be passed as program inputs"
                )
        op = Operation(opcode, operands, dict(attrs))
        if result_type is not None:
            op.result = Value(result_type, producer=op)
        self.ops.append(op)
        return op.result

    def finish(self, results: Iterable[Value], docstring: str = "") -> TracedFunction:
        fn = TracedFunction(self.name, self.params, self.ops, list(results), docstring)
        return fn


_TLS = threading.local()


def current_builder() -> Optional[FunctionBuilder]:
    """Return the builder of the function currently being traced, if any."""
    return getattr(_TLS, "builder", None)


def _push_builder(builder: FunctionBuilder) -> None:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    stack.append(builder)
    _TLS.builder = builder


def _pop_builder() -> None:
    stack = _TLS.stack
    stack.pop()
    _TLS.builder = stack[-1] if stack else None


class Program:
    """A complete HDC++ application: a named collection of traced functions.

    One function is designated the *entry point*; the remaining functions
    are implementation functions referenced by stage primitives
    (``encoding_loop`` / ``training_loop`` / ``inference_loop``) or by
    Hetero-C++ parallel constructs.
    """

    def __init__(self, name: str):
        self.name = name
        self.functions: dict[str, TracedFunction] = {}
        self.entry_name: Optional[str] = None

    # -- function definition -----------------------------------------------------
    def define(self, *param_types: HDType, name: Optional[str] = None) -> Callable:
        """Decorator: trace a Python function into a :class:`TracedFunction`.

        Example::

            prog = Program("inference")

            @prog.define(hv(617), hm(2048, 617), hm(26, 2048))
            def infer(features, rp_matrix, classes):
                encoded = hdc.matmul(features, rp_matrix)
                dists = hdc.hamming_distance(hdc.sign(encoded), classes)
                return hdc.arg_min(dists)
        """

        def decorator(fn: Callable) -> TracedFunction:
            fn_name = name or fn.__name__
            if fn_name in self.functions:
                raise TracingError(f"function {fn_name!r} already defined in program {self.name!r}")
            builder = FunctionBuilder(self, fn_name)
            import inspect

            sig = inspect.signature(fn)
            param_names = list(sig.parameters)
            if len(param_names) != len(param_types):
                raise TracingError(
                    f"{fn_name}: {len(param_types)} parameter types supplied for "
                    f"{len(param_names)} parameters"
                )
            args = [builder.add_param(t, n) for t, n in zip(param_types, param_names)]
            _push_builder(builder)
            try:
                out = fn(*args)
            finally:
                _pop_builder()
            results = _normalize_results(out, fn_name)
            traced = builder.finish(results, docstring=(fn.__doc__ or ""))
            self.functions[fn_name] = traced
            return traced

        return decorator

    def entry(self, *param_types: HDType, name: Optional[str] = None) -> Callable:
        """Like :meth:`define`, additionally marking the function as entry point."""

        def decorator(fn: Callable) -> TracedFunction:
            traced = self.define(*param_types, name=name)(fn)
            self.entry_name = traced.name
            return traced

        return decorator

    # -- queries -------------------------------------------------------------------
    @property
    def entry_function(self) -> TracedFunction:
        if self.entry_name is None:
            if len(self.functions) == 1:
                return next(iter(self.functions.values()))
            raise TracingError(f"program {self.name!r} has no designated entry function")
        return self.functions[self.entry_name]

    def function(self, name: str) -> TracedFunction:
        return self.functions[name]

    def all_operations(self) -> list[Operation]:
        """Every operation in every function, in definition order."""
        ops: list[Operation] = []
        for fn in self.functions.values():
            ops.extend(fn.ops)
        return ops

    def __repr__(self) -> str:
        return f"Program({self.name!r}, functions={list(self.functions)})"


def _normalize_results(out, fn_name: str) -> list[Value]:
    if out is None:
        return []
    if isinstance(out, Value):
        return [out]
    if isinstance(out, (tuple, list)):
        results = []
        for item in out:
            if not isinstance(item, Value):
                raise TracingError(
                    f"{fn_name}: returned {item!r}, traced functions must return traced values"
                )
            results.append(item)
        return results
    raise TracingError(f"{fn_name}: unsupported return value {out!r}")
