"""Hetero-C++ style generic parallel constructs.

HDC++ is built on top of Hetero-C++ (Section 2.4 of the paper): besides the
HDC-specific primitives, applications can express *generic* task and data
parallelism that is not captured by an HDC primitive.  The canonical example
from the paper is HyperOMS' level-ID encoding, whose outer loop over spectra
is a generic parallel loop.

The reproduction provides :func:`parallel_map`, which applies a per-row
implementation function to every row of a hypermatrix.  When traced it
records a ``hetero.parallel_map`` operation; the IR builder turns that
operation into an *internal* dataflow node whose child leaf node has one
dynamic instance per row — the HPVM representation of a parallel loop.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from repro.hdcpp.arrays import HyperMatrix, HyperVector, as_numpy
from repro.hdcpp.program import TracedFunction, TracingError, Value, current_builder
from repro.hdcpp.types import ElementType, float32
from repro.ir.ops import Opcode, infer_result_type

__all__ = ["parallel_map", "hetero_attributes"]


def hetero_attributes(*values, num_outputs: int = 1) -> None:
    """Marker mirroring ``__hpvm__attributes`` — a documentation no-op.

    In HPVM the attributes marker annotates which pointers are node inputs
    and outputs.  The tracing DSL derives this information from dataflow, so
    the marker exists purely to keep ported HDC++ sources recognisable.
    """
    return None


def parallel_map(
    impl: Union[TracedFunction, Callable],
    inputs,
    extra=None,
    output_dim: Optional[int] = None,
    element: ElementType = float32,
):
    """Apply ``impl`` to every row of ``inputs`` in parallel.

    Args:
        impl: Per-row implementation (traced function or Python callable).
            It receives one row of ``inputs`` as a hypervector plus, when
            supplied, the ``extra`` operand (e.g. a shared codebook
            hypermatrix), and returns one output hypervector.
        inputs: Hypermatrix whose rows are processed independently.
        extra: Optional additional operand shared by every instance.
        output_dim: Length of the produced rows (defaults to the input
            row length).
        element: Element type of the produced hypermatrix.

    Returns:
        A hypermatrix with one output row per input row.
    """
    if isinstance(impl, TracedFunction):
        attrs = {"impl": impl.name}
    elif callable(impl):
        attrs = {"impl_callable": impl}
    else:
        raise TracingError(f"parallel_map implementation must be traced or callable, got {impl!r}")
    if output_dim is not None:
        attrs["output_dim"] = int(output_dim)
    attrs["element"] = element

    if isinstance(inputs, Value):
        builder = current_builder()
        if builder is None:
            raise TracingError("parallel_map on traced values requires an active trace")
        operands = [inputs] if extra is None else [inputs, extra]
        result_type = infer_result_type(Opcode.PARALLEL_MAP, [v.type for v in operands], attrs)
        return builder.emit(Opcode.PARALLEL_MAP, operands, attrs, result_type)

    return _eager_parallel_map(impl, inputs, extra, element)


def _eager_parallel_map(impl, inputs, extra, element: ElementType):
    if isinstance(impl, TracedFunction):
        raise TracingError(
            "eager parallel_map requires a Python callable implementation; "
            "traced implementations are executed by compiled programs"
        )
    inputs_hm = inputs if isinstance(inputs, HyperMatrix) else HyperMatrix(as_numpy(inputs))
    rows = []
    for i in range(inputs_hm.rows):
        row = inputs_hm.row(i)
        out = impl(row) if extra is None else impl(row, extra)
        rows.append(as_numpy(out))
    out_element = element
    sample = impl(inputs_hm.row(0)) if extra is None else impl(inputs_hm.row(0), extra)
    if isinstance(sample, (HyperVector, HyperMatrix)):
        out_element = sample.element
    return HyperMatrix(np.stack(rows), out_element)
